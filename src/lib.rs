//! # vpdt — Verifiable Properties of Database Transactions
//!
//! Facade crate re-exporting the whole workspace. See the README for a tour.
//!
//! This library reproduces Benedikt, Griffin & Libkin, *Verifiable Properties
//! of Database Transactions* (PODS'96; Information and Computation 147:57-88,
//! 1998): weakest preconditions, prerelations, the separating transaction of
//! Theorem 7, the `WPC` substitution algorithm of Theorem 8, and the finite
//! model theory toolkit (EF games, Hanf locality, Ajtai-Fagin games) used in
//! the paper's proofs.
//!
//! ```
//! use vpdt::core::{prerelations::compile_program, safe::Guarded, wpc::wpc_sentence};
//! use vpdt::eval::Omega;
//! use vpdt::logic::{parse_formula, Schema};
//! use vpdt::structure::Database;
//! use vpdt::tx::program::Program;
//! use vpdt::tx::traits::{Transaction, TxError};
//!
//! // constraint: out-degree at most one (a functional dependency)
//! let alpha = parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").unwrap();
//! // transaction: insert the edge 1 -> 4
//! let t = Program::insert_consts("E", [1, 4]);
//! let pre = compile_program("link", &t, &Schema::graph(), &Omega::empty()).unwrap();
//! // wpc(T, alpha): holds in D iff alpha holds in T(D)  (Theorem 8)
//! let wpc = wpc_sentence(&pre, &alpha).unwrap();
//! let safe = Guarded::new(pre, wpc, Omega::empty());
//!
//! // node 1 has no successor here: the insert is safe
//! assert!(safe.apply(&Database::graph([(0, 1)])).is_ok());
//! // node 1 already points at 2: the guard aborts *before* running T
//! assert!(matches!(
//!     safe.apply(&Database::graph([(1, 2)])),
//!     Err(TxError::Aborted(_))
//! ));
//! ```

pub use vpdt_core as core;
pub use vpdt_eval as eval;
pub use vpdt_games as games;
pub use vpdt_logic as logic;
pub use vpdt_net as net;
pub use vpdt_obs as obs;
pub use vpdt_store as store;
pub use vpdt_structure as structure;
pub use vpdt_tx as tx;
