//! `vpdtool` — statically verified transactions from the command line.
//!
//! ```text
//! vpdtool check    --db 'dom:0,1,2;E:0 1,1 2' --formula 'exists x. E(x, x)'
//! vpdtool apply    --db '…' --insert E:1,4 --delete E:0,1
//! vpdtool wpc      --constraint 'forall x y z. E(x,y) & E(x,z) -> y = z' --insert E:1,4
//! vpdtool guard    --db '…' --constraint '…' --insert E:1,4
//! vpdtool preserve --constraint '…' --insert E:1,4 --budget 2000
//! vpdtool store    --workers 4 --clients 8 --txs 200 --rels 4 --universe 6 --seed 42
//! vpdtool store    --persist ./wal            # durable: write-ahead log + checkpoints
//! vpdtool store    --persist ./wal --recover  # resume a persisted store and keep serving
//! vpdtool audit    --log ./wal                # cold audit: recover + replay + verify
//! vpdtool wal gc ./wal                        # delete covered log segments + stale checkpoints
//! vpdtool stats ./wal                         # Prometheus-text metrics from a cold log
//! vpdtool stats --live                        # serve a demo workload, dump live metrics + traces
//! vpdtool serve --addr 127.0.0.1:7712 --persist ./wal   # network front door over a store
//! vpdtool net drive --addr 127.0.0.1:7712     # pipelined remote sessions against a serve
//! vpdtool stats --remote 127.0.0.1:7712       # fetch the metrics exposition over the wire
//! vpdtool net stop 127.0.0.1:7712             # remote shutdown (needs --allow-shutdown)
//! ```
//!
//! Databases use the textual encoding of `Database::encode`
//! (`dom:<ids>;R:<tuples>`); the default schema is the single binary
//! relation `E`, overridable with `--schema 'R:2,S:1'`.

use std::process::ExitCode;
use vpdt::core::prerelations::compile_program;
use vpdt::core::safe::Guarded;
use vpdt::core::verify::{find_preservation_counterexample, PreserveVerdict};
use vpdt::core::wpc::wpc_sentence;
use vpdt::eval::{holds, Omega};
use vpdt::logic::{parse_formula, Schema};
use vpdt::structure::Database;
use vpdt::tx::program::Program;
use vpdt::tx::traits::{Transaction, TxError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vpdtool: {e}");
            eprintln!("run `vpdtool help` for usage");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    db: Option<String>,
    formula: Option<String>,
    constraint: Option<String>,
    schema: Option<String>,
    omega: Option<String>,
    updates: Vec<(bool, String)>, // (is_insert, "R:a,b")
    budget: usize,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        db: None,
        formula: None,
        constraint: None,
        schema: None,
        omega: None,
        updates: Vec::new(),
        budget: 2000,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .clone();
        match flag.as_str() {
            "--db" => o.db = Some(value),
            "--formula" => o.formula = Some(value),
            "--constraint" => o.constraint = Some(value),
            "--schema" => o.schema = Some(value),
            "--omega" => o.omega = Some(value),
            "--insert" => o.updates.push((true, value)),
            "--delete" => o.updates.push((false, value)),
            "--budget" => o.budget = value.parse().map_err(|_| "bad --budget".to_string())?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(o)
}

fn schema_of(o: &Options) -> Result<Schema, String> {
    match &o.schema {
        None => Ok(Schema::graph()),
        Some(s) => {
            let mut rels = Vec::new();
            for part in s.split(',') {
                let (name, arity) = part
                    .split_once(':')
                    .ok_or_else(|| format!("bad schema item {part}"))?;
                let arity: usize = arity.parse().map_err(|_| format!("bad arity in {part}"))?;
                rels.push((name.trim().to_string(), arity));
            }
            Ok(Schema::new(rels))
        }
    }
}

fn omega_of(o: &Options) -> Result<Omega, String> {
    match o.omega.as_deref() {
        None | Some("empty") => Ok(Omega::empty()),
        Some("order") => Ok(Omega::nat_order()),
        Some("arithmetic") => Ok(Omega::arithmetic()),
        Some(other) => Err(format!("unknown omega {other} (empty|order|arithmetic)")),
    }
}

fn database_of(o: &Options, schema: &Schema) -> Result<Database, String> {
    let enc = o.db.as_deref().ok_or("--db is required")?;
    Database::decode(schema.clone(), enc)
}

fn program_of(o: &Options) -> Result<Program, String> {
    if o.updates.is_empty() {
        return Err("at least one --insert/--delete is required".into());
    }
    let mut steps = Vec::new();
    for (is_insert, spec) in &o.updates {
        let (rel, tuple) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad update spec {spec} (want R:a,b)"))?;
        let ids: Result<Vec<u64>, _> = tuple.split(',').map(|x| x.trim().parse::<u64>()).collect();
        let ids = ids.map_err(|_| format!("bad tuple in {spec}"))?;
        steps.push(if *is_insert {
            Program::insert_consts(rel, ids)
        } else {
            Program::delete_consts(rel, ids)
        });
    }
    Ok(Program::seq(steps))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    // `store` and `audit` have their own flag sets; dispatch before the
    // common parser.
    if cmd == "store" {
        return run_store(rest);
    }
    if cmd == "audit" {
        return run_audit(rest);
    }
    if cmd == "wal" {
        return run_wal(rest);
    }
    if cmd == "stats" {
        return run_stats(rest);
    }
    if cmd == "serve" {
        return run_serve(rest);
    }
    if cmd == "net" {
        return run_net(rest);
    }
    let o = parse_options(rest)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!(
                "vpdtool — statically verified transactions\n\n\
                 commands:\n  \
                 check    --db ENC --formula F [--omega O]      does D ⊨ F hold?\n  \
                 apply    --db ENC --insert R:a,b …             run the updates\n  \
                 wpc      --constraint F --insert R:a,b …       print wpc(T, F)\n  \
                 guard    --db ENC --constraint F --insert …    run `if wpc then T else abort`\n  \
                 preserve --constraint F --insert … [--budget N] bounded Preserve(T, F) check\n  \
                 store    [--workers N] [--clients N] [--txs N] [--rels N] [--universe N] [--seed N]\n           \
                 [--persist DIR] [--recover] [--shards N]\n           \
                 serve a concurrent workload through StoreServer sessions and audit it;\n           \
                 --persist makes it durable (WAL + checkpoints), --recover resumes DIR;\n           \
                 --shards partitions the relations across N shard stores behind a footprint\n           \
                 router (a slice of the workload then commits via cross-shard 2PC)\n  \
                 audit    --log DIR [--omega O]                 cold audit of a persisted store:\n           \
                 recover snapshot + log tail, replay every commit, verify hashes & provenance\n           \
                 (a sharded layout — shard-0/, decisions/ — is detected and cross-checked\n           \
                 against its decision log automatically)\n  \
                 wal gc DIR                                     delete log segments fully covered\n           \
                 by the newest checkpoint, then checkpoint files superseded by it (what a\n           \
                 serving store does at checkpoint time unless WalOptions::retain_segments\n           \
                 opts out)\n  \
                 stats DIR | stats --live [--slow N] | stats --remote ADDR\n           \
                 Prometheus-text metrics exposition: DIR reconstructs counters from a cold\n           \
                 persisted log; --live serves the demo workload through a traced server and\n           \
                 also prints the N slowest transaction timelines (default 5); --remote\n           \
                 fetches the exposition from a running `vpdtool serve` over the wire\n  \
                 serve    --addr HOST:PORT [--persist DIR] [--recover] [--workers N] [--rels N]\n           \
                 [--universe N] [--seed N] [--allow-shutdown]\n           \
                 resident network front door: accept framed TCP sessions onto a store and\n           \
                 serve until killed (or until a client sends Shutdown, with --allow-shutdown)\n  \
                 net drive --addr ADDR [--clients N] [--txs N] [--seed N] [--rels N]\n           \
                 [--universe N] [--window N]\n           \
                 drive pipelined remote sessions against a running serve and report outcomes\n  \
                 net stop ADDR                                  ask a serve to shut down\n           \
                 (requires --allow-shutdown on the server)\n\n\
                 common flags: --schema 'R:2,S:1' (default E:2), --omega empty|order|arithmetic"
            );
            Ok(())
        }
        "check" => {
            let schema = schema_of(&o)?;
            let db = database_of(&o, &schema)?;
            let f = parse_formula(o.formula.as_deref().ok_or("--formula is required")?)
                .map_err(|e| e.to_string())?;
            let omega = omega_of(&o)?;
            let r = holds(&db, &omega, &f).map_err(|e| e.to_string())?;
            println!("{r}");
            Ok(())
        }
        "apply" => {
            let schema = schema_of(&o)?;
            let db = database_of(&o, &schema)?;
            let omega = omega_of(&o)?;
            let pre = compile_program("cli", &program_of(&o)?, &schema, &omega)
                .map_err(|e| e.to_string())?;
            let out = pre.apply(&db).map_err(|e| e.to_string())?;
            println!("{}", out.encode());
            Ok(())
        }
        "wpc" => {
            let schema = schema_of(&o)?;
            let omega = omega_of(&o)?;
            let alpha = parse_formula(o.constraint.as_deref().ok_or("--constraint is required")?)
                .map_err(|e| e.to_string())?;
            let pre = compile_program("cli", &program_of(&o)?, &schema, &omega)
                .map_err(|e| e.to_string())?;
            let w = wpc_sentence(&pre, &alpha).map_err(|e| e.to_string())?;
            println!("{w}");
            eprintln!(
                "# {} AST nodes, quantifier rank {}",
                w.size(),
                w.quantifier_rank()
            );
            Ok(())
        }
        "guard" => {
            let schema = schema_of(&o)?;
            let db = database_of(&o, &schema)?;
            let omega = omega_of(&o)?;
            let alpha = parse_formula(o.constraint.as_deref().ok_or("--constraint is required")?)
                .map_err(|e| e.to_string())?;
            let pre = compile_program("cli", &program_of(&o)?, &schema, &omega)
                .map_err(|e| e.to_string())?;
            let w = wpc_sentence(&pre, &alpha).map_err(|e| e.to_string())?;
            let safe = Guarded::new(pre, w, omega);
            match safe.apply(&db) {
                Ok(out) => {
                    println!("committed: {}", out.encode());
                    Ok(())
                }
                Err(TxError::Aborted(msg)) => {
                    println!("aborted: {msg}");
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            }
        }
        "preserve" => {
            let schema = schema_of(&o)?;
            let omega = omega_of(&o)?;
            let alpha = parse_formula(o.constraint.as_deref().ok_or("--constraint is required")?)
                .map_err(|e| e.to_string())?;
            let pre = compile_program("cli", &program_of(&o)?, &schema, &omega)
                .map_err(|e| e.to_string())?;
            match find_preservation_counterexample(&pre, &alpha, &omega, o.budget)
                .map_err(|e| e.to_string())?
            {
                PreserveVerdict::CounterexampleFound(db) => {
                    println!("NOT preserved; counterexample: {}", db.encode());
                }
                PreserveVerdict::NoCounterexampleWithin { checked } => {
                    println!(
                        "no counterexample among the first {checked} databases \
                         (Preserve is undecidable: this is evidence, not proof — \
                          use `wpc` + guard for a guarantee)"
                    );
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

/// `vpdtool store`: a self-contained demonstration of the session-oriented
/// guarded store — a resident `StoreServer`, one concurrent session per
/// client, deterministic sharded workload, guard cache, history audit.
/// `--persist DIR` makes the run durable (write-ahead log + checkpoints);
/// `--recover` resumes a previously persisted DIR instead of starting
/// fresh, and the post-run audit then runs *cold*, from the files.
fn run_store(args: &[String]) -> Result<(), String> {
    let mut workers = 4usize;
    let mut clients = 8u64;
    let mut txs = 200usize;
    let mut rels = 4usize;
    let mut universe = 6u64;
    let mut seed = 42u64;
    let mut persist: Option<String> = None;
    let mut recover = false;
    let mut shards = 0usize;
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if flag == "--recover" {
            recover = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            // --threads kept as the historical spelling of --workers
            "--threads" | "--workers" => workers = value.parse().map_err(|_| "bad --workers")?,
            "--clients" => clients = value.parse().map_err(|_| "bad --clients")?,
            "--txs" => txs = value.parse().map_err(|_| "bad --txs")?,
            "--rels" => rels = value.parse().map_err(|_| "bad --rels")?,
            "--universe" => universe = value.parse().map_err(|_| "bad --universe")?,
            "--seed" => seed = value.parse().map_err(|_| "bad --seed")?,
            "--persist" => persist = Some(value.clone()),
            "--shards" => shards = value.parse().map_err(|_| "bad --shards")?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if rels == 0 || universe == 0 {
        return Err("--rels and --universe must be positive".into());
    }
    if recover && persist.is_none() {
        return Err("--recover needs --persist DIR (the directory to resume)".into());
    }
    // A sharded layout is sharded forever: --recover on one re-enters the
    // sharded path whether or not --shards was repeated.
    let recovering_sharded = recover
        && persist
            .as_deref()
            .is_some_and(|d| vpdt::store::is_sharded_layout(std::path::Path::new(d)));
    if shards >= 2 || recovering_sharded {
        return run_store_sharded(
            workers, clients, txs, rels, universe, seed, shards, persist, recover,
        );
    }

    use vpdt::store::{audit, workload, StoreBuilder};
    let omega = Omega::empty();
    // The fresh in-memory path is the only consumer of (initial, α) — a
    // persisted run is audited cold, from its own files.
    let (server, mem_audit_inputs) = if recover {
        let dir = persist.clone().expect("checked above");
        let server = StoreBuilder::recover(&dir)
            .omega(omega.clone())
            .workers(workers)
            .build()
            .map_err(|e| format!("recovery refused: {e}"))?;
        println!(
            "recovered {dir} at store version {} ({} history events)",
            server.version(),
            server.history_events().len()
        );
        (server, None)
    } else {
        let alpha = workload::sharded_fd_constraint(rels);
        let initial = workload::sharded_initial(seed, rels, universe, 0.5);
        let mut builder = StoreBuilder::new(initial.clone(), alpha.clone())
            .omega(omega.clone())
            .workers(workers);
        if let Some(dir) = &persist {
            builder = builder.persist(dir);
        }
        let server = builder
            .build()
            .map_err(|e| format!("server refused to start: {e}"))?;
        (server, Some((initial, alpha)))
    };

    let jobs = workload::sharded_jobs(seed, clients, txs, rels, universe);
    println!(
        "serving {} transactions from {clients} sessions over {rels} relations \
         on {workers} workers{}",
        jobs.len(),
        persist
            .as_deref()
            .map(|d| format!(", write-ahead logged to {d}"))
            .unwrap_or_default()
    );
    let programs = workload::serve_chunked(&server, &jobs, txs);
    let report = server.shutdown();
    println!(
        "committed {} / aborted {} / failed {} at store version {} \
         ({} conflicts retried, guard cache {} hits / {} compiles)",
        report.exec.committed,
        report.exec.aborted,
        report.exec.failed,
        report.final_version,
        report.exec.conflicts,
        report.exec.guard_hits,
        report.exec.guard_misses,
    );
    // A persisted run is audited *cold*, from the files it left behind —
    // that also covers history from before a --recover. In-memory runs
    // audit the live report.
    let verdict = if let Some(dir) = &persist {
        cold_audit_dir(dir, &omega)?
    } else {
        let (initial, alpha) = mem_audit_inputs.expect("fresh unpersisted run");
        audit(
            &alpha,
            &omega,
            &initial,
            &report.final_db,
            &report.events,
            &programs,
            &report.templates,
        )
    };
    println!("{verdict}");
    if verdict.ok() && report.exec.failed == 0 {
        Ok(())
    } else {
        Err("store run failed verification".into())
    }
}

/// `vpdtool store --shards N`: the horizontal scale-out path. Relations
/// stripe round-robin across N shard stores behind a footprint router;
/// the workload mixes single-relation transactions (each takes its
/// shard's ordinary pipeline) with two-relation ones that commit through
/// the cross-shard two-phase coordinator and its decision log. A
/// persisted run leaves `shard-I/` WALs plus `decisions/`, which the
/// sharded cold audit verifies end to end; `--recover` resumes such a
/// layout (rolling decided-but-unapplied branches forward first).
#[allow(clippy::too_many_arguments)]
fn run_store_sharded(
    workers: usize,
    clients: u64,
    txs: usize,
    rels: usize,
    universe: u64,
    seed: u64,
    shards: usize,
    persist: Option<String>,
    recover: bool,
) -> Result<(), String> {
    use vpdt::store::metrics::names;
    use vpdt::store::{cold_audit_sharded, workload, ShardedBuilder};
    const CROSS_FRACTION: f64 = 0.1;
    let omega = Omega::empty();
    let store = if recover {
        let dir = persist.clone().ok_or("--recover needs --persist DIR")?;
        let store = ShardedBuilder::recover(&dir)
            .omega(omega.clone())
            .workers_per_shard(workers)
            .build()
            .map_err(|e| format!("sharded recovery refused: {e}"))?;
        println!(
            "recovered {dir}: {} shards at versions [{}]",
            store.num_shards(),
            (0..store.num_shards())
                .map(|i| store.shard(i).version().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        store
    } else {
        if rels < shards {
            return Err(format!(
                "--rels {rels} cannot cover --shards {shards}: every shard needs \
                 at least one relation"
            ));
        }
        let alpha = workload::sharded_fd_constraint(rels);
        let initial = workload::sharded_initial(seed, rels, universe, 0.5);
        let mut builder = ShardedBuilder::new(initial, alpha, shards)
            .omega(omega.clone())
            .workers_per_shard(workers);
        if let Some(dir) = &persist {
            builder = builder.persist(dir);
        }
        builder
            .build()
            .map_err(|e| format!("sharded store refused to start: {e}"))?
    };

    let rels = store.schema().iter().count();
    if rels < 2 {
        return Err("a sharded run needs at least two relations".into());
    }
    let jobs = workload::cross_mix_jobs(seed, clients, txs, rels, universe, CROSS_FRACTION);
    println!(
        "serving {} transactions ({:.0}% spanning two shards) from {clients} sessions \
         over {rels} relations on {} shards x {workers} workers{}",
        jobs.len(),
        CROSS_FRACTION * 100.0,
        store.num_shards(),
        persist
            .as_deref()
            .map(|d| format!(", write-ahead logged to {d}"))
            .unwrap_or_default()
    );
    let drive = workload::serve_sharded_chunked(&store, &jobs, txs);
    let report = store.shutdown();
    let committed = report
        .shards
        .iter()
        .map(|s| s.exec.committed)
        .sum::<usize>() as u64
        + report.coordinator.counter(names::CROSS_COMMITTED);
    let aborted = report.shards.iter().map(|s| s.exec.aborted).sum::<usize>() as u64
        + report.coordinator.counter(names::CROSS_ABORTED);
    let failed = report.shards.iter().map(|s| s.exec.failed).sum::<usize>() as u64;
    println!(
        "routed {} single-shard / {} cross-shard ({} errors); committed {committed} / \
         aborted {aborted} / failed {failed}; {} decision ids issued, shard versions [{}]",
        drive.single,
        drive.cross,
        drive.errors,
        report.decisions,
        report
            .shards
            .iter()
            .map(|s| s.final_version.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let audited_ok = if let Some(dir) = &persist {
        let audit = cold_audit_sharded(std::path::Path::new(dir), &omega)
            .map_err(|e| format!("sharded cold audit of {dir} failed to run: {e}"))?;
        println!(
            "sharded cold audit: {} shards, {} decisions, {} cross events, {} problem(s)",
            audit.shards.len(),
            audit.decisions,
            audit.cross_events,
            audit.problems.len()
        );
        for verdict in &audit.shards {
            println!("  {verdict}");
        }
        for problem in &audit.problems {
            println!("  problem: {problem}");
        }
        audit.ok()
    } else {
        println!(
            "in-memory sharded run: full provenance auditing needs --persist DIR \
             (the cold sharded audit cross-checks shard WALs against the decision log)"
        );
        true
    };
    if audited_ok && failed == 0 && drive.errors == 0 {
        Ok(())
    } else {
        Err("sharded store run failed verification".into())
    }
}

/// `vpdtool serve`: the resident network front door. Builds (or
/// recovers) a store exactly like `vpdtool store`, binds the framed TCP
/// protocol in front of it, and serves until the process is killed — or
/// until a client sends `Shutdown`, when `--allow-shutdown` opted in
/// (that's how CI stops it cleanly). On shutdown the store drains and a
/// persisted run leaves artifacts `vpdtool audit` verifies cold.
fn run_serve(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7712".to_string();
    let mut workers = 4usize;
    let mut rels = 4usize;
    let mut universe = 6u64;
    let mut seed = 42u64;
    let mut persist: Option<String> = None;
    let mut recover = false;
    let mut allow_shutdown = false;
    let mut reactors = 2usize;
    let mut writers = 2usize;
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if flag == "--recover" {
            recover = true;
            i += 1;
            continue;
        }
        if flag == "--allow-shutdown" {
            allow_shutdown = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--workers" => workers = value.parse().map_err(|_| "bad --workers")?,
            "--rels" => rels = value.parse().map_err(|_| "bad --rels")?,
            "--universe" => universe = value.parse().map_err(|_| "bad --universe")?,
            "--seed" => seed = value.parse().map_err(|_| "bad --seed")?,
            "--persist" => persist = Some(value.clone()),
            "--reactors" => reactors = value.parse().map_err(|_| "bad --reactors")?,
            "--writers" => writers = value.parse().map_err(|_| "bad --writers")?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if recover && persist.is_none() {
        return Err("--recover needs --persist DIR (the directory to resume)".into());
    }

    use vpdt::net::{NetOptions, NetServer};
    use vpdt::store::{workload, StoreBuilder};
    let omega = Omega::empty();
    let store = if recover {
        let dir = persist.clone().expect("checked above");
        let server = StoreBuilder::recover(&dir)
            .omega(omega.clone())
            .workers(workers)
            .build()
            .map_err(|e| format!("recovery refused: {e}"))?;
        println!(
            "recovered {dir} at store version {} ({} history events)",
            server.version(),
            server.history_events().len()
        );
        server
    } else {
        let alpha = workload::sharded_fd_constraint(rels);
        let initial = workload::sharded_initial(seed, rels, universe, 0.5);
        let mut builder = StoreBuilder::new(initial, alpha)
            .omega(omega.clone())
            .workers(workers);
        if let Some(dir) = &persist {
            builder = builder.persist(dir);
        }
        builder
            .build()
            .map_err(|e| format!("server refused to start: {e}"))?
    };

    let net = NetServer::bind(
        store,
        &addr,
        NetOptions {
            allow_remote_shutdown: allow_shutdown,
            reactor_threads: reactors,
            writer_threads: writers,
            ..NetOptions::default()
        },
    )
    .map_err(|e| format!("bind {addr} failed: {e}"))?;
    println!(
        "serving on {} ({} workers, {} reactors, {} writers, {} relations over universe {}{}{})",
        net.local_addr(),
        workers,
        reactors.max(1),
        writers.max(1),
        rels,
        universe,
        persist
            .as_deref()
            .map(|d| format!(", write-ahead logged to {d}"))
            .unwrap_or_default(),
        if allow_shutdown {
            ", remote shutdown allowed"
        } else {
            ""
        }
    );
    let report = net.serve();
    println!(
        "front door closed: committed {} / aborted {} / failed {} at store version {} \
         ({} connections served, {} frame errors)",
        report.exec.committed,
        report.exec.aborted,
        report.exec.failed,
        report.final_version,
        report
            .metrics
            .counter(vpdt::net::names::NET_CONNECTIONS_TOTAL),
        report
            .metrics
            .counter(vpdt::net::names::NET_FRAME_ERRORS_TOTAL),
    );
    if report.exec.failed > 0 {
        return Err("transactions failed while serving".into());
    }
    Ok(())
}

/// `vpdtool net`: client-side verbs against a running `vpdtool serve`.
fn run_net(args: &[String]) -> Result<(), String> {
    let (sub, rest) = args
        .split_first()
        .ok_or("net needs a subcommand (drive|stop)")?;
    match sub.as_str() {
        "drive" => run_net_drive(rest),
        "stop" => {
            let [addr] = rest else {
                return Err("net stop takes exactly one argument: the server address".into());
            };
            let client = vpdt::net::NetClient::connect(addr.as_str(), "vpdtool-stop")
                .map_err(|e| format!("connect {addr} failed: {e}"))?;
            client
                .shutdown_server()
                .map_err(|e| format!("shutdown refused: {e}"))?;
            println!("server at {addr} acknowledged shutdown");
            Ok(())
        }
        other => Err(format!("unknown net subcommand {other} (drive|stop)")),
    }
}

/// `vpdtool net drive`: N pipelined remote sessions submitting the same
/// deterministic sharded workload `vpdtool store` serves in-process —
/// the round-trip half of the loopback smoke test.
fn run_net_drive(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut clients = 4u64;
    let mut txs = 50usize;
    let mut rels = 4usize;
    let mut universe = 6u64;
    let mut seed = 42u64;
    let mut window = 32usize;
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => addr = Some(value.clone()),
            "--clients" => clients = value.parse().map_err(|_| "bad --clients")?,
            "--txs" => txs = value.parse().map_err(|_| "bad --txs")?,
            "--rels" => rels = value.parse().map_err(|_| "bad --rels")?,
            "--universe" => universe = value.parse().map_err(|_| "bad --universe")?,
            "--seed" => seed = value.parse().map_err(|_| "bad --seed")?,
            "--window" => window = value.parse().map_err(|_| "bad --window")?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    let addr = addr.ok_or("--addr HOST:PORT is required")?;
    let window = window.max(1);

    use vpdt::net::{NetClient, WireOutcome};
    use vpdt::store::workload;
    let jobs = workload::sharded_jobs(seed, clients, txs, rels, universe);
    let chunks: Vec<_> = jobs.chunks(txs.max(1)).collect();
    let mut committed = 0usize;
    let mut aborted = 0usize;
    let mut last_root: Option<u64> = None;
    std::thread::scope(|scope| -> Result<(), String> {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(c, chunk)| {
                let addr = addr.clone();
                scope.spawn(
                    move || -> Result<(usize, usize, u64, Option<u64>), String> {
                        let mut client = NetClient::connect(addr.as_str(), &format!("drive-{c}"))
                            .map_err(|e| format!("connect failed: {e}"))?;
                        let (mut committed, mut aborted) = (0usize, 0usize);
                        let mut top_version = 0u64;
                        let mut top_root: Option<u64> = None;
                        let mut tally = |outcome: WireOutcome| match outcome {
                            WireOutcome::Committed { version, root_hash } => {
                                committed += 1;
                                if version > top_version {
                                    top_version = version;
                                    top_root = root_hash;
                                }
                            }
                            WireOutcome::GuardAborted { .. } | WireOutcome::RolledBack { .. } => {
                                aborted += 1;
                            }
                            WireOutcome::Failed { code, detail } => {
                                eprintln!("drive-{c}: transaction failed [{code}] {detail}");
                            }
                        };
                        for job in *chunk {
                            if client.inflight() >= window {
                                let (_req, _tx, outcome) =
                                    client.next_outcome().map_err(|e| e.to_string())?;
                                tally(outcome);
                            }
                            client.submit(&job.program).map_err(|e| e.to_string())?;
                        }
                        client
                            .sync(|_req, _tx, outcome| tally(outcome))
                            .map_err(|e| e.to_string())?;
                        client.goodbye().map_err(|e| e.to_string())?;
                        Ok((committed, aborted, top_version, top_root))
                    },
                )
            })
            .collect();
        let mut top_version = 0u64;
        for h in handles {
            let (c, a, v, r) = h.join().expect("drive thread")?;
            committed += c;
            aborted += a;
            if v > top_version {
                top_version = v;
                last_root = r;
            }
        }
        Ok(())
    })?;
    // An absent root is typed on the wire (protocol v2): the commit's
    // history segment was retired before write-back. Surface it as such
    // rather than printing a fake zero commitment.
    let root_text = match last_root {
        Some(root) => format!("{root:#018x}"),
        None => "retired before write-back".to_string(),
    };
    println!(
        "drove {} transactions over {} sessions: committed {committed} / aborted {aborted} \
         (latest commitment root {root_text})",
        jobs.len(),
        chunks.len(),
    );
    if committed == 0 {
        return Err("no transaction committed".into());
    }
    Ok(())
}

/// Recovers a persisted directory and runs the full cold audit over it —
/// from the genesis state when the whole log survives, from the floor
/// checkpoint when segment retention has deleted a covered prefix.
fn cold_audit_dir(dir: &str, omega: &Omega) -> Result<vpdt::store::AuditReport, String> {
    use vpdt::store::wal::{self, RecoveryOptions};
    let recovered = wal::recover(dir, omega, RecoveryOptions::default())
        .map_err(|e| format!("recovery of {dir} failed: {e}"))?;
    println!(
        "cold log {dir}: recovered version {} (root hash {:#018x}), {} events{}, \
         {} commits replayed from the latest checkpoint{}",
        recovered.version,
        recovered.root_hash,
        recovered.events.len(),
        if recovered.base_version > 0 {
            format!(
                " (history before version {} retired by segment retention)",
                recovered.base_version
            )
        } else {
            String::new()
        },
        recovered.commits_replayed,
        if recovered.torn_bytes > 0 {
            format!(", {} torn tail bytes discarded", recovered.torn_bytes)
        } else {
            String::new()
        }
    );
    Ok(vpdt::store::cold_audit_from(
        &recovered.alpha,
        omega,
        recovered.base_version,
        &recovered.initial,
        &recovered.db,
        &recovered.events,
        &recovered.templates,
    ))
}

/// `vpdtool wal gc DIR`: the standalone retention pass — delete every log
/// segment whose records are entirely covered by the newest checkpoint.
/// The same pass a serving store runs at checkpoint time unless
/// `WalOptions::retain_segments` opts out; this command serves logs whose
/// writers retained everything (or that were written before retention
/// existed).
fn run_wal(args: &[String]) -> Result<(), String> {
    use vpdt::store::wal;
    let (sub, rest) = args.split_first().ok_or("wal needs a subcommand (gc)")?;
    if sub != "gc" {
        return Err(format!("unknown wal subcommand {sub} (expected gc)"));
    }
    let [dir] = rest else {
        return Err("wal gc takes exactly one argument: the log directory".into());
    };
    let cks = wal::list_checkpoints(dir).map_err(|e| e.to_string())?;
    let Some((covered, _)) = cks.last() else {
        return Err(format!(
            "{dir} holds no checkpoint; nothing is provably covered"
        ));
    };
    let deleted = wal::gc_segments(dir, *covered).map_err(|e| e.to_string())?;
    for path in &deleted {
        println!("deleted {}", path.display());
    }
    // With covered segments gone, checkpoint files older than recovery's
    // floor are dead weight too.
    let stale = wal::gc_checkpoints(dir).map_err(|e| e.to_string())?;
    for path in &stale {
        println!("deleted {}", path.display());
    }
    println!(
        "{}: {} segment(s) and {} checkpoint file(s) deleted (covered through offset {covered})",
        dir,
        deleted.len(),
        stale.len()
    );
    // The directory must still recover afterwards — cheap insurance that
    // the pass never deletes a segment recovery still needs.
    wal::scan_log(dir).map_err(|e| format!("post-gc scan failed: {e}"))?;
    Ok(())
}

/// `vpdtool stats`: the metrics exposition surface.
///
/// * `stats DIR` — **cold**: recover the persisted log and reconstruct
///   the counters the artifacts can honestly support (commits, version,
///   shapes, checkpoint files). Aborts, retries, and stage timings are
///   not persisted, so they are absent rather than zero; no transaction
///   traces exist cold.
/// * `stats --live [--slow N]` — serve the same deterministic demo
///   workload as `vpdtool store` through a traced in-memory server, then
///   dump its full metrics snapshot plus the N slowest complete
///   transaction timelines.
///
/// Output is Prometheus text exposition (deterministic ordering), so it
/// can be diffed, scraped, or grepped in CI.
fn run_stats(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut live = false;
    let mut remote: Option<String> = None;
    let mut slow = 5usize;
    let mut omega_name: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if flag == "--live" {
            live = true;
            i += 1;
            continue;
        }
        if !flag.starts_with("--") {
            dir = Some(flag.clone());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--slow" => slow = value.parse().map_err(|_| "bad --slow")?,
            "--omega" => omega_name = Some(value.clone()),
            "--remote" => remote = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if let Some(addr) = remote {
        // Remote exposition: one Stats round trip against a running
        // `vpdtool serve`; the server renders its own snapshot.
        let mut client = vpdt::net::NetClient::connect(addr.as_str(), "vpdtool-stats")
            .map_err(|e| format!("connect {addr} failed: {e}"))?;
        let text = client
            .stats()
            .map_err(|e| format!("stats request failed: {e}"))?;
        print!("{text}");
        client.goodbye().map_err(|e| e.to_string())?;
        return Ok(());
    }
    let omega = match omega_name.as_deref() {
        None | Some("empty") => Omega::empty(),
        Some("order") => Omega::nat_order(),
        Some("arithmetic") => Omega::arithmetic(),
        Some(other) => return Err(format!("unknown omega {other} (empty|order|arithmetic)")),
    };
    match (live, dir) {
        (true, _) => run_stats_live(slow),
        (false, Some(dir)) => run_stats_cold(&dir, &omega),
        (false, None) => Err("stats needs a log directory or --live".into()),
    }
}

/// Cold half of [`run_stats`]: counters reconstructed from a recovered
/// persisted directory, rendered as Prometheus text.
fn run_stats_cold(dir: &str, omega: &Omega) -> Result<(), String> {
    use vpdt::store::metrics::names;
    use vpdt::store::wal::{self, RecoveryOptions};
    use vpdt::store::MetricsRegistry;
    let recovered = wal::recover(dir, omega, RecoveryOptions::default())
        .map_err(|e| format!("recovery of {dir} failed: {e}"))?;
    let checkpoints = wal::list_checkpoints(dir).map_err(|e| e.to_string())?;
    let registry = MetricsRegistry::new();
    // Every committed transaction bumped the version by one, so the
    // recovered version *is* the lifetime commit count.
    registry.counter(names::TX_COMMITTED).add(recovered.version);
    registry
        .counter(names::CHECKPOINTS)
        .add(checkpoints.len() as u64);
    registry.gauge(names::VERSION).set(recovered.version);
    registry
        .gauge(names::GUARD_CACHE_SHAPES)
        .set(recovered.templates.len() as u64);
    print!("{}", registry.snapshot().render_prometheus());
    eprintln!(
        "# cold exposition: reconstructed from {dir} ({} commits replayed over the latest \
         checkpoint). Aborts, retries, stage timings, and traces are not persisted — attach \
         to a live server (`StoreServer::metrics`) for those.",
        recovered.commits_replayed
    );
    Ok(())
}

/// Live half of [`run_stats`]: run the deterministic demo workload on a
/// traced in-memory server and dump everything the registry collected.
fn run_stats_live(slow: usize) -> Result<(), String> {
    use vpdt::store::{workload, StoreBuilder};
    let (workers, clients, txs, rels, universe, seed) =
        (4usize, 8u64, 200usize, 4usize, 6u64, 42u64);
    let alpha = workload::sharded_fd_constraint(rels);
    let initial = workload::sharded_initial(seed, rels, universe, 0.5);
    let server = StoreBuilder::new(initial, alpha)
        .omega(Omega::empty())
        .workers(workers)
        .build()
        .map_err(|e| format!("server refused to start: {e}"))?;
    let jobs = workload::sharded_jobs(seed, clients, txs, rels, universe);
    workload::serve_chunked(&server, &jobs, txs);
    let report = server.shutdown();
    print!("{}", report.metrics.render_prometheus());
    if slow > 0 {
        println!();
        println!(
            "# {} slowest traced transactions (of {} requested):",
            report.slowest.len().min(slow),
            slow
        );
        for timeline in report.slowest.iter().take(slow) {
            print!("{}", timeline.render());
        }
    }
    Ok(())
}

/// `vpdtool audit --log DIR`: the cold audit as a standalone command —
/// everything is reconstructed from the persisted artifacts (constraint,
/// schema, initial state, shape templates), every commit is replayed
/// through check-and-rollback, and hashes plus provenance are verified.
/// Ω interpretations are code, not data, so `--omega` selects the same one
/// the original server ran with (default: empty).
fn run_audit(args: &[String]) -> Result<(), String> {
    let mut log: Option<String> = None;
    let mut omega_name: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--log" => log = Some(value.clone()),
            "--omega" => omega_name = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    let dir = log.ok_or("--log DIR is required")?;
    let omega = match omega_name.as_deref() {
        None | Some("empty") => Omega::empty(),
        Some("order") => Omega::nat_order(),
        Some("arithmetic") => Omega::arithmetic(),
        Some(other) => return Err(format!("unknown omega {other} (empty|order|arithmetic)")),
    };
    // A sharded layout (shard-0/, decisions/) audits every shard's log
    // plus the coordinator's decision log; a plain layout audits as one
    // store.
    if vpdt::store::is_sharded_layout(std::path::Path::new(&dir)) {
        let audit = vpdt::store::cold_audit_sharded(std::path::Path::new(&dir), &omega)
            .map_err(|e| format!("sharded cold audit of {dir} failed to run: {e}"))?;
        println!(
            "sharded layout {dir}: {} shards, {} decisions, {} cross events, {} problem(s)",
            audit.shards.len(),
            audit.decisions,
            audit.cross_events,
            audit.problems.len()
        );
        for verdict in &audit.shards {
            println!("  {verdict}");
        }
        for problem in &audit.problems {
            println!("  problem: {problem}");
        }
        return if audit.ok() {
            Ok(())
        } else {
            Err("sharded cold audit failed".into())
        };
    }
    let verdict = cold_audit_dir(&dir, &omega)?;
    println!("{verdict}");
    if verdict.ok() {
        Ok(())
    } else {
        Err("cold audit failed".into())
    }
}
