//! The guard-verified store, end to end: compile guards once, serve many
//! clients concurrently, then audit the committed history against the
//! check-and-rollback semantics it replaced.
//!
//! ```text
//! cargo run --release --example concurrent_store
//! ```

use std::collections::BTreeMap;
use std::time::Instant;
use vpdt::eval::Omega;
use vpdt::store::{audit, run_jobs, run_serial_rollback, workload, GuardCache, VersionedStore};

fn main() {
    const RELS: usize = 4;
    const UNIVERSE: u64 = 6;
    const SEED: u64 = 7;
    const CLIENTS: u64 = 8;
    const PER_CLIENT: usize = 250;
    const THREADS: usize = 4;

    // One constraint guards the whole store: a functional dependency per
    // relation. Each conjunct is domain-independent and mentions a single
    // relation, so guards for single-relation transactions reduce to a
    // constant-size Δ and disjoint transactions commit concurrently.
    let alpha = workload::sharded_fd_constraint(RELS);
    let omega = Omega::empty();
    println!("constraint α:\n  {alpha}\n");

    let initial = workload::sharded_initial(SEED, RELS, UNIVERSE, 0.5);
    let store = VersionedStore::new(initial.clone());
    let cache = GuardCache::new(store.schema().clone(), alpha.clone(), omega.clone());

    // A deterministic mix of prepared statements from CLIENTS seeded clients.
    let jobs = workload::sharded_jobs(SEED, CLIENTS, PER_CLIENT, RELS, UNIVERSE);
    println!(
        "submitting {} transactions from {CLIENTS} clients across {THREADS} worker threads",
        jobs.len()
    );

    // Warm the guard cache: every ground program canonicalizes to a
    // prepared-statement shape, and only distinct *shapes* compile —
    // O(statements), independent of the universe size.
    let tc = Instant::now();
    for job in &jobs {
        cache.get_or_compile(&job.program).expect("compiles");
    }
    println!(
        "compiled {} statement shapes (from {} submitted programs) in {:.1?}",
        cache.cache_stats().shapes,
        jobs.len(),
        tc.elapsed()
    );

    let t0 = Instant::now();
    let report = run_jobs(&store, &cache, &jobs, THREADS);
    let concurrent = t0.elapsed();
    let (hits, misses) = cache.stats();
    println!(
        "guarded-concurrent: {} committed, {} aborted in {:.1?} \
         ({} footprint conflicts retried; guard cache: {} hits, {} compilations)",
        report.committed, report.aborted, concurrent, report.conflicts, hits, misses
    );

    // The baseline the paper displaces: serial check-and-rollback.
    let t1 = Instant::now();
    let (_, serial) = run_serial_rollback(initial.clone(), &jobs, &alpha, &omega);
    let serial_time = t1.elapsed();
    println!(
        "rollback-serial:    {} committed, {} aborted in {:.1?}",
        serial.committed, serial.aborted, serial_time
    );
    println!(
        "speedup: {:.1}x\n",
        serial_time.as_secs_f64() / concurrent.as_secs_f64()
    );

    // Audit: replay the committed history through RuntimeChecked and
    // cross-check every guard decision.
    let programs: BTreeMap<_, _> = jobs.iter().map(|j| (j.id, j.program.clone())).collect();
    let verdict = audit(
        &alpha,
        &omega,
        &initial,
        &store.snapshot().db,
        &store.history().events(),
        &programs,
        &cache.templates(),
    );
    println!("{verdict}");
    assert!(verdict.ok(), "the audit must verify the run");

    // A glimpse of the history log.
    let events = store.history().events();
    println!("\nfirst events of the {}-entry history:", events.len());
    for e in events.iter().take(6) {
        println!("  {e:?}");
    }
}
