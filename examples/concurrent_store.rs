//! The guard-verified store, end to end: build a resident server, serve
//! many concurrent client sessions, then audit the committed history
//! against the check-and-rollback semantics it replaced.
//!
//! ```text
//! cargo run --release --example concurrent_store
//! ```

use std::time::Instant;
use vpdt::eval::Omega;
use vpdt::store::{audit, run_serial_rollback, workload, StoreBuilder};

fn main() {
    const RELS: usize = 4;
    const UNIVERSE: u64 = 6;
    const SEED: u64 = 7;
    const CLIENTS: u64 = 8;
    const PER_CLIENT: usize = 250;
    const WORKERS: usize = 4;

    // One constraint guards the whole store: a functional dependency per
    // relation. Each conjunct is domain-independent and mentions a single
    // relation, so guards for single-relation transactions reduce to a
    // constant-size Δ and disjoint transactions commit concurrently.
    let alpha = workload::sharded_fd_constraint(RELS);
    let omega = Omega::empty();
    println!("constraint α:\n  {alpha}\n");

    let initial = workload::sharded_initial(SEED, RELS, UNIVERSE, 0.5);

    // The server owns the queue, the guard cache, and the worker pool; the
    // soundness base case (α holds at admission) is established here, once.
    let server = StoreBuilder::new(initial.clone(), alpha.clone())
        .omega(omega.clone())
        .workers(WORKERS)
        .build()
        .expect("initial state satisfies α");

    // A deterministic mix of prepared statements for CLIENTS seeded clients.
    let jobs = workload::sharded_jobs(SEED, CLIENTS, PER_CLIENT, RELS, UNIVERSE);

    // Warm the guard cache: every ground program canonicalizes to a
    // prepared-statement shape, and only distinct *shapes* compile —
    // O(statements), independent of the universe size.
    let tc = Instant::now();
    for job in &jobs {
        server.prepare(&job.program).expect("compiles");
    }
    println!(
        "compiled {} statement shapes (from {} programs) in {:.1?}",
        server.cache_stats().shapes,
        jobs.len(),
        tc.elapsed()
    );

    // Serve: one session per client, each from its own thread, pipelining
    // submissions (tickets now, outcomes later).
    println!("serving {CLIENTS} sessions across {WORKERS} worker threads");
    let t0 = Instant::now();
    let programs = workload::serve_chunked(&server, &jobs, PER_CLIENT);
    let concurrent = t0.elapsed();
    let report = server.shutdown();
    println!(
        "guarded-sessions:   {} committed, {} aborted in {:.1?} \
         ({} footprint conflicts retried; guard cache: {} hits, {} compilations)",
        report.exec.committed,
        report.exec.aborted,
        concurrent,
        report.exec.conflicts,
        report.exec.guard_hits,
        report.exec.guard_misses
    );

    // The baseline the paper displaces: serial check-and-rollback.
    let jobs_for_serial: Vec<vpdt::store::Job> = programs
        .iter()
        .map(|(id, p)| vpdt::store::Job {
            id: *id,
            program: p.clone(),
        })
        .collect();
    let t1 = Instant::now();
    let (_, serial) = run_serial_rollback(initial.clone(), &jobs_for_serial, &alpha, &omega);
    let serial_time = t1.elapsed();
    println!(
        "rollback-serial:    {} committed, {} aborted in {:.1?}",
        serial.committed, serial.aborted, serial_time
    );
    println!(
        "speedup: {:.1}x\n",
        serial_time.as_secs_f64() / concurrent.as_secs_f64()
    );

    // Audit: replay the committed history through RuntimeChecked and
    // cross-check every guard decision.
    let verdict = audit(
        &alpha,
        &omega,
        &initial,
        &report.final_db,
        &report.events,
        &programs,
        &report.templates,
    );
    println!("{verdict}");
    assert!(verdict.ok(), "the audit must verify the run");

    // A glimpse of the history log — note the session provenance on Begin.
    println!(
        "\nfirst events of the {}-entry history:",
        report.events.len()
    );
    for e in report.events.iter().take(6) {
        println!("  {e:?}");
    }
}
