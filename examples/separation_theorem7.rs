//! A guided tour of the Theorem 7 separation: a transaction with
//! first-order weakest preconditions but no first-order prerelations.
//!
//! ```text
//! cargo run --example separation_theorem7
//! ```

use vpdt::core::theorem7::{wpc_theorem7, SeparatorTransaction};
use vpdt::eval::holds_pure;
use vpdt::games::locality;
use vpdt::logic::{library, parse_formula};
use vpdt::structure::families;
use vpdt::tx::traits::Transaction;

fn main() {
    let t = SeparatorTransaction;

    println!("T(G) = tc(chain(G)) on chain-and-cycle graphs, the diagonal elsewhere.\n");
    let samples = [
        ("chain of 4", families::chain(4)),
        ("chain(3) + cycle(4)", families::cc_graph(3, &[4])),
        ("4-cycle (no chain!)", families::cycle(4)),
        ("tree G_{2,2}", families::gnm(2, 2)),
    ];
    for (name, db) in &samples {
        let out = t.apply(db).expect("applies");
        println!("{name:22} |-> {out:?}");
    }

    // A weakest precondition, computed and demonstrated.
    let alpha = parse_formula("forall x. exists y. E(x, y)").expect("parses");
    let wpc = wpc_theorem7(&alpha);
    println!("\nα  = {alpha}");
    println!(
        "wpc has rank {} and {} nodes",
        wpc.quantifier_rank(),
        wpc.size()
    );
    for (name, db) in &samples {
        let before = holds_pure(db, &wpc).expect("evaluates");
        let after = holds_pure(&t.apply(db).expect("applies"), &alpha).expect("evaluates");
        assert_eq!(before, after);
        println!("  {name:22}  D ⊨ wpc: {before:5}  T(D) ⊨ α: {after:5}  (equal ✓)");
    }

    // Corollary 3: the quantifier-rank blow-up.
    println!("\nCorollary 3 — rank of wpc(T, μ_k) vs 2^k:");
    for k in 1..=4usize {
        let a = library::at_least_nodes(k);
        let w = wpc_theorem7(&a);
        println!(
            "  qr(α) = {k}  qr(wpc) = {:2}   2^k = {:2}",
            w.quantifier_rank(),
            1 << k
        );
    }

    // Why no FO prerelation exists: the bounded degree property.
    println!("\nBounded degree property (why T ∉ PR(FO)):");
    for n in [4usize, 8, 12] {
        let chain = families::chain(n);
        let img = t.apply(&chain).expect("applies");
        println!(
            "  dc(chain_{n}) = {}   dc(T(chain_{n})) = {}",
            locality::degree_count(&chain),
            locality::degree_count(&img)
        );
    }
    println!(
        "An FO-definable map keeps dc bounded; T does not. Hence wpc ∈ FO but prerelations ∉ FO."
    );
}
