//! Integrity maintenance at work: a reporting-line database under a stream
//! of updates, maintained three ways (Section 1 + Section 6 of the paper):
//!
//! * **runtime rollback** — apply, check, roll back on violation;
//! * **full wpc guard** — `if wpc(T,α) then T else abort`;
//! * **Δ guard** — same, with the invariant-aware simplified residue.
//!
//! All three must agree on every outcome (they do — asserted below); the
//! point is the cost profile, printed at the end.
//!
//! ```text
//! cargo run --release --example integrity_maintenance
//! ```

use rand::{Rng, SeedableRng};
use std::time::Instant;
use vpdt::core::prerelations::compile_program;
use vpdt::core::safe::{Guarded, RuntimeChecked};
use vpdt::core::simplify::delta_for_insert;
use vpdt::core::workload;
use vpdt::core::wpc::wpc_sentence;
use vpdt::eval::Omega;
use vpdt::logic::{Elem, Schema};
use vpdt::tx::program::Program;
use vpdt::tx::traits::{Transaction, TxError};

fn main() {
    let schema = Schema::graph();
    let omega = Omega::empty();
    // "everyone reports to at most one manager": E(x,y) = x reports to y
    let alpha = workload::fd_constraint();

    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let staff = 12u64;
    let initial = workload::random_functional_graph(&mut rng, staff, 0.5);
    println!(
        "initial org chart: {} people, {} reporting edges, consistent: {}",
        initial.domain_size(),
        initial.rel("E").len(),
        vpdt::eval::holds(&initial, &omega, &alpha).expect("evaluates"),
    );

    let mut states = [initial.clone(), initial.clone(), initial.clone()];
    let mut times = [0u128; 3];
    let mut commits = 0usize;
    let mut aborts = 0usize;

    for step in 0..100 {
        let (a, b) = (rng.gen_range(0..staff), rng.gen_range(0..staff));
        let update = Program::insert_consts("E", [a, b]);
        let pre = compile_program("assign-manager", &update, &schema, &omega).expect("compiles");

        let full = Guarded::new(
            pre.clone(),
            wpc_sentence(&pre, &alpha).expect("translates"),
            omega.clone(),
        );
        let quick = Guarded::new(
            pre.clone(),
            delta_for_insert(&alpha, "E", &[Elem(a), Elem(b)]).expect("supported"),
            omega.clone(),
        );
        let rollback = RuntimeChecked::new(pre, alpha.clone(), omega.clone());

        let strategies: [&dyn Transaction; 3] = [&full, &quick, &rollback];
        let mut outcomes = Vec::new();
        for (i, s) in strategies.iter().enumerate() {
            let t0 = Instant::now();
            let r = s.apply(&states[i]);
            times[i] += t0.elapsed().as_micros();
            match r {
                Ok(next) => {
                    states[i] = next;
                    outcomes.push(true);
                }
                Err(TxError::Aborted(_)) => outcomes.push(false),
                Err(e) => panic!("step {step}: {e}"),
            }
        }
        assert!(
            outcomes.iter().all(|&o| o == outcomes[0]),
            "strategies disagreed at step {step}"
        );
        if outcomes[0] {
            commits += 1;
        } else {
            aborts += 1;
        }
    }

    assert_eq!(states[0], states[1]);
    assert_eq!(states[1], states[2]);
    println!(
        "\n100 updates: {commits} committed, {aborts} rejected (identically by all strategies)"
    );
    println!("final state consistent: {}", {
        vpdt::eval::holds(&states[0], &omega, &alpha).expect("evaluates")
    });
    println!("\ncumulative apply() time:");
    println!("  full-wpc guard     {:>8} µs", times[0]);
    println!(
        "  Δ guard            {:>8} µs   <- Section 6's simplification",
        times[1]
    );
    println!("  runtime + rollback {:>8} µs", times[2]);
}
