//! Quickstart: statically verified database transactions in five steps.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. declare a schema and an integrity constraint α;
//! 2. write a transaction as an update program;
//! 3. compile it to a prerelation description (Γ, {pre_R});
//! 4. compute the weakest precondition wpc(T, α) — Theorem 8's WPC[γ];
//! 5. run `if wpc(T,α) then T else abort`: consistency is maintained with
//!    no rollbacks, ever.

use vpdt::core::prerelations::compile_program;
use vpdt::core::safe::Guarded;
use vpdt::core::wpc::wpc_sentence;
use vpdt::eval::{holds, Omega};
use vpdt::logic::{parse_formula, Schema};
use vpdt::structure::Database;
use vpdt::tx::program::Program;
use vpdt::tx::traits::Transaction;

fn main() {
    // 1. A graph schema and a functional-dependency constraint:
    //    every node has at most one successor.
    let schema = Schema::graph();
    let omega = Omega::empty();
    let alpha =
        parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").expect("constraint parses");

    // 2. The transaction: link 1 → 4, then unlink 0 → 1.
    let program = Program::seq([
        Program::insert_consts("E", [1, 4]),
        Program::delete_consts("E", [0, 1]),
    ]);

    // 3. Compile to a prerelation description (Proposition 3): a finite
    //    term set Γ and a formula pre_E(x,y) over the *old* state.
    let pre = compile_program("relink", &program, &schema, &omega).expect("compiles");
    println!("Γ = {:?}", pre.gamma());
    let pre_e = vpdt::logic::simplify::normalize(&pre.pre("E").formula);
    let shown = pre_e.to_string();
    if shown.len() <= 400 {
        println!("pre_E(x0,x1) = {shown}");
    } else {
        println!(
            "pre_E(x0,x1) = <{} AST nodes; starts: {}…>",
            pre_e.size(),
            &shown[..200]
        );
    }

    // 4. The weakest precondition (Theorem 8): D ⊨ wpc ⟺ T(D) ⊨ α.
    let wpc = wpc_sentence(&pre, &alpha).expect("translates");
    println!(
        "\nwpc(T, α) has {} AST nodes, rank {}",
        wpc.size(),
        wpc.quantifier_rank()
    );

    // 5. The safe transaction.
    let safe = Guarded::new(pre, wpc, omega.clone());

    // A consistent database where the transaction is harmless…
    let ok_db = Database::graph([(0, 1), (2, 3)]);
    assert!(holds(&ok_db, &omega, &alpha).expect("evaluates"));
    match safe.apply(&ok_db) {
        Ok(out) => {
            assert!(holds(&out, &omega, &alpha).expect("evaluates"));
            println!("\naccepted: {ok_db:?}\n       -> {out:?}");
        }
        Err(e) => println!("unexpected abort: {e}"),
    }

    // …and one where blindly running it would violate α (1 already has a
    // successor), so the guard aborts *before* touching the data.
    let risky_db = Database::graph([(0, 1), (1, 2)]);
    assert!(holds(&risky_db, &omega, &alpha).expect("evaluates"));
    match safe.apply(&risky_db) {
        Ok(_) => println!("should have aborted!"),
        Err(e) => println!("\nrejected: {risky_db:?}\n       ({e})"),
    }
}
