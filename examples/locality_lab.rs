//! A finite-model-theory lab session: the game-theoretic tools behind the
//! paper's impossibility proofs, applied interactively.
//!
//! ```text
//! cargo run --release --example locality_lab
//! ```

use vpdt::games::ajtai_fagin::{
    colored_database, duplicator_round_growing, striped_spoiler, AfParams,
};
use vpdt::games::{ef, hanf};
use vpdt::structure::families;

fn main() {
    // 1. Ehrenfeucht–Fraïssé: how many quantifiers to tell one cycle from two?
    println!("1. EF games: C_2n vs C_n ⊎ C_n");
    for n in [3usize, 4, 6, 8] {
        let one = families::cycle(2 * n);
        let two = families::two_cycles(n, n);
        let rank = ef::min_distinguishing_rank(&one, &two, 3)
            .map(|k| k.to_string())
            .unwrap_or("> 3".to_string());
        println!("   n = {n}: first distinguishing rank {rank}");
    }

    // 2. Hanf locality: the G_{n,m} census from Theorem 2, Claim 3.
    println!("\n2. Hanf censuses of G_(n,n) vs G_(n-1,n+1)");
    for r in 1..=3usize {
        let n = 2 * r + 2;
        let equal = hanf::census_equivalent(&families::gnm(n, n), &families::gnm(n - 1, n + 1), r);
        println!("   r = {r}, n = {n}: equal r-type census: {equal}");
    }

    // 3. The linear-order threshold behind Theorem 7's wpc algorithm.
    println!("\n3. L_m ≡_k L_m' once both are ≥ 2^k − 1");
    for k in 1..=3usize {
        let th = (1usize << k) - 1;
        let same = ef::duplicator_wins(
            &families::linear_order(th),
            &families::linear_order(th + 2),
            k,
        );
        let diff = ef::duplicator_wins(
            &families::linear_order(th - 1),
            &families::linear_order(th),
            k,
        );
        println!(
            "   k = {k}: L_{th} ≡ L_{} : {same};  L_{} ≡ L_{th} : {diff}",
            th + 2,
            th - 1
        );
    }

    // 4. One full Ajtai–Fagin round for monadic Σ¹₁.
    println!("\n4. Ajtai–Fagin: duplicator beats the striped 2-coloring");
    let params = AfParams { c: 2, d: 1, m: 2 };
    let t = duplicator_round_growing(params, 24, 512, &striped_spoiler(2))
        .expect("strategy wins for n large enough");
    println!(
        "   G_(n,n) with n = {}; collapsed nodes {} and {} -> G' in Tree − G",
        t.n, t.collapsed.0, t.collapsed.1
    );
    println!(
        "   Hanf (d,m)-equivalence of the colored graphs: {}",
        t.hanf_ok
    );
    let a = colored_database(&t.g1, &t.colors1, 2);
    let b = colored_database(&t.g2, &t.colors2, 2);
    println!(
        "   duplicator survives 1 round of the colored EF game: {}",
        ef::duplicator_wins(&a, &b, 1)
    );
}
