//! The recursive substrate: Datalog¬ views as transactions — and why
//! recursion destroys verifiability (Theorem B).
//!
//! ```text
//! cargo run --example datalog_views
//! ```

use vpdt::structure::{families, Database};
use vpdt::tx::datalog::{sg_program, tc_program, Strategy};
use vpdt::tx::recursive::{tc_datalog, SgTransaction};
use vpdt::tx::traits::Transaction;

fn main() {
    // A small family tree: parent edges.
    let family = Database::graph([
        (0, 1),
        (0, 2), // 0's children: 1, 2
        (1, 3),
        (1, 4), // 1's children: 3, 4
        (2, 5), // 2's child: 5
    ]);
    println!("family tree: {family:?}\n");

    // Ancestor = transitive closure, as a Datalog view.
    let ancestors = tc_program()
        .run(&family, Strategy::SemiNaive)
        .expect("runs");
    println!("ancestor pairs (tc): {} tuples", ancestors["tc"].len());
    for t in &ancestors["tc"] {
        println!("   {} is an ancestor of {}", t[0], t[1]);
    }

    // Same generation: siblings and cousins.
    let gens = sg_program()
        .run(&family, Strategy::SemiNaive)
        .expect("runs");
    let mut cousins: Vec<String> = gens["sg"]
        .iter()
        .filter(|t| t[0] < t[1])
        .map(|t| format!("{} ~ {}", t[0], t[1]))
        .collect();
    cousins.sort();
    println!("\nsame-generation pairs (sg): {}", cousins.join(", "));

    // As a *transaction* (replace E by its closure), tc is a perfectly good
    // total map on databases — but by Theorem B it has no FO weakest
    // preconditions, so it cannot be statically verified against FO
    // constraints. See the locality_lab example for the game argument.
    let tx = tc_datalog(Strategy::SemiNaive);
    let closed = tx.apply(&family).expect("applies");
    println!(
        "\ntc-as-transaction: {} edges -> {} edges",
        family.rel("E").len(),
        closed.rel("E").len()
    );

    // Cross-check against the native graph algorithm.
    let native = vpdt::tx::recursive::TcTransaction
        .apply(&family)
        .expect("applies");
    assert_eq!(closed, native);
    println!("datalog and native tc agree ✓");

    // And sg on a perfect tree for good measure.
    let tree = families::complete_binary_tree(3);
    let sg = SgTransaction.apply(&tree).expect("applies");
    println!(
        "\nsg on the depth-3 binary tree: {} nodes, {} same-generation pairs",
        tree.domain_size(),
        sg.rel("E").len()
    );
}
