//! A minimal, dependency-free stand-in for the subset of the `proptest` API
//! this workspace uses: the [`proptest!`] macro, integer-range / `Just` /
//! tuple / `prop_map` / `prop_oneof!` strategies, `BoxedStrategy`, and the
//! `prop_assert*` macros.
//!
//! Builds run with no registry access, so the workspace vendors this shim.
//! Semantics differ from real proptest in one deliberate way: cases are
//! generated from a fixed deterministic seed per case index and failures are
//! **not** shrunk — a failing case is reproduced exactly by rerunning the
//! test, which is all the workspace's property tests need.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the property tests import.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        0x5eed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // A closure so `return Ok(())` (proptest's early-accept
                    // idiom) skips one case, not the whole test.
                    let case_body = move || -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(e) = case_body() {
                        panic!("property rejected case {case}: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A weighted (or unweighted) choice among strategies with a common value
/// type. Every arm is boxed, so arms of different strategy types mix freely.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
