//! Test configuration and the deterministic generator behind case sampling.

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator used to sample strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn deterministic(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
