//! Value-generation strategies: integer ranges, `Just`, tuples, `prop_map`,
//! boxing, and weighted choice.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy generating `f` of this strategy's values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// A choice over the given `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_uniformly_enough() {
        let mut rng = TestRng::deterministic(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(1usize..6).generate(&mut rng) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::deterministic(2);
        let s = (0u64..10, 0u64..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn oneof_respects_zero_weight_arms() {
        let mut rng = TestRng::deterministic(3);
        let s = OneOf::new(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng), 2);
        }
    }

    #[test]
    fn boxed_strategies_clone_and_share() {
        let mut rng = TestRng::deterministic(4);
        let a = (5u32..6).boxed();
        let b = a.clone();
        assert_eq!(a.generate(&mut rng), 5);
        assert_eq!(b.generate(&mut rng), 5);
    }
}
