//! A minimal, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! Builds run with no registry access, so the workspace vendors this shim
//! instead of depending on crates.io. Everything is deterministic: the only
//! constructor is [`SeedableRng::seed_from_u64`], which also keeps the
//! workloads and audits reproducible by construction (there is deliberately
//! no `thread_rng`/`from_entropy` here).

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps 64 random bits into `[low, high)`.
    fn sample_from(bits: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(bits: u64, low: Self, high: Self) -> Self {
                let span = (high as i128) - (low as i128);
                debug_assert!(span > 0, "cannot sample from an empty range");
                ((low as i128) + (bits as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from the half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from an empty range");
        T::sample_from(self.next_u64(), range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa: uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64, which passes the
    /// statistical bar for test workloads and is trivially seedable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
            let x = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }
}
