//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API this workspace uses: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Builds run with no registry access, so the workspace vendors this shim.
//! Measurement is simple but honest: each benchmark warms up, then times
//! fixed-size batches for the configured measurement window and reports the
//! median batch time per iteration. No statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Time budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            median_ns: None,
        }
    }

    /// Times `f`, recording the median per-iteration latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibrate a batch size that is long enough to time.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((50_000.0 / per_iter.max(1.0)).ceil() as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    fn report(&self, label: &str) {
        match self.median_ns {
            Some(ns) => println!("{label:<50} {}", format_ns(ns)),
            None => println!("{label:<50} (no measurement)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:10.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:10.3} ms/iter", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
