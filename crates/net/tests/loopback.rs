//! Loopback integration tests: real TCP connections against a resident
//! [`NetServer`], covering the happy path, the pipelined window mode,
//! and — in the WAL crash-harness style — every way a hostile or dying
//! peer can damage a frame, asserting typed errors, clean per-connection
//! teardown, and an unpoisoned server that keeps serving other clients.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use vpdt_net::{
    names, FramePoll, FrameReader, NetClient, NetOptions, NetServer, Request, Response,
    WireOutcome, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use vpdt_store::{workload, StoreBuilder, WalOptions};
use vpdt_tx::program::Program;

const RELS: usize = 3;
const UNIVERSE: u64 = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vpdt-net-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An in-memory store behind a loopback front door, plus its handle and
/// serving thread.
fn spawn_server(
    persist: Option<&std::path::Path>,
    allow_remote_shutdown: bool,
) -> (
    vpdt_net::ServerHandle,
    std::thread::JoinHandle<vpdt_store::ServerReport>,
) {
    let alpha = workload::sharded_fd_constraint(RELS);
    let initial = workload::sharded_initial(11, RELS, UNIVERSE, 0.5);
    let mut builder = StoreBuilder::new(initial, alpha).workers(2);
    if let Some(dir) = persist {
        builder = builder.persist_with(
            dir,
            WalOptions {
                fsync_commits: false,
                ..WalOptions::default()
            },
        );
    }
    let store = builder.build().expect("server starts");
    let net = NetServer::bind(
        store,
        "127.0.0.1:0",
        NetOptions {
            allow_remote_shutdown,
            ..NetOptions::default()
        },
    )
    .expect("binds loopback");
    let handle = net.handle();
    let thread = std::thread::spawn(move || net.serve());
    (handle, thread)
}

/// A deterministic mixed workload (inserts and deletes under the FD
/// constraint — some commit, some guard-abort).
fn programs(seed: u64, n: usize) -> Vec<Program> {
    workload::sharded_jobs(seed, 1, n, RELS, UNIVERSE)
        .into_iter()
        .map(|j| j.program)
        .collect()
}

#[test]
fn sync_round_trips_carry_version_and_root_hash() {
    let (handle, thread) = spawn_server(None, false);
    let mut client = NetClient::connect(handle.addr(), "sync-test").expect("connects");
    let mut last_version = 0;
    let mut commits = 0;
    for p in programs(5, 40) {
        match client.submit_sync(&p).expect("round trip") {
            WireOutcome::Committed { version, root_hash } => {
                assert!(version > last_version, "versions are monotone");
                let root = root_hash.expect("live server still holds the commitment");
                assert_ne!(root, 0, "commit carries its state commitment");
                last_version = version;
                commits += 1;
            }
            WireOutcome::GuardAborted { .. } | WireOutcome::RolledBack { .. } => {}
            WireOutcome::Failed { code, detail } => panic!("unexpected failure [{code}] {detail}"),
        }
    }
    assert!(commits > 0, "workload commits at least once");

    let stats = client.stats().expect("remote stats");
    assert!(
        stats.contains(names::NET_CONNECTIONS),
        "remote exposition includes front-door metrics"
    );
    assert!(stats.contains("store_tx_committed_total"));

    client.goodbye().expect("orderly close");
    handle.stop();
    let report = thread.join().expect("serve thread");
    assert_eq!(report.exec.committed, commits);
    assert_eq!(report.metrics.gauge(names::NET_CONNECTIONS), 0);
    assert_eq!(report.metrics.counter(names::NET_CONNECTIONS_TOTAL), 1);
    assert!(report.metrics.counter(names::NET_BYTES_IN_TOTAL) > 0);
    assert!(report.metrics.counter(names::NET_BYTES_OUT_TOTAL) > 0);
    assert_eq!(report.metrics.counter(names::NET_FRAME_ERRORS_TOTAL), 0);
}

#[test]
fn pipelined_window_preserves_submission_order() {
    let (handle, thread) = spawn_server(None, false);
    let mut client = NetClient::connect(handle.addr(), "pipeline-test").expect("connects");
    let batch = programs(7, 64);
    const WINDOW: usize = 16;
    let mut expected_next = Vec::new();
    let mut seen = Vec::new();
    for p in &batch {
        if client.inflight() >= WINDOW {
            let (request_id, _tx, _outcome) = client.next_outcome().expect("windowed outcome");
            seen.push(request_id);
        }
        expected_next.push(client.submit(p).expect("pipelined submit"));
    }
    let synced_at = client
        .sync(|request_id, _tx, _outcome| seen.push(request_id))
        .expect("barrier");
    assert!(synced_at > 0);
    assert_eq!(seen, expected_next, "outcomes arrive in submission order");
    assert_eq!(client.inflight(), 0);
    client.goodbye().expect("orderly close");
    handle.stop();
    let report = thread.join().expect("serve thread");
    assert_eq!(
        report
            .metrics
            .counter(&format!("{}{{kind=\"submit\"}}", names::NET_REQUESTS_TOTAL)),
        batch.len() as u64
    );
}

/// Drives one raw (client-side) exchange: optional good hello, then the
/// damaged bytes, then reads whatever typed error the server answers.
/// Returns the codes of every `Error` response received before the
/// server closed the connection.
fn raw_exchange(addr: std::net::SocketAddr, hello_first: bool, damage: &[u8]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let mut reader = FrameReader::new();
    if hello_first {
        let mut payload = Vec::new();
        Request::Hello {
            version: PROTOCOL_VERSION,
            client: "raw".into(),
        }
        .encode(&mut payload);
        vpdt_net::frame::write_frame(&mut stream, &payload).expect("hello frame");
        match reader.poll(&mut stream).expect("welcome") {
            FramePoll::Frame(p) => {
                assert!(matches!(
                    Response::decode(&p).expect("welcome decodes"),
                    Response::Welcome { .. }
                ));
            }
            other => panic!("expected Welcome, got {other:?}"),
        }
    }
    stream.write_all(damage).expect("writes damage");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut codes = Vec::new();
    loop {
        match reader.poll(&mut stream) {
            Ok(FramePoll::Frame(p)) => {
                if let Ok(Response::Error { code, .. }) = Response::decode(&p) {
                    codes.push(code);
                }
            }
            Ok(FramePoll::Eof) | Err(_) => break,
            Ok(FramePoll::Pending) => {}
        }
    }
    codes
}

/// Frames `payload` by hand so the checksum/length can be damaged.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    vpdt_net::frame::write_frame(&mut out, payload).expect("vec write");
    out
}

#[test]
fn damaged_frames_get_typed_errors_and_never_poison_the_server() {
    let (handle, thread) = spawn_server(None, false);
    let addr = handle.addr();

    let mut submit_payload = Vec::new();
    Request::Submit {
        request_id: 1,
        program: programs(3, 1).remove(0),
    }
    .encode(&mut submit_payload);
    let good = framed(&submit_payload);

    // Version mismatch in the hello.
    let mut bad_hello = Vec::new();
    Request::Hello {
        version: PROTOCOL_VERSION + 9,
        client: "from the future".into(),
    }
    .encode(&mut bad_hello);
    assert_eq!(
        raw_exchange(addr, false, &framed(&bad_hello)),
        vec!["version_mismatch"]
    );

    // Anything but hello first.
    assert_eq!(raw_exchange(addr, false, &good), vec!["protocol"]);

    // Checksum damage: flip a payload byte after the handshake.
    let mut corrupt = good.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert_eq!(raw_exchange(addr, true, &corrupt), vec!["corrupt"]);

    // Oversized length prefix, rejected from the header alone.
    let mut oversized = ((MAX_FRAME_LEN + 1).to_le_bytes()).to_vec();
    oversized.extend_from_slice(&[0u8; 8]);
    assert_eq!(raw_exchange(addr, true, &oversized), vec!["oversized"]);

    // Truncation at every boundary of a valid frame: the peer dies
    // mid-frame. (The server may or may not get its error frame out
    // before noticing the close; what matters is the typed teardown,
    // checked via the frame-error counter below, and that cuts never
    // produce an outcome.)
    for cut in [1, 4, 11, good.len() / 2, good.len() - 1] {
        let codes = raw_exchange(addr, true, &good[..cut]);
        assert!(
            codes.is_empty() || codes == vec!["truncated"],
            "cut at {cut}: got {codes:?}"
        );
    }

    // Undecodable payload (unknown request tag).
    assert_eq!(raw_exchange(addr, true, &framed(&[250])), vec!["codec"]);

    // The server took all of that without flinching: a well-behaved
    // client connects and commits.
    let mut client = NetClient::connect(addr, "survivor").expect("connects after abuse");
    let mut committed = false;
    for p in programs(9, 10) {
        if client.submit_sync(&p).expect("round trip").is_committed() {
            committed = true;
        }
    }
    assert!(committed, "server still commits after hostile clients");
    client.goodbye().expect("orderly close");

    handle.stop();
    let report = thread.join().expect("serve thread");
    assert!(
        report.metrics.counter(names::NET_FRAME_ERRORS_TOTAL) >= 7,
        "each damaged exchange bumped the frame-error counter"
    );
    assert_eq!(
        report.metrics.gauge(names::NET_CONNECTIONS),
        0,
        "every connection tore down cleanly"
    );
}

#[test]
fn remote_shutdown_is_forbidden_unless_opted_in() {
    let (handle, thread) = spawn_server(None, false);
    let client = NetClient::connect(handle.addr(), "no-auth").expect("connects");
    match client.shutdown_server() {
        Err(vpdt_net::NetError::Remote { code, .. }) => assert_eq!(code, "forbidden"),
        other => panic!("expected forbidden, got {other:?}"),
    }
    handle.stop();
    thread.join().expect("serve thread");
}

#[test]
fn killed_mid_pipeline_no_acknowledged_commit_is_lost() {
    let dir = tmp_dir("killed-client");
    let (handle, thread) = spawn_server(Some(&dir), false);

    // A client pipelines a window of submissions, collects outcomes for
    // the first half, then dies without goodbye — the socket just drops,
    // as a killed process would.
    let mut client = NetClient::connect(handle.addr(), "doomed").expect("connects");
    let batch = programs(13, 30);
    for p in &batch {
        client.submit(p).expect("pipelined submit");
    }
    let mut acknowledged = Vec::new();
    for _ in 0..15 {
        let (_req, _tx, outcome) = client.next_outcome().expect("acked outcome");
        if let WireOutcome::Committed { version, root_hash } = outcome {
            let root = root_hash.expect("live server still holds the commitment");
            acknowledged.push((version, root));
        }
    }
    drop(client); // no goodbye: mid-pipeline death

    // The server keeps serving: another client still commits.
    let mut other = NetClient::connect(handle.addr(), "bystander").expect("connects");
    for p in programs(17, 10) {
        other.submit_sync(&p).expect("round trip");
    }
    other.goodbye().expect("orderly close");

    handle.stop();
    let report = thread.join().expect("serve thread");
    assert!(
        !acknowledged.is_empty(),
        "the doomed client saw acknowledged commits"
    );

    // Cold recovery: every commit the dead client was acked — version
    // *and* root hash — survives in the recovered store's history.
    let recovered = StoreBuilder::recover(&dir).build().expect("recovers");
    for (version, root_hash) in &acknowledged {
        assert_eq!(
            recovered.commit_root(*version),
            Some(*root_hash),
            "acked commit at version {version} must survive recovery"
        );
    }
    assert_eq!(
        recovered.version(),
        report.final_version,
        "recovery replays every durable commit"
    );
    recovered.shutdown();
}
