//! Connection-scaling tests for the multiplexed front door: thread
//! cost must be O(pool), not O(connections); responses must be FIFO
//! per connection for *every* request kind; and idle connections dying
//! mid-serve must never cost an acknowledged commit.
//!
//! The thread-count assertions read `/proc/self/status`, so this suite
//! is Linux-only; the tests serialize on a process-local gate because
//! a concurrent test's server pool would pollute the count.
#![cfg(target_os = "linux")]

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use vpdt_net::{
    names, FramePoll, FrameReader, NetClient, NetOptions, NetServer, Request, Response,
    WireOutcome, PROTOCOL_VERSION,
};
use vpdt_store::{workload, StoreBuilder, WalOptions};
use vpdt_tx::program::Program;

const RELS: usize = 3;
const UNIVERSE: u64 = 4;

/// Thread-count measurements are process-wide: run these tests one at
/// a time.
static GATE: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vpdt-scaling-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(
    persist: Option<&std::path::Path>,
    opts: NetOptions,
) -> (
    vpdt_net::ServerHandle,
    std::thread::JoinHandle<vpdt_store::ServerReport>,
) {
    let alpha = workload::sharded_fd_constraint(RELS);
    let initial = workload::sharded_initial(11, RELS, UNIVERSE, 0.5);
    let mut builder = StoreBuilder::new(initial, alpha).workers(2);
    if let Some(dir) = persist {
        builder = builder.persist_with(
            dir,
            WalOptions {
                fsync_commits: false,
                ..WalOptions::default()
            },
        );
    }
    let store = builder.build().expect("server starts");
    let net = NetServer::bind(store, "127.0.0.1:0", opts).expect("binds loopback");
    let handle = net.handle();
    let thread = std::thread::spawn(move || net.serve());
    (handle, thread)
}

fn programs(seed: u64, n: usize) -> Vec<Program> {
    workload::sharded_jobs(seed, 1, n, RELS, UNIVERSE)
        .into_iter()
        .map(|j| j.program)
        .collect()
}

/// The `Threads:` field of `/proc/self/status` — every OS thread in
/// this process, the in-process server's pools included.
fn thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .expect("procfs")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads field")
}

/// 128 idle connections plus 8 active pipelined clients must not grow
/// the process thread count: connections are multiplexed over the
/// fixed reactor/writer pools, not given threads of their own.
#[test]
fn idle_connections_cost_no_threads() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, thread) = spawn_server(None, NetOptions::default());
    let addr = handle.addr();

    // Baseline after the server (accept loop + pools + store workers)
    // is fully up: one welcome round trip proves the pools are serving.
    let mut probe = NetClient::connect(addr, "probe").expect("connects");
    let baseline = thread_count();

    let mut idle = Vec::new();
    for i in 0..128 {
        idle.push(NetClient::connect(addr, &format!("idle-{i}")).expect("idle connects"));
    }
    let mut active: Vec<NetClient> = (0..8)
        .map(|i| NetClient::connect(addr, &format!("active-{i}")).expect("active connects"))
        .collect();
    // Pipeline a window on every active client before draining any —
    // 8 clients × 12 in-flight transactions at peak.
    for (i, client) in active.iter_mut().enumerate() {
        for p in programs(20 + i as u64, 12) {
            client.submit(&p).expect("pipelined submit");
        }
    }
    let during = thread_count();
    assert!(
        during.saturating_sub(baseline) <= 4,
        "136 connections must ride the fixed pools: \
         baseline {baseline} threads, with connections {during}"
    );

    let mut committed = 0usize;
    for client in active.iter_mut() {
        client
            .sync(|_req, _tx, outcome| {
                if outcome.is_committed() {
                    committed += 1;
                }
            })
            .expect("active barrier");
    }
    assert!(committed > 0, "active clients commit while idles sit");

    // The pool gauges are live on the remote exposition.
    let stats = probe.stats().expect("remote stats");
    for name in [
        names::NET_REACTOR_THREADS,
        names::NET_WRITER_THREADS,
        names::NET_OUTBOX_PENDING,
        names::NET_CONNECTIONS,
    ] {
        assert!(stats.contains(name), "exposition carries {name}");
    }

    for client in active {
        client.goodbye().expect("orderly close");
    }
    for client in idle {
        client.goodbye().expect("orderly close");
    }
    probe.goodbye().expect("orderly close");
    handle.stop();
    let report = thread.join().expect("serve thread");
    assert_eq!(report.metrics.gauge(names::NET_CONNECTIONS), 0);
    assert_eq!(report.metrics.gauge(names::NET_OUTBOX_PENDING), 0);
    assert_eq!(report.metrics.counter(names::NET_CONNECTIONS_TOTAL), 137);
}

/// Raw-frame helper: writes one request.
fn send_request(stream: &mut TcpStream, req: &Request) {
    let mut payload = Vec::new();
    req.encode(&mut payload);
    vpdt_net::frame::write_frame(stream, &payload).expect("request frame");
}

/// Responses must come back in request order for *every* request kind:
/// a `Stats` or `Wait` pipelined between submits lands exactly at its
/// slot, never before an earlier submit's outcome. (The stock client
/// forbids interleaving, so this drives raw frames.)
#[test]
fn interleaved_kinds_answer_in_request_order() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, thread) = spawn_server(None, NetOptions::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    let mut reader = FrameReader::new();

    send_request(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: "interleave".into(),
        },
    );
    // One pipelined burst, no reads in between: the server alone
    // enforces the ordering.
    let batch = programs(31, 3);
    send_request(
        &mut stream,
        &Request::Submit {
            request_id: 101,
            program: batch[0].clone(),
        },
    );
    send_request(&mut stream, &Request::Stats);
    send_request(
        &mut stream,
        &Request::Submit {
            request_id: 102,
            program: batch[1].clone(),
        },
    );
    send_request(&mut stream, &Request::Wait);
    send_request(
        &mut stream,
        &Request::Submit {
            request_id: 103,
            program: batch[2].clone(),
        },
    );
    send_request(&mut stream, &Request::Goodbye);
    stream.flush().expect("burst flushed");

    let mut kinds = Vec::new();
    let mut submit_ids = Vec::new();
    loop {
        match reader.poll(&mut stream).expect("response stream") {
            FramePoll::Frame(p) => {
                let resp = Response::decode(&p).expect("response decodes");
                kinds.push(match &resp {
                    Response::Welcome { .. } => "welcome",
                    Response::Outcome { request_id, .. } => {
                        submit_ids.push(*request_id);
                        "outcome"
                    }
                    Response::Synced { .. } => "synced",
                    Response::StatsText { text } => {
                        assert!(text.contains(names::NET_CONNECTIONS));
                        "stats"
                    }
                    Response::CheckpointDone { .. } => "checkpoint",
                    Response::Bye => "bye",
                    Response::Error { .. } => "error",
                });
            }
            FramePoll::Eof => break,
            FramePoll::Pending => {}
        }
    }
    assert_eq!(
        kinds,
        vec!["welcome", "outcome", "stats", "outcome", "synced", "outcome", "bye"],
        "every response lands at its request's slot"
    );
    assert_eq!(submit_ids, vec![101, 102, 103]);

    handle.stop();
    thread.join().expect("serve thread");
}

/// Idle connections killed mid-serve (sockets dropped, no goodbye) are
/// invisible to durability: every (version, root) pair acknowledged to
/// a surviving client is present after cold recovery.
#[test]
fn killing_idle_connections_loses_no_acked_commit() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("idle-kill");
    let (handle, thread) = spawn_server(Some(&dir), NetOptions::default());
    let addr = handle.addr();

    let mut idle = Vec::new();
    for i in 0..64 {
        idle.push(NetClient::connect(addr, &format!("doomed-idle-{i}")).expect("connects"));
    }

    let mut survivor = NetClient::connect(addr, "survivor").expect("connects");
    let mut acknowledged = Vec::new();
    let mut tally = |outcome: WireOutcome| {
        if let WireOutcome::Committed { version, root_hash } = outcome {
            let root = root_hash.expect("live server still holds the commitment");
            acknowledged.push((version, root));
        }
    };
    let batch = programs(43, 40);
    for (i, p) in batch.iter().enumerate() {
        survivor.submit(p).expect("pipelined submit");
        if i == batch.len() / 2 {
            // Mid-pipeline: the whole idle fleet dies at once, without
            // goodbyes — as a mass client crash would.
            idle.clear();
        }
        if survivor.inflight() >= 16 {
            let (_req, _tx, outcome) = survivor.next_outcome().expect("acked outcome");
            tally(outcome);
        }
    }
    survivor
        .sync(|_req, _tx, outcome| tally(outcome))
        .expect("barrier");
    survivor.goodbye().expect("orderly close");
    assert!(!acknowledged.is_empty(), "the survivor saw commits");

    handle.stop();
    let report = thread.join().expect("serve thread");
    assert_eq!(report.metrics.gauge(names::NET_CONNECTIONS), 0);

    let recovered = StoreBuilder::recover(&dir).build().expect("recovers");
    for (version, root) in &acknowledged {
        assert_eq!(
            recovered.commit_root(*version),
            Some(*root),
            "acked commit at version {version} must survive recovery"
        );
    }
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
