//! The wire frame: `[u32 len][u64 FNV-1a(payload)][payload]`.
//!
//! The exact discipline of the write-ahead log's on-disk frames (little
//! endian, FNV-1a over the payload only) applied to a socket. The
//! symmetry is deliberate: one framing idiom across the persistence and
//! network boundaries means one set of corruption semantics — a frame
//! whose checksum does not cover its own header is detected by the
//! length prefix walking out of sync, exactly as in log recovery.
//!
//! Reading distinguishes three terminal conditions a caller must treat
//! differently:
//!
//! * **clean EOF** — the peer closed *between* frames: an orderly
//!   disconnect, not an error ([`FramePoll::Eof`]);
//! * **truncated** — the peer closed *mid*-frame: bytes were lost
//!   ([`NetError::Truncated`]);
//! * **corrupt / oversized** — the bytes are present but wrong
//!   ([`NetError::Corrupt`], [`NetError::Oversized`]). The length
//!   prefix is validated against [`MAX_FRAME_LEN`] as soon as it is
//!   readable, *before* any payload is buffered, so a hostile length
//!   can never drive an allocation.
//!
//! [`FrameReader`] is an incremental accumulator: it owns the partial
//! bytes between reads, so a socket with a read timeout can poll it in
//! a loop (checking a stop flag between polls) without ever losing a
//! half-received frame.

use crate::proto::NetError;
use std::io::{ErrorKind, Read, Write};
use vpdt_store::history::fnv1a_64;

/// Bytes of framing before each payload: `u32` length + `u64` FNV-1a.
pub const FRAME_HEADER: usize = 12;

/// Hard cap on a frame's payload length (1 MiB). A length prefix above
/// this is rejected before any buffering — a malformed or hostile
/// client must never size the server's allocations.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Frames `payload` and writes it in one buffered write.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    w.write_all(&out).map_err(NetError::io)?;
    w.flush().map_err(NetError::io)
}

/// One step of [`FrameReader::poll`].
#[derive(Debug)]
pub enum FramePoll {
    /// A complete, checksum-verified payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Eof,
    /// No complete frame yet and the read timed out — poll again (after
    /// checking whatever condition the timeout exists to observe).
    Pending,
}

/// Incremental frame decoder over a byte stream.
///
/// Keeps partially received bytes across [`poll`](FrameReader::poll)
/// calls, so short reads and read timeouts never lose data. One reader
/// per connection direction.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads until a complete frame, clean EOF, or timeout.
    ///
    /// On a socket without a read timeout this blocks until
    /// [`FramePoll::Frame`] or [`FramePoll::Eof`]; with a timeout it
    /// returns [`FramePoll::Pending`] when the deadline passes first.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<FramePoll, NetError> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.try_extract()? {
                return Ok(FramePoll::Frame(payload));
            }
            match r.read(&mut scratch) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(FramePoll::Eof)
                    } else {
                        Err(NetError::Truncated {
                            got: self.buf.len(),
                            want: self.want(),
                        })
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(FramePoll::Pending);
                }
                Err(e) => return Err(NetError::io(e)),
            }
        }
    }

    /// Blocks until the next frame; a clean EOF here is an error (the
    /// caller expected a frame). For clients awaiting a response.
    pub fn next_frame(&mut self, r: &mut impl Read) -> Result<Vec<u8>, NetError> {
        loop {
            match self.poll(r)? {
                FramePoll::Frame(payload) => return Ok(payload),
                FramePoll::Eof => {
                    return Err(NetError::Protocol(
                        "connection closed while awaiting a response".into(),
                    ));
                }
                FramePoll::Pending => continue,
            }
        }
    }

    /// Total bytes the frame being accumulated needs (header included),
    /// or the header size while the length prefix itself is incomplete.
    fn want(&self) -> usize {
        if self.buf.len() >= 4 {
            let len =
                u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes present")) as usize;
            FRAME_HEADER + len
        } else {
            FRAME_HEADER
        }
    }

    /// Extracts one complete frame from the accumulator, if present.
    /// Validates the length prefix (before buffering is sized by it) and
    /// the checksum.
    fn try_extract(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.buf.len() >= 4 {
            let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes present"));
            if len > MAX_FRAME_LEN {
                return Err(NetError::Oversized {
                    len,
                    max: MAX_FRAME_LEN,
                });
            }
        }
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes present")) as usize;
        let sum = u64::from_le_bytes(self.buf[4..12].try_into().expect("8 bytes present"));
        if self.buf.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER..FRAME_HEADER + len].to_vec();
        let found = fnv1a_64(&payload);
        if found != sum {
            return Err(NetError::Corrupt {
                expected: sum,
                found,
            });
        }
        self.buf.drain(..FRAME_HEADER + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).expect("vec write");
        out
    }

    #[test]
    fn round_trips_multiple_frames_then_clean_eof() {
        let mut bytes = framed(b"alpha");
        bytes.extend_from_slice(&framed(b""));
        bytes.extend_from_slice(&framed(b"omega"));
        let mut r = FrameReader::new();
        let mut src = Cursor::new(bytes);
        for want in [&b"alpha"[..], b"", b"omega"] {
            match r.poll(&mut src).expect("frame") {
                FramePoll::Frame(p) => assert_eq!(p, want),
                other => panic!("expected frame, got {other:?}"),
            }
        }
        assert!(matches!(r.poll(&mut src).expect("eof"), FramePoll::Eof));
    }

    #[test]
    fn truncation_at_every_boundary_is_truncated_never_a_frame() {
        let bytes = framed(b"payload under test");
        for cut in 1..bytes.len() {
            let mut r = FrameReader::new();
            let mut src = Cursor::new(bytes[..cut].to_vec());
            match r.poll(&mut src) {
                Err(NetError::Truncated { got, .. }) => assert_eq!(got, cut),
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_at_every_byte_is_corrupt_or_resized() {
        let bytes = framed(b"payload under test");
        for pos in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[pos] ^= 0x40;
            let mut r = FrameReader::new();
            let mut src = Cursor::new(damaged);
            match r.poll(&mut src) {
                // A flip in the length prefix walks the frame boundary:
                // oversized, truncated (longer than the bytes present), or —
                // when shortened — a checksum mismatch over the wrong slice.
                Err(
                    NetError::Corrupt { .. }
                    | NetError::Oversized { .. }
                    | NetError::Truncated { .. },
                ) => {}
                other => panic!("flip at {pos}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_from_prefix_alone() {
        let mut bytes = ((MAX_FRAME_LEN + 1).to_le_bytes()).to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut r = FrameReader::new();
        match r.poll(&mut Cursor::new(bytes)) {
            Err(NetError::Oversized { len, max }) => {
                assert_eq!(len, MAX_FRAME_LEN + 1);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
