//! Request/response envelopes and the typed error surface.
//!
//! Payloads are encoded with the same hand-rolled tagged binary codec
//! the rest of the system speaks ([`vpdt_tx::codec`]): one leading tag
//! byte, then little-endian fixed-width fields and length-prefixed
//! strings. `Submit` carries a full [`Program`] via
//! [`encode_program`]/[`decode_program`] — the network protocol *is*
//! the codec wire protocol with an envelope around it.
//!
//! ## Version negotiation
//!
//! The first frame on a connection must be [`Request::Hello`] carrying
//! [`PROTOCOL_VERSION`]. The server answers [`Response::Welcome`] with
//! its own version on match, or [`Response::Error`] (code
//! `"version_mismatch"`) and a close on anything else. There is no
//! downgrade path: a single u32 decides, exactly like the WAL's format
//! version field.
//!
//! ## Correlation
//!
//! `Submit` carries a **client-assigned** `request_id`, echoed verbatim
//! on the matching [`Response::Outcome`] (and on request-scoped
//! errors). The server's own transaction id rides alongside, so a
//! client can correlate its pipeline without coordinating id spaces
//! with the server. Responses on one connection arrive strictly in
//! request order — for *every* request kind, not just submissions: a
//! `StatsText` answering a `Stats` sent after two `Submit`s arrives
//! after those two outcomes. The server enforces this with a
//! per-connection sequence-numbered outbox.

use vpdt_tx::codec::{
    decode_program, encode_program, put_str, put_u32, put_u64, CodecError, Cursor,
};
use vpdt_tx::program::Program;

/// The protocol version this build speaks. Bumped on any change to the
/// envelope encodings; there is no cross-version compatibility.
///
/// History: v1 encoded `Committed.root_hash` as a bare u64 with `0`
/// standing in for "unavailable" — indistinguishable from a real zero
/// commitment. v2 adds a presence byte so an absent root is typed.
pub const PROTOCOL_VERSION: u32 = 2;

/// Everything that can go wrong on the network boundary, typed.
///
/// A server maps these onto [`Response::Error`] frames (via
/// [`NetError::code`]) where the connection is still coherent, and onto
/// connection teardown where it is not — in both cases without
/// disturbing any other connection.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// Socket I/O failed (message only: `std::io::Error` is not `Clone`).
    Io(String),
    /// The peer closed mid-frame: `got` bytes buffered of the `want` the
    /// frame header promised.
    Truncated {
        /// Bytes received before the close.
        got: usize,
        /// Bytes the frame needed (header included).
        want: usize,
    },
    /// A length prefix exceeded the frame cap; rejected before buffering.
    Oversized {
        /// The offending length prefix.
        len: u32,
        /// The cap ([`crate::frame::MAX_FRAME_LEN`]).
        max: u32,
    },
    /// Frame checksum mismatch: bytes arrived but are damaged.
    Corrupt {
        /// The checksum the frame header claimed.
        expected: u64,
        /// The checksum of the payload as received.
        found: u64,
    },
    /// The payload failed to decode as an envelope.
    Codec(CodecError),
    /// Hello carried a protocol version this build does not speak.
    Version {
        /// The version this build speaks.
        ours: u32,
        /// The version the peer offered.
        theirs: u32,
    },
    /// The peer sent a well-formed message the protocol state does not
    /// admit (e.g. anything before `Hello`).
    Protocol(String),
    /// The server answered with an error frame (client side).
    Remote {
        /// The server's stable error code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl NetError {
    /// Wraps an I/O error (stringified — the typed surface stays `Clone`).
    pub fn io(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }

    /// A short stable code for wire error frames and metrics labels.
    pub fn code(&self) -> &'static str {
        match self {
            NetError::Io(_) => "io",
            NetError::Truncated { .. } => "truncated",
            NetError::Oversized { .. } => "oversized",
            NetError::Corrupt { .. } => "corrupt",
            NetError::Codec(_) => "codec",
            NetError::Version { .. } => "version_mismatch",
            NetError::Protocol(_) => "protocol",
            NetError::Remote { .. } => "remote",
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(m) => write!(f, "socket i/o: {m}"),
            NetError::Truncated { got, want } => {
                write!(f, "peer closed mid-frame ({got} of {want} bytes)")
            }
            NetError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            NetError::Corrupt { expected, found } => write!(
                f,
                "frame checksum mismatch (header {expected:#018x}, payload {found:#018x})"
            ),
            NetError::Codec(e) => write!(f, "envelope decode: {e}"),
            NetError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch (ours {ours}, peer {theirs})")
            }
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Remote { code, detail } => write!(f, "server error [{code}]: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A client→server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Mandatory first frame: version negotiation plus a client label
    /// (free-form, recorded for observability only).
    Hello {
        /// The protocol version the client speaks.
        version: u32,
        /// A label identifying the client (for logs/metrics).
        client: String,
    },
    /// Submit a transaction program for execution.
    Submit {
        /// Client-assigned correlation id, echoed on the outcome.
        request_id: u64,
        /// The transaction program, codec-encoded.
        program: Program,
    },
    /// Barrier: answer [`Response::Synced`] only after every outcome for
    /// previously submitted transactions has been written back.
    Wait,
    /// Write a snapshot checkpoint on the server (durable servers only).
    Checkpoint,
    /// Fetch the Prometheus rendering of the server's metrics snapshot.
    Stats,
    /// Orderly goodbye: the server drains outcomes, answers
    /// [`Response::Bye`], and closes.
    Goodbye,
    /// Ask the server process to stop serving (honored only when the
    /// server was started with `allow_remote_shutdown`).
    Shutdown,
}

const REQ_HELLO: u8 = 1;
const REQ_SUBMIT: u8 = 2;
const REQ_WAIT: u8 = 3;
const REQ_CHECKPOINT: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_GOODBYE: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;

impl Request {
    /// Appends the tagged encoding of this request to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Hello { version, client } => {
                out.push(REQ_HELLO);
                put_u32(out, *version);
                put_str(out, client);
            }
            Request::Submit {
                request_id,
                program,
            } => {
                out.push(REQ_SUBMIT);
                put_u64(out, *request_id);
                encode_program(program, out);
            }
            Request::Wait => out.push(REQ_WAIT),
            Request::Checkpoint => out.push(REQ_CHECKPOINT),
            Request::Stats => out.push(REQ_STATS),
            Request::Goodbye => out.push(REQ_GOODBYE),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }

    /// Decodes one request from an exact payload (trailing bytes are an
    /// error — a frame carries one envelope).
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8("request tag")? {
            REQ_HELLO => Request::Hello {
                version: c.u32("protocol version")?,
                client: c.str("client label")?,
            },
            REQ_SUBMIT => Request::Submit {
                request_id: c.u64("request id")?,
                program: decode_program(&mut c)?,
            },
            REQ_WAIT => Request::Wait,
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_STATS => Request::Stats,
            REQ_GOODBYE => Request::Goodbye,
            REQ_SHUTDOWN => Request::Shutdown,
            tag => {
                return Err(CodecError::BadTag {
                    what: "request tag",
                    tag,
                    at: c.pos() - 1,
                })
            }
        };
        c.finish()?;
        Ok(req)
    }

    /// The request kind as a metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Submit { .. } => "submit",
            Request::Wait => "wait",
            Request::Checkpoint => "checkpoint",
            Request::Stats => "stats",
            Request::Goodbye => "goodbye",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A transaction outcome as it crosses the wire.
///
/// The flattened, owner-free projection of
/// [`TxOutcome`](vpdt_store::TxOutcome): a committed transaction
/// carries its version **and** the root hash recorded at that version —
/// the per-relation state commitment — so a remote client holds the
/// same verifiable claim an in-process caller could compute.
#[derive(Clone, Debug, PartialEq)]
pub enum WireOutcome {
    /// Committed (durably, on a persisted server) at `version`.
    Committed {
        /// The version the commit produced.
        version: u64,
        /// The root hash recorded at that version — the per-relation
        /// state commitment. `None` when the server no longer holds a
        /// commitment for the version (its history segment was retired
        /// before the outcome was written back): explicitly absent on
        /// the wire, never a fabricated zero a verifying client could
        /// mistake for a real commitment.
        root_hash: Option<u64>,
    },
    /// The guard aborted the transaction: it would have violated `α`.
    GuardAborted {
        /// The snapshot version the failing guard evaluated against.
        version: u64,
        /// The transaction's statement-shape id.
        shape: u64,
    },
    /// The check-and-rollback baseline ran it, found the constraint
    /// violated, and rolled back.
    RolledBack {
        /// The rollback path's own message.
        reason: String,
    },
    /// An execution error (not a deliberate abort).
    Failed {
        /// The store's stable error code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl WireOutcome {
    /// Whether this outcome is a commit.
    pub fn is_committed(&self) -> bool {
        matches!(self, WireOutcome::Committed { .. })
    }
}

const OUT_COMMITTED: u8 = 1;
const OUT_GUARD_ABORTED: u8 = 2;
const OUT_ROLLED_BACK: u8 = 3;
const OUT_FAILED: u8 = 4;

fn encode_outcome(o: &WireOutcome, out: &mut Vec<u8>) {
    match o {
        WireOutcome::Committed { version, root_hash } => {
            out.push(OUT_COMMITTED);
            put_u64(out, *version);
            match root_hash {
                Some(root) => {
                    out.push(1);
                    put_u64(out, *root);
                }
                None => out.push(0),
            }
        }
        WireOutcome::GuardAborted { version, shape } => {
            out.push(OUT_GUARD_ABORTED);
            put_u64(out, *version);
            put_u64(out, *shape);
        }
        WireOutcome::RolledBack { reason } => {
            out.push(OUT_ROLLED_BACK);
            put_str(out, reason);
        }
        WireOutcome::Failed { code, detail } => {
            out.push(OUT_FAILED);
            put_str(out, code);
            put_str(out, detail);
        }
    }
}

fn decode_outcome(c: &mut Cursor<'_>) -> Result<WireOutcome, CodecError> {
    Ok(match c.u8("outcome tag")? {
        OUT_COMMITTED => {
            let version = c.u64("commit version")?;
            let root_hash = match c.u8("root presence")? {
                0 => None,
                1 => Some(c.u64("root hash")?),
                tag => {
                    return Err(CodecError::BadTag {
                        what: "root presence",
                        tag,
                        at: c.pos() - 1,
                    })
                }
            };
            WireOutcome::Committed { version, root_hash }
        }
        OUT_GUARD_ABORTED => WireOutcome::GuardAborted {
            version: c.u64("abort version")?,
            shape: c.u64("shape id")?,
        },
        OUT_ROLLED_BACK => WireOutcome::RolledBack {
            reason: c.str("rollback reason")?,
        },
        OUT_FAILED => WireOutcome::Failed {
            code: c.str("error code")?,
            detail: c.str("error detail")?,
        },
        tag => {
            return Err(CodecError::BadTag {
                what: "outcome tag",
                tag,
                at: c.pos() - 1,
            })
        }
    })
}

/// A server→client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to a version-matched [`Request::Hello`].
    Welcome {
        /// The protocol version the server speaks.
        version: u32,
        /// The server's current store version at accept time.
        store_version: u64,
        /// The session id the server assigned this connection.
        session: u64,
    },
    /// One submitted transaction's final outcome. For commits on a
    /// durable server, sent only after the covering fsync — an
    /// acknowledged networked commit is durable by construction.
    Outcome {
        /// The client's correlation id, echoed.
        request_id: u64,
        /// The transaction id the server assigned.
        tx: u64,
        /// The typed outcome.
        outcome: WireOutcome,
    },
    /// Answer to [`Request::Wait`]: every prior outcome has been written.
    Synced {
        /// The server's store version at the barrier.
        version: u64,
    },
    /// Answer to [`Request::Checkpoint`].
    CheckpointDone {
        /// The log offset the checkpoint covers.
        offset: u64,
    },
    /// Answer to [`Request::Stats`]: the Prometheus exposition text.
    StatsText {
        /// `render_prometheus` output of the server's metrics snapshot.
        text: String,
    },
    /// Orderly close acknowledgment.
    Bye,
    /// A typed failure. `request_id` is the offending submission's id,
    /// or 0 for connection-scoped errors.
    Error {
        /// The offending request's correlation id (0 = connection-scoped).
        request_id: u64,
        /// Stable error code ([`NetError::code`] or a store error code).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

const RESP_WELCOME: u8 = 1;
const RESP_OUTCOME: u8 = 2;
const RESP_SYNCED: u8 = 3;
const RESP_CHECKPOINT_DONE: u8 = 4;
const RESP_STATS_TEXT: u8 = 5;
const RESP_BYE: u8 = 6;
const RESP_ERROR: u8 = 7;

impl Response {
    /// Appends the tagged encoding of this response to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Welcome {
                version,
                store_version,
                session,
            } => {
                out.push(RESP_WELCOME);
                put_u32(out, *version);
                put_u64(out, *store_version);
                put_u64(out, *session);
            }
            Response::Outcome {
                request_id,
                tx,
                outcome,
            } => {
                out.push(RESP_OUTCOME);
                put_u64(out, *request_id);
                put_u64(out, *tx);
                encode_outcome(outcome, out);
            }
            Response::Synced { version } => {
                out.push(RESP_SYNCED);
                put_u64(out, *version);
            }
            Response::CheckpointDone { offset } => {
                out.push(RESP_CHECKPOINT_DONE);
                put_u64(out, *offset);
            }
            Response::StatsText { text } => {
                out.push(RESP_STATS_TEXT);
                put_str(out, text);
            }
            Response::Bye => out.push(RESP_BYE),
            Response::Error {
                request_id,
                code,
                detail,
            } => {
                out.push(RESP_ERROR);
                put_u64(out, *request_id);
                put_str(out, code);
                put_str(out, detail);
            }
        }
    }

    /// Decodes one response from an exact payload.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8("response tag")? {
            RESP_WELCOME => Response::Welcome {
                version: c.u32("protocol version")?,
                store_version: c.u64("store version")?,
                session: c.u64("session id")?,
            },
            RESP_OUTCOME => Response::Outcome {
                request_id: c.u64("request id")?,
                tx: c.u64("transaction id")?,
                outcome: decode_outcome(&mut c)?,
            },
            RESP_SYNCED => Response::Synced {
                version: c.u64("store version")?,
            },
            RESP_CHECKPOINT_DONE => Response::CheckpointDone {
                offset: c.u64("log offset")?,
            },
            RESP_STATS_TEXT => Response::StatsText {
                text: c.str("stats text")?,
            },
            RESP_BYE => Response::Bye,
            RESP_ERROR => Response::Error {
                request_id: c.u64("request id")?,
                code: c.str("error code")?,
                detail: c.str("error detail")?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    what: "response tag",
                    tag,
                    at: c.pos() - 1,
                })
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(r: &Request) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(&Request::decode(&buf).expect("decode"), r);
    }

    fn round_trip_response(r: &Response) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(&Response::decode(&buf).expect("decode"), r);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Hello {
            version: PROTOCOL_VERSION,
            client: "bench-client-3".into(),
        });
        round_trip_request(&Request::Submit {
            request_id: 42,
            program: Program::insert_consts("edge", [1, 2]),
        });
        for r in [
            Request::Wait,
            Request::Checkpoint,
            Request::Stats,
            Request::Goodbye,
            Request::Shutdown,
        ] {
            round_trip_request(&r);
        }
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Welcome {
            version: PROTOCOL_VERSION,
            store_version: 17,
            session: 3,
        });
        for outcome in [
            WireOutcome::Committed {
                version: 9,
                root_hash: Some(0xdead_beef),
            },
            WireOutcome::Committed {
                version: 10,
                root_hash: None,
            },
            WireOutcome::GuardAborted {
                version: 8,
                shape: 2,
            },
            WireOutcome::RolledBack {
                reason: "constraint violated".into(),
            },
            WireOutcome::Failed {
                code: "tx".into(),
                detail: "boom".into(),
            },
        ] {
            round_trip_response(&Response::Outcome {
                request_id: 7,
                tx: 11,
                outcome,
            });
        }
        round_trip_response(&Response::Synced { version: 23 });
        round_trip_response(&Response::CheckpointDone { offset: 4096 });
        round_trip_response(&Response::StatsText {
            text: "# TYPE vpdt_tx_committed_total counter\n".into(),
        });
        round_trip_response(&Response::Bye);
        round_trip_response(&Response::Error {
            request_id: 0,
            code: "version_mismatch".into(),
            detail: "ours 1, peer 2".into(),
        });
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Request::Wait.encode(&mut buf);
        buf.push(0);
        assert!(matches!(
            Request::decode(&buf),
            Err(CodecError::Trailing { .. })
        ));
    }

    #[test]
    fn bogus_root_presence_byte_is_rejected() {
        let mut buf = Vec::new();
        Response::Outcome {
            request_id: 1,
            tx: 2,
            outcome: WireOutcome::Committed {
                version: 3,
                root_hash: None,
            },
        }
        .encode(&mut buf);
        *buf.last_mut().expect("presence byte") = 7;
        assert!(matches!(
            Response::decode(&buf),
            Err(CodecError::BadTag {
                what: "root presence",
                ..
            })
        ));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(
            Request::decode(&[200]),
            Err(CodecError::BadTag { .. })
        ));
        assert!(matches!(
            Response::decode(&[200]),
            Err(CodecError::BadTag { .. })
        ));
    }
}
