//! The remote session handle: sync submit/wait plus pipelined windows.
//!
//! [`NetClient::connect`] performs the Hello/Welcome handshake and
//! yields a handle shaped like an in-process
//! [`Session`](vpdt_store::Session): [`submit_sync`] for the one-call
//! path, or [`submit`] + [`next_outcome`] to keep a window of
//! submissions in flight — the pipelined mode mirrors the bench's
//! session driver, which keeps `PIPELINE_WINDOW` tickets open and
//! drains the resolved prefix.
//!
//! Responses on one connection arrive strictly in request order (the
//! server's per-connection outbox is sequence-numbered at decode time),
//! so a pipelining client needs no reordering buffer: `next_outcome`
//! returns outcomes exactly in the order `submit` assigned request ids.
//!
//! [`submit_sync`]: NetClient::submit_sync
//! [`submit`]: NetClient::submit
//! [`next_outcome`]: NetClient::next_outcome

use crate::frame::{write_frame, FrameReader};
use crate::proto::{NetError, Request, Response, WireOutcome, PROTOCOL_VERSION};
use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use vpdt_tx::program::Program;

/// A connected remote session.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    session: u64,
    store_version: u64,
    next_request: u64,
    /// Request ids submitted but not yet answered, oldest first.
    inflight: VecDeque<u64>,
}

impl NetClient {
    /// Connects, shakes hands, and returns the session handle.
    /// `client` is a free-form label the server may record.
    pub fn connect(addr: impl ToSocketAddrs, client: &str) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::io)?;
        stream.set_nodelay(true).map_err(NetError::io)?;
        let mut me = NetClient {
            stream,
            reader: FrameReader::new(),
            session: 0,
            store_version: 0,
            next_request: 1,
            inflight: VecDeque::new(),
        };
        me.send(&Request::Hello {
            version: PROTOCOL_VERSION,
            client: client.into(),
        })?;
        match me.next_response()? {
            Response::Welcome {
                version: PROTOCOL_VERSION,
                store_version,
                session,
            } => {
                me.session = session;
                me.store_version = store_version;
                Ok(me)
            }
            Response::Welcome { version, .. } => Err(NetError::Version {
                ours: PROTOCOL_VERSION,
                theirs: version,
            }),
            other => Err(unexpected("Welcome", &other)),
        }
    }

    /// The session id the server assigned this connection.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The server's store version as of the last handshake or barrier.
    pub fn store_version(&self) -> u64 {
        self.store_version
    }

    /// Request ids submitted but not yet answered.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Pipelined submit: sends the program and returns its request id
    /// without waiting. Collect outcomes with [`NetClient::next_outcome`].
    pub fn submit(&mut self, program: &Program) -> Result<u64, NetError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.send(&Request::Submit {
            request_id,
            program: program.clone(),
        })?;
        self.inflight.push_back(request_id);
        Ok(request_id)
    }

    /// Blocks for the oldest in-flight submission's outcome, returning
    /// `(request_id, transaction id, outcome)`. A request-scoped error
    /// frame surfaces as [`NetError::Remote`].
    pub fn next_outcome(&mut self) -> Result<(u64, u64, WireOutcome), NetError> {
        let expected = self
            .inflight
            .front()
            .copied()
            .ok_or_else(|| NetError::Protocol("no submission in flight".into()))?;
        match self.next_response()? {
            Response::Outcome {
                request_id,
                tx,
                outcome,
            } => {
                if request_id != expected {
                    return Err(NetError::Protocol(format!(
                        "outcome for request {request_id}, expected {expected}"
                    )));
                }
                self.inflight.pop_front();
                Ok((request_id, tx, outcome))
            }
            Response::Error {
                request_id,
                code,
                detail,
            } if request_id == expected => {
                self.inflight.pop_front();
                Err(NetError::Remote { code, detail })
            }
            other => Err(unexpected("Outcome", &other)),
        }
    }

    /// The one-call path: submit, then block for the outcome. Requires
    /// an empty pipeline (outcomes arrive in order).
    pub fn submit_sync(&mut self, program: &Program) -> Result<WireOutcome, NetError> {
        if !self.inflight.is_empty() {
            return Err(NetError::Protocol(
                "submit_sync with submissions in flight".into(),
            ));
        }
        self.submit(program)?;
        self.next_outcome().map(|(_, _, outcome)| outcome)
    }

    /// Barrier: drains every in-flight outcome (invoking `on_outcome`
    /// for each), then waits for the server's `Synced` and returns the
    /// store version at the barrier.
    pub fn sync(
        &mut self,
        mut on_outcome: impl FnMut(u64, u64, WireOutcome),
    ) -> Result<u64, NetError> {
        self.send(&Request::Wait)?;
        while !self.inflight.is_empty() {
            let (request_id, tx, outcome) = self.next_outcome()?;
            on_outcome(request_id, tx, outcome);
        }
        match self.next_response()? {
            Response::Synced { version } => {
                self.store_version = version;
                Ok(version)
            }
            other => Err(unexpected("Synced", &other)),
        }
    }

    /// Asks the server to write a snapshot checkpoint; returns the
    /// covered log offset. Requires an empty pipeline.
    pub fn checkpoint(&mut self) -> Result<u64, NetError> {
        self.rpc(&Request::Checkpoint, |resp| match resp {
            Response::CheckpointDone { offset } => Some(offset),
            _ => None,
        })
    }

    /// Fetches the Prometheus rendering of the server's metrics.
    /// Requires an empty pipeline.
    pub fn stats(&mut self) -> Result<String, NetError> {
        self.rpc(&Request::Stats, |resp| match resp {
            Response::StatsText { text } => Some(text),
            _ => None,
        })
    }

    /// Orderly close: drains in-flight outcomes, says goodbye, waits
    /// for `Bye`, and consumes the handle.
    pub fn goodbye(mut self) -> Result<(), NetError> {
        while !self.inflight.is_empty() {
            self.next_outcome()?;
        }
        self.send(&Request::Goodbye)?;
        match self.next_response()? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }

    /// Asks the server process to stop serving (honored only when the
    /// server allows remote shutdown), waiting for its farewell.
    pub fn shutdown_server(mut self) -> Result<(), NetError> {
        while !self.inflight.is_empty() {
            self.next_outcome()?;
        }
        self.send(&Request::Shutdown)?;
        match self.next_response()? {
            Response::Bye => Ok(()),
            Response::Error { code, detail, .. } => Err(NetError::Remote { code, detail }),
            other => Err(unexpected("Bye", &other)),
        }
    }

    /// One request, one matching response; `Error` frames surface typed.
    fn rpc<T>(
        &mut self,
        req: &Request,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, NetError> {
        if !self.inflight.is_empty() {
            return Err(NetError::Protocol(format!(
                "{} with submissions in flight",
                req.kind()
            )));
        }
        self.send(req)?;
        let resp = self.next_response()?;
        if let Response::Error { code, detail, .. } = resp {
            return Err(NetError::Remote { code, detail });
        }
        let what = req.kind();
        extract(resp).ok_or_else(|| NetError::Protocol(format!("unexpected response to {what}")))
    }

    fn send(&mut self, req: &Request) -> Result<(), NetError> {
        let mut payload = Vec::new();
        req.encode(&mut payload);
        write_frame(&mut self.stream, &payload)
    }

    fn next_response(&mut self) -> Result<Response, NetError> {
        let payload = self.reader.next_frame(&mut self.stream)?;
        Ok(Response::decode(&payload)?)
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    if let Response::Error { code, detail, .. } = got {
        return NetError::Remote {
            code: code.clone(),
            detail: detail.clone(),
        };
    }
    NetError::Protocol(format!("expected {wanted}, got {got:?}"))
}
