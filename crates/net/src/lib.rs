//! The framed TCP front door: remote sessions over the codec wire
//! protocol.
//!
//! This crate is where the two transport-shaped halves built earlier
//! finally meet a network boundary: the store's
//! [`Session`](vpdt_store::Session)/[`TxTicket`](vpdt_store::TxTicket)
//! pipeline (submission decoupled from resolution) and the
//! [`vpdt_tx::codec`] deterministic binary encoding of the whole
//! program syntax. The wire protocol is deliberately thin:
//!
//! * **frames** ([`frame`]) — `[u32 len][u64 FNV-1a][payload]`, the
//!   write-ahead log's framing discipline applied to a socket, with a
//!   hard length cap validated before any buffering;
//! * **envelopes** ([`proto`]) — tagged request/response types encoded
//!   with the same codec primitives as programs, version-negotiated by
//!   a single `u32` in the mandatory `Hello`;
//! * **server** ([`server`]) — a resident [`NetServer`] multiplexing
//!   connections onto per-connection sessions backed by the existing
//!   worker pool. A bounded reactor pool owns the (nonblocking) read
//!   side, completion hooks
//!   ([`TxTicket::on_resolve`](vpdt_store::TxTicket::on_resolve)) stamp
//!   resolved outcomes into per-connection sequence-numbered outboxes,
//!   and a shared writer pool flushes ready prefixes — so C mostly-idle
//!   connections cost O(pool size) threads, and every response (stats
//!   and checkpoints included) goes back in request order. A committed
//!   outcome carries the version's root hash, so a remote client holds
//!   the same per-relation state commitment an in-process caller could
//!   compute — and on a durable store an acknowledged commit is durable
//!   by construction;
//! * **client** ([`client`]) — [`NetClient`] with sync submit/wait and
//!   a pipelined window mode mirroring the bench's session driver.
//!
//! Robustness stance: every way a peer can misbehave (truncated,
//! oversized, corrupt, undecodable, version-mismatched, out-of-order
//! frames) maps to a typed [`NetError`], answered where possible and
//! followed by teardown of *that connection only*. The server never
//! trusts a length prefix for an allocation and never lets one bad
//! client poison service to others.

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::NetClient;
pub use frame::{FramePoll, FrameReader, FRAME_HEADER, MAX_FRAME_LEN};
pub use proto::{NetError, Request, Response, WireOutcome, PROTOCOL_VERSION};
pub use server::{names, NetOptions, NetServer, ServerHandle};
