//! The resident front door: TCP connections demultiplexed onto store
//! sessions.
//!
//! [`NetServer`] wraps a running [`StoreServer`] and a bound listener.
//! [`NetServer::serve`] owns the accept loop: each connection gets its
//! own [`Session`](vpdt_store::Session) and a pair of threads —
//!
//! * the **reader** (the connection's own thread) polls frames off the
//!   socket, decodes requests, and submits programs to the worker pool,
//!   pushing each [`TxTicket`] onto a FIFO resolver queue;
//! * the **resolver** pops tickets in submission order, blocks on
//!   [`TxTicket::wait`] (which resolves only after durability on a
//!   persisted store), and writes the [`Response::Outcome`] frame back.
//!
//! Because the queue is FIFO and outcome frames are written only after
//! `wait`, responses to one connection arrive in submission order and
//! **an acknowledged networked commit is durable by construction**.
//! `Wait` barriers ride the same queue, so `Synced` is ordered after
//! every prior outcome.
//!
//! A malformed frame (truncated, oversized, corrupt, undecodable) tears
//! down *that connection only* — the reader answers with a typed
//! [`Response::Error`] where the stream is still coherent, bumps the
//! frame-error counter, drains its resolver, and exits. Other
//! connections never observe it: a bad client must never poison the
//! server.
//!
//! Shutdown (the [`ServerHandle`] stop flag, or a permitted remote
//! [`Request::Shutdown`]) stops accepting, lets every connection drain
//! its in-flight outcomes, then shuts the store down — the final
//! [`ServerReport`] covers everything the front door acknowledged.

use crate::frame::{write_frame, FramePoll, FrameReader};
use crate::proto::{NetError, Request, Response, WireOutcome, PROTOCOL_VERSION};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use vpdt_obs::{Counter, Gauge, Histogram};
use vpdt_store::{AbortReason, ServerReport, StoreServer, TxOutcome, TxTicket};

/// Knobs for [`NetServer::bind`].
#[derive(Clone, Debug)]
pub struct NetOptions {
    /// Honor [`Request::Shutdown`] from clients. Off by default: a
    /// remote peer should not be able to stop a server unless the
    /// operator opted in (`vpdtool serve --allow-shutdown`).
    pub allow_remote_shutdown: bool,
    /// Socket read timeout — the cadence at which reader threads notice
    /// the stop flag. Not a protocol deadline: a partial frame survives
    /// any number of timeouts.
    pub read_timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            allow_remote_shutdown: false,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// Front-door instruments, registered on the **store's** registry so
/// one snapshot — and the final [`ServerReport`] — covers both layers.
#[derive(Clone, Debug)]
struct NetMetrics {
    connections: Gauge,
    connections_total: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    frame_errors: Counter,
    request_us: Histogram,
    requests: Vec<(&'static str, Counter)>,
}

/// Metric names the front door registers (exported so dashboards and
/// tests don't hard-code strings).
pub mod names {
    /// Gauge: connections currently open.
    pub const NET_CONNECTIONS: &str = "net_connections";
    /// Counter: connections ever accepted.
    pub const NET_CONNECTIONS_TOTAL: &str = "net_connections_total";
    /// Counter: payload + framing bytes received.
    pub const NET_BYTES_IN_TOTAL: &str = "net_bytes_in_total";
    /// Counter: payload + framing bytes sent.
    pub const NET_BYTES_OUT_TOTAL: &str = "net_bytes_out_total";
    /// Counter: frames rejected as truncated/oversized/corrupt/undecodable.
    pub const NET_FRAME_ERRORS_TOTAL: &str = "net_frame_errors_total";
    /// Histogram: microseconds from request decode to response write.
    pub const NET_REQUEST_US: &str = "net_request_us";
    /// Counter family: requests served, labeled by kind.
    pub const NET_REQUESTS_TOTAL: &str = "net_requests_total";
}

impl NetMetrics {
    fn new(store: &StoreServer) -> Self {
        let registry = store.metrics_registry();
        let kinds = [
            "hello",
            "submit",
            "wait",
            "checkpoint",
            "stats",
            "goodbye",
            "shutdown",
        ];
        NetMetrics {
            connections: registry.gauge(names::NET_CONNECTIONS),
            connections_total: registry.counter(names::NET_CONNECTIONS_TOTAL),
            bytes_in: registry.counter(names::NET_BYTES_IN_TOTAL),
            bytes_out: registry.counter(names::NET_BYTES_OUT_TOTAL),
            frame_errors: registry.counter(names::NET_FRAME_ERRORS_TOTAL),
            request_us: registry.histogram(names::NET_REQUEST_US),
            requests: kinds
                .into_iter()
                .map(|kind| {
                    let name = format!("{}{{kind=\"{kind}\"}}", names::NET_REQUESTS_TOTAL);
                    (kind, registry.counter(&name))
                })
                .collect(),
        }
    }

    /// The per-kind request counter (`vpdt_net_requests_total{kind="…"}`).
    fn requests(&self, kind: &str) -> &Counter {
        &self
            .requests
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("every request kind is pre-registered")
            .1
    }

    /// Frame-level damage (truncated / oversized / corrupt / undecodable)
    /// bumps the error counter; higher-level protocol errors do not.
    fn note_error(&self, e: &NetError) {
        if matches!(
            e,
            NetError::Truncated { .. }
                | NetError::Oversized { .. }
                | NetError::Corrupt { .. }
                | NetError::Codec(_)
        ) {
            self.frame_errors.inc();
        }
    }
}

/// A remote-stop handle: cheap to clone out of [`NetServer::handle`]
/// before `serve` consumes the server.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the serve loop to stop: accepting ends, connections drain,
    /// the store shuts down, [`NetServer::serve`] returns.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// A bound front door around a running [`StoreServer`].
#[derive(Debug)]
pub struct NetServer {
    store: StoreServer,
    listener: TcpListener,
    opts: NetOptions,
    stop: Arc<AtomicBool>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) in front of `store`.
    pub fn bind(store: StoreServer, addr: &str, opts: NetOptions) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(NetError::io)?;
        listener.set_nonblocking(true).map_err(NetError::io)?;
        Ok(NetServer {
            store,
            listener,
            opts,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// A stop handle usable from another thread while `serve` runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
        }
    }

    /// Serves until stopped, then drains and shuts the store down.
    ///
    /// Blocks the calling thread. Every accepted connection runs on its
    /// own scoped thread; when the stop flag rises the accept loop
    /// ends, connection threads finish draining their in-flight
    /// outcomes, and the wrapped store's
    /// [`shutdown`](StoreServer::shutdown) report — front-door metrics
    /// included — is returned.
    pub fn serve(self) -> ServerReport {
        let NetServer {
            store,
            listener,
            opts,
            stop,
        } = self;
        let metrics = NetMetrics::new(&store);
        std::thread::scope(|s| {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn = Connection {
                            store: &store,
                            opts: &opts,
                            stop: &stop,
                            metrics: metrics.clone(),
                        };
                        s.spawn(move || conn.run(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            // Scope exit joins every connection thread: each notices the
            // stop flag within one read timeout, drains its resolver
            // queue (writing every owed outcome), and returns.
        });
        store.shutdown()
    }
}

/// Work the reader hands the resolver, in submission order.
enum Work {
    /// A submitted transaction awaiting its outcome frame.
    Outcome {
        request_id: u64,
        ticket: TxTicket,
        started: Instant,
    },
    /// A `Wait` barrier: write `Synced` after everything before it.
    Sync { started: Instant },
    /// A `Goodbye`/teardown marker: drain ends here.
    Stop,
}

/// Everything one connection's threads share.
struct Connection<'a> {
    store: &'a StoreServer,
    opts: &'a NetOptions,
    stop: &'a AtomicBool,
    metrics: NetMetrics,
}

impl Connection<'_> {
    /// The connection's reader loop; owns the socket until teardown.
    fn run(self, stream: TcpStream) {
        self.metrics.connections.inc();
        self.metrics.connections_total.inc();
        let _ = self.serve_conn(&stream);
        self.metrics.connections.dec();
    }

    fn serve_conn(&self, stream: &TcpStream) -> Result<(), NetError> {
        stream.set_nodelay(true).map_err(NetError::io)?;
        stream
            .set_read_timeout(Some(self.opts.read_timeout))
            .map_err(NetError::io)?;
        let writer = Mutex::new(CountingWriter {
            stream: stream.try_clone().map_err(NetError::io)?,
            bytes_out: self.metrics.bytes_out.clone(),
        });
        let mut reader = MeteredReader {
            frames: FrameReader::new(),
            stream,
            bytes_in: self.metrics.bytes_in.clone(),
        };

        let session = self.store.session();

        // Handshake: the first frame must be a version-matched Hello.
        match self.handshake(&mut reader, &writer, session.id()) {
            Ok(()) => {}
            Err(e) => {
                self.metrics.note_error(&e);
                let _ = send(&writer, &error_response(0, &e));
                return Err(e);
            }
        }

        let (queue, work) = mpsc::channel::<Work>();
        std::thread::scope(|s| {
            let resolver = s.spawn(|| self.resolve_loop(work, &writer));
            let result = self.read_loop(&mut reader, &writer, &session, &queue);
            // Whatever ended the loop, the resolver drains every owed
            // outcome before the connection dies: FIFO queue, Stop last.
            let _ = queue.send(Work::Stop);
            drop(queue);
            let _ = resolver.join();
            match result {
                Ok(farewell) => {
                    if farewell {
                        let _ = send(&writer, &Response::Bye);
                    }
                    Ok(())
                }
                Err(e) => {
                    self.metrics.note_error(&e);
                    let _ = send(&writer, &error_response(0, &e));
                    Err(e)
                }
            }
        })
    }

    /// Reads and answers the Hello. Everything else first is a protocol
    /// violation; a version mismatch is typed.
    fn handshake(
        &self,
        reader: &mut MeteredReader<'_>,
        writer: &Mutex<CountingWriter>,
        session: u64,
    ) -> Result<(), NetError> {
        let payload = loop {
            match reader.poll()? {
                FramePoll::Frame(p) => break p,
                FramePoll::Eof => {
                    return Err(NetError::Protocol("closed before Hello".into()));
                }
                FramePoll::Pending => {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(NetError::Protocol("server stopping".into()));
                    }
                }
            }
        };
        match Request::decode(&payload)? {
            Request::Hello { version, client: _ } if version == PROTOCOL_VERSION => {
                self.metrics.requests("hello").inc();
                send(
                    writer,
                    &Response::Welcome {
                        version: PROTOCOL_VERSION,
                        store_version: self.store.version(),
                        session,
                    },
                )
            }
            Request::Hello { version, .. } => Err(NetError::Version {
                ours: PROTOCOL_VERSION,
                theirs: version,
            }),
            other => Err(NetError::Protocol(format!(
                "expected Hello, got {}",
                other.kind()
            ))),
        }
    }

    /// Decodes requests until goodbye, disconnect, error, or server
    /// stop. `Ok(true)` means an orderly farewell (Bye owed).
    fn read_loop(
        &self,
        reader: &mut MeteredReader<'_>,
        writer: &Mutex<CountingWriter>,
        session: &vpdt_store::Session<'_>,
        queue: &mpsc::Sender<Work>,
    ) -> Result<bool, NetError> {
        loop {
            let payload = match reader.poll()? {
                FramePoll::Frame(p) => p,
                FramePoll::Eof => return Ok(false),
                FramePoll::Pending => {
                    if self.stop.load(Ordering::SeqCst) {
                        // Stopping: drain owed outcomes, say Bye, close.
                        return Ok(true);
                    }
                    continue;
                }
            };
            let started = Instant::now();
            let request = Request::decode(&payload)?;
            self.metrics.requests(request.kind()).inc();
            match request {
                Request::Hello { .. } => {
                    return Err(NetError::Protocol("repeated Hello".into()));
                }
                Request::Submit {
                    request_id,
                    program,
                } => {
                    let ticket = session.submit(program);
                    let _ = queue.send(Work::Outcome {
                        request_id,
                        ticket,
                        started,
                    });
                }
                Request::Wait => {
                    let _ = queue.send(Work::Sync { started });
                }
                Request::Checkpoint => {
                    let resp = match self.store.checkpoint() {
                        Ok(offset) => Response::CheckpointDone { offset },
                        Err(e) => Response::Error {
                            request_id: 0,
                            code: e.code().into(),
                            detail: e.to_string(),
                        },
                    };
                    send(writer, &resp)?;
                    self.observe(started);
                }
                Request::Stats => {
                    let text = self.store.metrics().render_prometheus();
                    send(writer, &Response::StatsText { text })?;
                    self.observe(started);
                }
                Request::Goodbye => return Ok(true),
                Request::Shutdown => {
                    if self.opts.allow_remote_shutdown {
                        self.stop.store(true, Ordering::SeqCst);
                        return Ok(true);
                    }
                    send(
                        writer,
                        &Response::Error {
                            request_id: 0,
                            code: "forbidden".into(),
                            detail: "server started without --allow-shutdown".into(),
                        },
                    )?;
                }
            }
        }
    }

    /// The resolver: pops work FIFO, waits tickets to their final (for
    /// commits: durable) outcome, writes response frames.
    fn resolve_loop(&self, work: mpsc::Receiver<Work>, writer: &Mutex<CountingWriter>) {
        while let Ok(item) = work.recv() {
            match item {
                Work::Outcome {
                    request_id,
                    ticket,
                    started,
                } => {
                    let outcome = self.wire_outcome(ticket.wait());
                    let _ = send(
                        writer,
                        &Response::Outcome {
                            request_id,
                            tx: ticket.id(),
                            outcome,
                        },
                    );
                    self.observe(started);
                }
                Work::Sync { started } => {
                    let _ = send(
                        writer,
                        &Response::Synced {
                            version: self.store.version(),
                        },
                    );
                    self.observe(started);
                }
                Work::Stop => break,
            }
        }
    }

    /// Projects a store outcome onto the wire, pairing a commit with
    /// the root hash recorded at its version.
    fn wire_outcome(&self, outcome: TxOutcome) -> WireOutcome {
        match outcome {
            TxOutcome::Committed { version } => WireOutcome::Committed {
                version,
                root_hash: self.store.commit_root(version).unwrap_or(0),
            },
            TxOutcome::Aborted {
                reason: AbortReason::GuardFailed { version, shape },
            } => WireOutcome::GuardAborted { version, shape },
            TxOutcome::Aborted {
                reason: AbortReason::RolledBack { reason },
            } => WireOutcome::RolledBack { reason },
            TxOutcome::Failed { error } => WireOutcome::Failed {
                code: error.code().into(),
                detail: error.to_string(),
            },
        }
    }

    fn observe(&self, started: Instant) {
        self.metrics
            .request_us
            .observe(started.elapsed().as_micros() as u64);
    }
}

/// Encodes and writes one response under the shared writer lock.
fn send(writer: &Mutex<CountingWriter>, resp: &Response) -> Result<(), NetError> {
    let mut payload = Vec::new();
    resp.encode(&mut payload);
    let mut w = writer.lock().expect("writer lock poisoned");
    write_frame(&mut *w, &payload)
}

fn error_response(request_id: u64, e: &NetError) -> Response {
    Response::Error {
        request_id,
        code: e.code().into(),
        detail: e.to_string(),
    }
}

/// A socket writer that meters bytes out.
struct CountingWriter {
    stream: TcpStream,
    bytes_out: Counter,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.stream.write(buf)?;
        self.bytes_out.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// A frame poller that meters bytes in.
struct MeteredReader<'a> {
    frames: FrameReader,
    stream: &'a TcpStream,
    bytes_in: Counter,
}

impl MeteredReader<'_> {
    fn poll(&mut self) -> Result<FramePoll, NetError> {
        let mut counted = CountingReader {
            stream: self.stream,
            bytes_in: &self.bytes_in,
        };
        self.frames.poll(&mut counted)
    }
}

struct CountingReader<'a> {
    stream: &'a TcpStream,
    bytes_in: &'a Counter,
}

impl std::io::Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.stream.read(buf)?;
        self.bytes_in.add(n as u64);
        Ok(n)
    }
}
