//! The resident front door: TCP connections multiplexed onto store
//! sessions by a bounded reactor pool, with completion-driven writes.
//!
//! [`NetServer`] wraps a running [`StoreServer`] and a bound listener.
//! [`NetServer::serve`] owns the accept loop and two small fixed pools —
//! serving C connections costs O(pool size) threads, not O(C):
//!
//! * **reactors** ([`NetOptions::reactor_threads`]) own the read side.
//!   Each accepted socket is made nonblocking and handed to one reactor,
//!   which sweeps its connections for readable frames, decodes requests,
//!   and submits programs to the worker pool. No reactor thread ever
//!   blocks on a socket or a ticket.
//! * **writers** ([`NetOptions::writer_threads`]) own the write side.
//!   Every response is stamped into the connection's sequence-numbered
//!   **outbox** — a slot per request, reserved at decode time in request
//!   order — and a writer flushes each outbox's *ready prefix* strictly
//!   in sequence order.
//!
//! The bridge between them is completion-driven: a `Submit`'s
//! [`TxTicket`](vpdt_store::TxTicket) gets an
//! [`on_resolve`](vpdt_store::TxTicket::on_resolve) hook that stamps the
//! outcome into its reserved outbox slot when the ticket resolves (for
//! commits on a persisted store: after the covering fsync). No thread
//! parks per ticket.
//!
//! Because slots are reserved in request order and written in sequence
//! order, responses on one connection arrive strictly in request order —
//! for **every** request kind (`Stats` and `Checkpoint` ride the outbox
//! like everything else) — and **an acknowledged networked commit is
//! durable by construction**. `Wait` barriers, checkpoint offsets, and
//! sync versions are *evaluated at write time*, after every earlier
//! response on that connection has been written, which is exactly the
//! barrier the protocol promises.
//!
//! A malformed frame (truncated, oversized, corrupt, undecodable) tears
//! down *that connection only*: a typed [`Response::Error`] is stamped at
//! the connection's next sequence slot, the outbox is end-marked, and the
//! connection drains. Other connections never observe it — a bad client
//! must never poison the server. Transient `accept` failures
//! (`ECONNABORTED`, `EMFILE`, …) are counted and retried with bounded
//! backoff; only the stop flag ends the accept loop.
//!
//! Shutdown (the [`ServerHandle`] stop flag, or a permitted remote
//! [`Request::Shutdown`]) stops accepting, stamps a `Bye` into every
//! serving connection's outbox, lets the writers drain every owed
//! response, then shuts the store down — the final [`ServerReport`]
//! covers everything the front door acknowledged.

use crate::frame::{write_frame, FramePoll, FrameReader};
use crate::proto::{NetError, Request, Response, WireOutcome, PROTOCOL_VERSION};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vpdt_obs::{Counter, Gauge, Histogram};
use vpdt_store::{AbortReason, ServerReport, Session, StoreServer, TxOutcome};

/// Knobs for [`NetServer::bind`].
#[derive(Clone, Debug)]
pub struct NetOptions {
    /// Honor [`Request::Shutdown`] from clients. Off by default: a
    /// remote peer should not be able to stop a server unless the
    /// operator opted in (`vpdtool serve --allow-shutdown`).
    pub allow_remote_shutdown: bool,
    /// Reader threads. Each reactor owns a share of the connections and
    /// sweeps them for readable frames; the thread cost of serving is
    /// `reactor_threads + writer_threads`, independent of connection
    /// count (`vpdtool serve --reactors`).
    pub reactor_threads: usize,
    /// Writer threads flushing ready outbox prefixes, shared by all
    /// connections (`vpdtool serve --writers`).
    pub writer_threads: usize,
    /// How long an idle reactor sleeps between readiness sweeps — the
    /// latency floor for noticing new frames and the stop flag.
    pub sweep_interval: Duration,
    /// How long a writer keeps retrying a back-pressured socket before
    /// declaring the connection dead. Not a protocol deadline: it only
    /// fires when the peer stops draining its receive buffer.
    pub write_timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            allow_remote_shutdown: false,
            reactor_threads: 2,
            writer_threads: 2,
            sweep_interval: Duration::from_millis(2),
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// Front-door instruments, registered on the **store's** registry so
/// one snapshot — and the final [`ServerReport`] — covers both layers.
#[derive(Clone, Debug)]
struct NetMetrics {
    connections: Gauge,
    connections_total: Counter,
    accept_errors: Counter,
    reactor_threads: Gauge,
    writer_threads: Gauge,
    outbox_pending: Gauge,
    bytes_in: Counter,
    bytes_out: Counter,
    frame_errors: Counter,
    request_us: Histogram,
    requests: Vec<(&'static str, Counter)>,
}

/// Metric names the front door registers (exported so dashboards and
/// tests don't hard-code strings).
pub mod names {
    /// Gauge: connections currently open.
    pub const NET_CONNECTIONS: &str = "net_connections";
    /// Counter: connections ever accepted.
    pub const NET_CONNECTIONS_TOTAL: &str = "net_connections_total";
    /// Counter: transient `accept` failures retried with backoff.
    pub const NET_ACCEPT_ERRORS_TOTAL: &str = "net_accept_errors_total";
    /// Gauge: reactor (read-side) pool threads while serving.
    pub const NET_REACTOR_THREADS: &str = "net_reactor_threads";
    /// Gauge: writer (write-side) pool threads while serving.
    pub const NET_WRITER_THREADS: &str = "net_writer_threads";
    /// Gauge: responses reserved in outboxes but not yet written.
    pub const NET_OUTBOX_PENDING: &str = "net_outbox_pending";
    /// Counter: payload + framing bytes received.
    pub const NET_BYTES_IN_TOTAL: &str = "net_bytes_in_total";
    /// Counter: payload + framing bytes sent.
    pub const NET_BYTES_OUT_TOTAL: &str = "net_bytes_out_total";
    /// Counter: frames rejected as truncated/oversized/corrupt/undecodable.
    pub const NET_FRAME_ERRORS_TOTAL: &str = "net_frame_errors_total";
    /// Histogram: microseconds from request decode to response write.
    pub const NET_REQUEST_US: &str = "net_request_us";
    /// Counter family: requests served, labeled by kind.
    pub const NET_REQUESTS_TOTAL: &str = "net_requests_total";
}

impl NetMetrics {
    fn new(store: &StoreServer) -> Self {
        let registry = store.metrics_registry();
        let kinds = [
            "hello",
            "submit",
            "wait",
            "checkpoint",
            "stats",
            "goodbye",
            "shutdown",
        ];
        NetMetrics {
            connections: registry.gauge(names::NET_CONNECTIONS),
            connections_total: registry.counter(names::NET_CONNECTIONS_TOTAL),
            accept_errors: registry.counter(names::NET_ACCEPT_ERRORS_TOTAL),
            reactor_threads: registry.gauge(names::NET_REACTOR_THREADS),
            writer_threads: registry.gauge(names::NET_WRITER_THREADS),
            outbox_pending: registry.gauge(names::NET_OUTBOX_PENDING),
            bytes_in: registry.counter(names::NET_BYTES_IN_TOTAL),
            bytes_out: registry.counter(names::NET_BYTES_OUT_TOTAL),
            frame_errors: registry.counter(names::NET_FRAME_ERRORS_TOTAL),
            request_us: registry.histogram(names::NET_REQUEST_US),
            requests: kinds
                .into_iter()
                .map(|kind| {
                    let name = format!("{}{{kind=\"{kind}\"}}", names::NET_REQUESTS_TOTAL);
                    (kind, registry.counter(&name))
                })
                .collect(),
        }
    }

    /// The per-kind request counter (`vpdt_net_requests_total{kind="…"}`).
    fn requests(&self, kind: &str) -> &Counter {
        &self
            .requests
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("every request kind is pre-registered")
            .1
    }

    /// Frame-level damage (truncated / oversized / corrupt / undecodable)
    /// bumps the error counter; higher-level protocol errors do not.
    fn note_error(&self, e: &NetError) {
        if matches!(
            e,
            NetError::Truncated { .. }
                | NetError::Oversized { .. }
                | NetError::Corrupt { .. }
                | NetError::Codec(_)
        ) {
            self.frame_errors.inc();
        }
    }
}

/// A remote-stop handle: cheap to clone out of [`NetServer::handle`]
/// before `serve` consumes the server.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the serve loop to stop: accepting ends, connections drain,
    /// the store shuts down, [`NetServer::serve`] returns.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// A bound front door around a running [`StoreServer`].
#[derive(Debug)]
pub struct NetServer {
    store: StoreServer,
    listener: TcpListener,
    opts: NetOptions,
    stop: Arc<AtomicBool>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) in front of `store`.
    pub fn bind(store: StoreServer, addr: &str, opts: NetOptions) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(NetError::io)?;
        listener.set_nonblocking(true).map_err(NetError::io)?;
        Ok(NetServer {
            store,
            listener,
            opts,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// A stop handle usable from another thread while `serve` runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
        }
    }

    /// Serves until stopped, then drains and shuts the store down.
    ///
    /// Blocks the calling thread (which runs the accept loop). The
    /// reactor and writer pools are spawned once, up front — accepted
    /// connections are distributed round-robin over the reactors and
    /// never get threads of their own. When the stop flag rises the
    /// accept loop ends, every serving connection is given a `Bye` and
    /// drains its owed responses through the writer pool, and the
    /// wrapped store's [`shutdown`](StoreServer::shutdown) report —
    /// front-door metrics included — is returned.
    pub fn serve(self) -> ServerReport {
        let NetServer {
            store,
            listener,
            opts,
            stop,
        } = self;
        let metrics = NetMetrics::new(&store);
        let reactors = opts.reactor_threads.max(1);
        let writers = opts.writer_threads.max(1);
        let pool = Arc::new(WriterPool::new(reactors));
        let inboxes: Vec<Inbox> = (0..reactors).map(|_| Inbox::default()).collect();
        metrics.reactor_threads.set(reactors as u64);
        metrics.writer_threads.set(writers as u64);

        std::thread::scope(|s| {
            for _ in 0..writers {
                let pool = Arc::clone(&pool);
                let store = &store;
                let metrics = &metrics;
                s.spawn(move || writer_loop(&pool, store, metrics));
            }
            for inbox in &inboxes {
                let ctx = Ctx {
                    store: &store,
                    opts: &opts,
                    stop: &stop,
                    metrics: &metrics,
                    pool: Arc::clone(&pool),
                };
                s.spawn(move || reactor_loop(ctx, inbox));
            }

            // The accept loop. Transient failures (ECONNABORTED, EMFILE,
            // …) are counted and retried with bounded exponential
            // backoff — only the stop flag ends the front door.
            let mut next = 0usize;
            let mut backoff = ACCEPT_BACKOFF_FLOOR;
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        backoff = ACCEPT_BACKOFF_FLOOR;
                        inboxes[next % reactors].push(stream);
                        next += 1;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => {
                        metrics.accept_errors.inc();
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_CEIL);
                    }
                }
            }
            // Scope exit joins the pools: reactors notice the stop flag
            // within one sweep, drain their connections (every owed
            // response written, via the writers), and count themselves
            // out; writers exit once the last reactor is gone and the
            // flush queue is empty.
        });
        metrics.reactor_threads.set(0);
        metrics.writer_threads.set(0);
        store.shutdown()
    }
}

const ACCEPT_BACKOFF_FLOOR: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_CEIL: Duration = Duration::from_secs(1);

/// Frames one reactor drains from one connection per sweep before moving
/// on — a firehose client must not starve its reactor-mates.
const MAX_FRAMES_PER_PUMP: usize = 32;

/// Everything a reactor (and its connections) borrows from `serve`.
struct Ctx<'a> {
    store: &'a StoreServer,
    opts: &'a NetOptions,
    stop: &'a AtomicBool,
    metrics: &'a NetMetrics,
    pool: Arc<WriterPool>,
}

/// Hand-off slot from the accept loop to one reactor.
#[derive(Default)]
struct Inbox {
    streams: Mutex<Vec<TcpStream>>,
}

impl Inbox {
    fn push(&self, stream: TcpStream) {
        self.streams
            .lock()
            .expect("inbox lock poisoned")
            .push(stream);
    }

    fn drain(&self) -> Vec<TcpStream> {
        let mut g = self.streams.lock().expect("inbox lock poisoned");
        std::mem::take(&mut *g)
    }

    fn is_empty(&self) -> bool {
        self.streams.lock().expect("inbox lock poisoned").is_empty()
    }
}

/// The shared flush queue: outboxes with a writable prefix, FIFO.
struct WriterPool {
    queue: Mutex<VecDeque<Arc<Outbox>>>,
    ready: Condvar,
    /// Reactors still running. Writers exit only after the last reactor
    /// is gone (every connection finished, so no outbox will ever be
    /// scheduled again) *and* the queue is empty.
    reactors_live: AtomicUsize,
}

impl WriterPool {
    fn new(reactors: usize) -> Self {
        WriterPool {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            reactors_live: AtomicUsize::new(reactors),
        }
    }

    fn push(&self, outbox: Arc<Outbox>) {
        self.queue
            .lock()
            .expect("writer queue poisoned")
            .push_back(outbox);
        self.ready.notify_one();
    }

    fn reactor_done(&self) {
        self.reactors_live.fetch_sub(1, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// One writer: pop an outbox with a ready prefix, flush it, repeat.
fn writer_loop(pool: &WriterPool, store: &StoreServer, metrics: &NetMetrics) {
    loop {
        let outbox = {
            let mut q = pool.queue.lock().expect("writer queue poisoned");
            loop {
                if let Some(outbox) = q.pop_front() {
                    break Some(outbox);
                }
                if pool.reactors_live.load(Ordering::SeqCst) == 0 {
                    break None;
                }
                // Timed wait: robust against a notification racing the
                // last reactor's exit.
                let (g, _) = pool
                    .ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("writer queue poisoned");
                q = g;
            }
        };
        match outbox {
            Some(outbox) => drain_outbox(&outbox, store, metrics),
            None => return,
        }
    }
}

/// Flushes one outbox's ready prefix in sequence order. Deferred
/// entries (`Synced`, `Checkpoint`, `Stats`) are realized *here*, after
/// every earlier response on the connection has been written — that is
/// what makes them barriers.
fn drain_outbox(outbox: &Arc<Outbox>, store: &StoreServer, metrics: &NetMetrics) {
    loop {
        let batch = {
            let mut g = outbox.inner.lock().expect("outbox lock poisoned");
            let mut batch = Vec::new();
            loop {
                let seq = g.next_write;
                match g.ready.remove(&seq) {
                    Some(slot) => {
                        g.next_write += 1;
                        batch.push(slot);
                    }
                    None => break,
                }
            }
            if batch.is_empty() {
                g.scheduled = false;
                if g.end == Some(g.next_write) {
                    g.closed = true;
                }
                return;
            }
            batch
        };
        let mut written = 0usize;
        let mut broken = false;
        for slot in &batch {
            let resp = realize(store, &slot.entry);
            if outbox.write_response(&resp).is_err() {
                broken = true;
                break;
            }
            written += 1;
            outbox.pending.dec();
            if let Some(started) = slot.started {
                metrics
                    .request_us
                    .observe(started.elapsed().as_micros() as u64);
            }
        }
        if broken {
            let abandoned = (batch.len() - written) as u64;
            outbox.kill(abandoned);
            return;
        }
    }
}

/// Materializes an outbox entry into the frame to write.
fn realize(store: &StoreServer, entry: &Entry) -> Response {
    match entry {
        Entry::Ready(resp) => resp.clone(),
        Entry::Outcome {
            request_id,
            tx,
            outcome,
        } => Response::Outcome {
            request_id: *request_id,
            tx: *tx,
            outcome: wire_outcome(store, outcome.clone()),
        },
        Entry::Synced => Response::Synced {
            version: store.version(),
        },
        Entry::Checkpoint => match store.checkpoint() {
            Ok(offset) => Response::CheckpointDone { offset },
            Err(e) => Response::Error {
                request_id: 0,
                code: e.code().into(),
                detail: e.to_string(),
            },
        },
        Entry::Stats => Response::StatsText {
            text: store.metrics().render_prometheus(),
        },
    }
}

/// Projects a store outcome onto the wire, pairing a commit with the
/// root hash recorded at its version. A missing commitment (the
/// version's history segment was retired before write-back) is an
/// explicit `None` on the wire — never a fabricated zero.
fn wire_outcome(store: &StoreServer, outcome: TxOutcome) -> WireOutcome {
    match outcome {
        TxOutcome::Committed { version } => WireOutcome::Committed {
            version,
            root_hash: store.commit_root(version),
        },
        TxOutcome::Aborted {
            reason: AbortReason::GuardFailed { version, shape },
        } => WireOutcome::GuardAborted { version, shape },
        TxOutcome::Aborted {
            reason: AbortReason::RolledBack { reason },
        } => WireOutcome::RolledBack { reason },
        TxOutcome::Failed { error } => WireOutcome::Failed {
            code: error.code().into(),
            detail: error.to_string(),
        },
    }
}

/// One response owed at one outbox sequence slot.
enum Entry {
    /// Fully formed at decode/resolve time.
    Ready(Response),
    /// A resolved transaction outcome; projected onto the wire (root
    /// commitment attached) at write time.
    Outcome {
        request_id: u64,
        tx: u64,
        outcome: TxOutcome,
    },
    /// A `Wait` barrier: the version is read at write time, after every
    /// earlier response was written.
    Synced,
    /// A checkpoint request: executed at write time, in FIFO position.
    Checkpoint,
    /// A stats request: rendered at write time, in FIFO position.
    Stats,
}

struct Slot {
    entry: Entry,
    /// Decode time, for the request latency histogram (handshake and
    /// teardown frames don't carry one).
    started: Option<Instant>,
}

/// The write half of one connection: a sequence-numbered response
/// ledger plus the socket the writer pool flushes it to.
///
/// Sequence slots are **reserved** by the reactor at request-decode
/// time (so reservation order is request order) and **completed** when
/// the response is known — immediately for most requests, at ticket
/// resolution for submits. Writers flush the contiguous ready prefix,
/// so the wire order is the reservation order, always.
struct Outbox {
    stream: TcpStream,
    write_timeout: Duration,
    inner: Mutex<OutboxInner>,
    pool: Arc<WriterPool>,
    /// The shared `net_outbox_pending` gauge (reserved, not yet written).
    pending: Gauge,
    bytes_out: Counter,
}

#[derive(Default)]
struct OutboxInner {
    /// Next sequence number to reserve.
    next_seq: u64,
    /// Next sequence number to write.
    next_write: u64,
    /// Completed slots waiting their turn.
    ready: BTreeMap<u64, Slot>,
    /// One past the last sequence this connection will ever write; the
    /// outbox closes when `next_write` reaches it.
    end: Option<u64>,
    /// A writer currently owns (or is queued to own) this outbox.
    scheduled: bool,
    /// Every owed response written (or the socket died): the connection
    /// can be retired.
    closed: bool,
}

impl Outbox {
    fn new(
        stream: TcpStream,
        pool: Arc<WriterPool>,
        metrics: &NetMetrics,
        write_timeout: Duration,
    ) -> Self {
        Outbox {
            stream,
            write_timeout,
            inner: Mutex::new(OutboxInner::default()),
            pool,
            pending: metrics.outbox_pending.clone(),
            bytes_out: metrics.bytes_out.clone(),
        }
    }

    /// Reserves the next sequence slot (request order). On a closed
    /// outbox the reservation is moot — the slot is handed out but no
    /// longer counts as pending.
    fn reserve(&self) -> u64 {
        let mut g = self.inner.lock().expect("outbox lock poisoned");
        let seq = g.next_seq;
        g.next_seq += 1;
        if !g.closed {
            self.pending.inc();
        }
        seq
    }

    /// Stamps `slot` at `seq` and schedules a flush if the ready prefix
    /// grew. Called from reactors (immediate responses) and from ticket
    /// completions (whichever store thread resolved the ticket) — never
    /// under any store lock. On a closed outbox this is a silent no-op.
    fn complete(self: &Arc<Self>, seq: u64, slot: Slot) {
        let schedule = {
            let mut g = self.inner.lock().expect("outbox lock poisoned");
            if g.closed {
                return;
            }
            g.ready.insert(seq, slot);
            if !g.scheduled && g.ready.contains_key(&g.next_write) {
                g.scheduled = true;
                true
            } else {
                false
            }
        };
        if schedule {
            self.pool.push(Arc::clone(self));
        }
    }

    /// Declares `end` (one past the final sequence). If everything owed
    /// is already written, the outbox closes on the spot.
    fn set_end(&self, end: u64) {
        let mut g = self.inner.lock().expect("outbox lock poisoned");
        if g.closed {
            return;
        }
        debug_assert!(g.end.is_none(), "a connection ends once");
        g.end = Some(end);
        if !g.scheduled && g.next_write == end {
            g.closed = true;
        }
    }

    /// Ends the outbox right after everything already reserved — the
    /// orderly-EOF path, where no farewell frame is owed.
    fn end_now(&self) {
        let mut g = self.inner.lock().expect("outbox lock poisoned");
        if g.closed {
            return;
        }
        debug_assert!(g.end.is_none(), "a connection ends once");
        g.end = Some(g.next_seq);
        if !g.scheduled && g.next_write == g.next_seq {
            g.closed = true;
        }
    }

    /// Declares the socket dead: everything reserved-but-unwritten is
    /// abandoned (`extra` covers slots a writer had already popped when
    /// the write failed). Late completions become no-ops.
    fn kill(&self, extra: u64) {
        let mut g = self.inner.lock().expect("outbox lock poisoned");
        if g.closed {
            return;
        }
        g.closed = true;
        let abandoned = g.next_seq - g.next_write + extra;
        g.next_write = g.next_seq;
        g.ready.clear();
        self.pending.sub(abandoned);
    }

    fn is_closed(&self) -> bool {
        self.inner.lock().expect("outbox lock poisoned").closed
    }

    /// Encodes and writes one frame, riding out `WouldBlock` (the
    /// socket is nonblocking — it is shared with the read side) up to
    /// the write timeout.
    fn write_response(&self, resp: &Response) -> Result<(), NetError> {
        let mut payload = Vec::new();
        resp.encode(&mut payload);
        let mut w = PatientWriter {
            stream: &self.stream,
            deadline: Instant::now() + self.write_timeout,
            bytes_out: &self.bytes_out,
        };
        write_frame(&mut w, &payload)
    }
}

/// A writer over a nonblocking socket that waits out transient
/// back-pressure instead of failing, up to a deadline.
struct PatientWriter<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
    bytes_out: &'a Counter,
}

impl Write for PatientWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        loop {
            let mut stream = self.stream;
            match stream.write(buf) {
                Ok(n) => {
                    self.bytes_out.add(n as u64);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= self.deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "peer stopped draining its receive buffer",
                        ));
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let mut stream = self.stream;
        stream.flush()
    }
}

/// One reactor: adopt sockets from the inbox, sweep connections for
/// readable frames, retire finished connections. Exits when the stop
/// flag is up and every connection has drained.
fn reactor_loop<'a>(ctx: Ctx<'a>, inbox: &Inbox) {
    let mut conns: Vec<Conn<'a>> = Vec::new();
    loop {
        for stream in inbox.drain() {
            match Conn::adopt(stream, &ctx) {
                Ok(conn) => {
                    ctx.metrics.connections.inc();
                    ctx.metrics.connections_total.inc();
                    conns.push(conn);
                }
                Err(_) => {
                    // Socket setup failed before the connection existed
                    // observably; nothing to account.
                }
            }
        }
        let stopping = ctx.stop.load(Ordering::SeqCst);
        let mut progressed = false;
        for conn in conns.iter_mut() {
            if stopping {
                conn.begin_stop();
            }
            progressed |= conn.pump(&ctx);
        }
        let before = conns.len();
        conns.retain(|c| {
            if c.outbox.is_closed() {
                ctx.metrics.connections.dec();
                false
            } else {
                true
            }
        });
        progressed |= conns.len() != before;
        if stopping && conns.is_empty() && inbox.is_empty() {
            break;
        }
        if !progressed {
            std::thread::sleep(ctx.opts.sweep_interval);
        }
    }
    ctx.pool.reactor_done();
}

/// Where a connection is in its life.
#[derive(PartialEq)]
enum ConnPhase {
    /// Waiting for the version-matched Hello.
    Hello,
    /// Serving requests.
    Serving,
    /// No more requests will be read; owed responses are flushing.
    Draining,
}

/// One connection, owned by one reactor.
struct Conn<'a> {
    stream: TcpStream,
    frames: FrameReader,
    outbox: Arc<Outbox>,
    session: Session<'a>,
    phase: ConnPhase,
}

impl<'a> Conn<'a> {
    fn adopt(stream: TcpStream, ctx: &Ctx<'a>) -> Result<Self, NetError> {
        stream.set_nodelay(true).map_err(NetError::io)?;
        stream.set_nonblocking(true).map_err(NetError::io)?;
        let write_half = stream.try_clone().map_err(NetError::io)?;
        let outbox = Arc::new(Outbox::new(
            write_half,
            Arc::clone(&ctx.pool),
            ctx.metrics,
            ctx.opts.write_timeout,
        ));
        Ok(Conn {
            stream,
            frames: FrameReader::new(),
            outbox,
            session: ctx.store.session(),
            phase: ConnPhase::Hello,
        })
    }

    /// Server-initiated teardown: serving connections get a Bye; a
    /// connection still in handshake just closes.
    fn begin_stop(&mut self) {
        match self.phase {
            ConnPhase::Serving => {
                let seq = self.outbox.reserve();
                self.outbox.complete(
                    seq,
                    Slot {
                        entry: Entry::Ready(Response::Bye),
                        started: None,
                    },
                );
                self.outbox.set_end(seq + 1);
                self.phase = ConnPhase::Draining;
            }
            ConnPhase::Hello => {
                let seq = self.outbox.reserve();
                self.fail(seq, &NetError::Protocol("server stopping".into()));
            }
            ConnPhase::Draining => {}
        }
    }

    /// Drains readable frames (bounded per sweep). Returns whether any
    /// progress was made.
    fn pump(&mut self, ctx: &Ctx<'a>) -> bool {
        if self.phase == ConnPhase::Draining {
            return false;
        }
        let mut progressed = false;
        for _ in 0..MAX_FRAMES_PER_PUMP {
            let mut reader = CountingReader {
                stream: &self.stream,
                bytes_in: &ctx.metrics.bytes_in,
            };
            match self.frames.poll(&mut reader) {
                Ok(FramePoll::Frame(payload)) => {
                    progressed = true;
                    self.handle_frame(&payload, ctx);
                }
                Ok(FramePoll::Eof) => {
                    progressed = true;
                    self.outbox.end_now();
                    self.phase = ConnPhase::Draining;
                }
                Ok(FramePoll::Pending) => break,
                Err(e) => {
                    progressed = true;
                    ctx.metrics.note_error(&e);
                    let seq = self.outbox.reserve();
                    self.fail(seq, &e);
                }
            }
            if self.phase == ConnPhase::Draining {
                break;
            }
        }
        progressed
    }

    /// Stamps a typed error at `seq`, ends the outbox there, drains.
    fn fail(&mut self, seq: u64, e: &NetError) {
        self.outbox.complete(
            seq,
            Slot {
                entry: Entry::Ready(error_response(0, e)),
                started: None,
            },
        );
        self.outbox.set_end(seq + 1);
        self.phase = ConnPhase::Draining;
    }

    fn handle_frame(&mut self, payload: &[u8], ctx: &Ctx<'a>) {
        let started = Instant::now();
        let request = match Request::decode(payload) {
            Ok(request) => request,
            Err(e) => {
                let e = NetError::from(e);
                ctx.metrics.note_error(&e);
                let seq = self.outbox.reserve();
                self.fail(seq, &e);
                return;
            }
        };
        ctx.metrics.requests(request.kind()).inc();

        if self.phase == ConnPhase::Hello {
            let seq = self.outbox.reserve();
            match request {
                Request::Hello { version, client: _ } if version == PROTOCOL_VERSION => {
                    self.outbox.complete(
                        seq,
                        Slot {
                            entry: Entry::Ready(Response::Welcome {
                                version: PROTOCOL_VERSION,
                                store_version: ctx.store.version(),
                                session: self.session.id(),
                            }),
                            started: None,
                        },
                    );
                    self.phase = ConnPhase::Serving;
                }
                Request::Hello { version, .. } => {
                    self.fail(
                        seq,
                        &NetError::Version {
                            ours: PROTOCOL_VERSION,
                            theirs: version,
                        },
                    );
                }
                other => {
                    self.fail(
                        seq,
                        &NetError::Protocol(format!("expected Hello, got {}", other.kind())),
                    );
                }
            }
            return;
        }

        match request {
            Request::Hello { .. } => {
                let seq = self.outbox.reserve();
                self.fail(seq, &NetError::Protocol("repeated Hello".into()));
            }
            Request::Submit {
                request_id,
                program,
            } => {
                // Reserve *before* submitting: the completion must have
                // its slot no matter how fast the ticket resolves.
                let seq = self.outbox.reserve();
                let ticket = self.session.submit(program);
                let tx = ticket.id();
                let outbox = Arc::clone(&self.outbox);
                ticket.on_resolve(move |outcome| {
                    outbox.complete(
                        seq,
                        Slot {
                            entry: Entry::Outcome {
                                request_id,
                                tx,
                                outcome,
                            },
                            started: Some(started),
                        },
                    );
                });
            }
            Request::Wait => {
                let seq = self.outbox.reserve();
                self.outbox.complete(
                    seq,
                    Slot {
                        entry: Entry::Synced,
                        started: Some(started),
                    },
                );
            }
            Request::Checkpoint => {
                let seq = self.outbox.reserve();
                self.outbox.complete(
                    seq,
                    Slot {
                        entry: Entry::Checkpoint,
                        started: Some(started),
                    },
                );
            }
            Request::Stats => {
                let seq = self.outbox.reserve();
                self.outbox.complete(
                    seq,
                    Slot {
                        entry: Entry::Stats,
                        started: Some(started),
                    },
                );
            }
            Request::Goodbye => {
                let seq = self.outbox.reserve();
                self.outbox.complete(
                    seq,
                    Slot {
                        entry: Entry::Ready(Response::Bye),
                        started: None,
                    },
                );
                self.outbox.set_end(seq + 1);
                self.phase = ConnPhase::Draining;
            }
            Request::Shutdown => {
                if ctx.opts.allow_remote_shutdown {
                    ctx.stop.store(true, Ordering::SeqCst);
                    let seq = self.outbox.reserve();
                    self.outbox.complete(
                        seq,
                        Slot {
                            entry: Entry::Ready(Response::Bye),
                            started: None,
                        },
                    );
                    self.outbox.set_end(seq + 1);
                    self.phase = ConnPhase::Draining;
                } else {
                    let seq = self.outbox.reserve();
                    self.outbox.complete(
                        seq,
                        Slot {
                            entry: Entry::Ready(Response::Error {
                                request_id: 0,
                                code: "forbidden".into(),
                                detail: "server started without --allow-shutdown".into(),
                            }),
                            started: None,
                        },
                    );
                }
            }
        }
    }
}

fn error_response(request_id: u64, e: &NetError) -> Response {
    Response::Error {
        request_id,
        code: e.code().into(),
        detail: e.to_string(),
    }
}

/// A frame-source that meters bytes in.
struct CountingReader<'a> {
    stream: &'a TcpStream,
    bytes_in: &'a Counter,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut stream = self.stream;
        let n = stream.read(buf)?;
        self.bytes_in.add(n as u64);
        Ok(n)
    }
}
