//! The transaction interface.

use std::fmt;
use vpdt_eval::EvalError;
use vpdt_structure::Database;

/// Errors a transaction can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// A formula or expression failed to evaluate (unknown symbol, arity…).
    Eval(String),
    /// The transaction aborted deliberately (e.g. a guard failed — the
    /// `if wpc(T,α) then T else abort` transform of the introduction).
    Aborted(String),
    /// The input database's schema does not match the transaction's.
    SchemaMismatch(String),
    /// A resource limit was hit (e.g. a while-program that did not
    /// converge within its iteration bound).
    ResourceLimit(String),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Eval(m) => write!(f, "evaluation failure: {m}"),
            TxError::Aborted(m) => write!(f, "transaction aborted: {m}"),
            TxError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            TxError::ResourceLimit(m) => write!(f, "resource limit: {m}"),
        }
    }
}

impl std::error::Error for TxError {}

impl From<EvalError> for TxError {
    fn from(e: EvalError) -> Self {
        TxError::Eval(e.0)
    }
}

/// A transaction: a total map from databases to databases (Section 2).
///
/// Implementations must normalize the result domain to the active domain
/// (use [`normalize_domain`]) — in the paper `dom(D)` *is* the set of
/// elements occurring in the database.
pub trait Transaction {
    /// A short human-readable name for reports.
    fn name(&self) -> String;

    /// Applies the transaction.
    fn apply(&self, db: &Database) -> Result<Database, TxError>;
}

impl<T: Transaction + ?Sized> Transaction for &T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        (**self).apply(db)
    }
}

impl<T: Transaction + ?Sized> Transaction for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        (**self).apply(db)
    }
}

/// Restricts the domain to the active domain — the output convention for
/// every transaction in this workspace.
pub fn normalize_domain(mut db: Database) -> Database {
    db.shrink_domain_to_active();
    db
}

/// Spot-checks genericity (invariance under permutations of `U`,
/// Section 4): applies each permutation π and verifies
/// `T(π(D)) = π(T(D))`. A `false` is a definite counterexample; `true` is
/// evidence, not proof.
pub fn commutes_with_permutation(
    tx: &dyn Transaction,
    db: &Database,
    pi: &dyn Fn(vpdt_logic::Elem) -> vpdt_logic::Elem,
) -> Result<bool, TxError> {
    let lhs = tx.apply(&db.permuted(pi))?;
    let rhs = tx.apply(db)?.permuted(pi);
    Ok(lhs == rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::Elem;

    struct Id;
    impl Transaction for Id {
        fn name(&self) -> String {
            "identity".into()
        }
        fn apply(&self, db: &Database) -> Result<Database, TxError> {
            Ok(normalize_domain(db.clone()))
        }
    }

    #[test]
    fn identity_is_generic() {
        let db = Database::graph([(1, 2), (2, 3)]);
        let ok = commutes_with_permutation(&Id, &db, &|e| Elem(e.0 + 7)).expect("applies");
        assert!(ok);
    }

    #[test]
    fn normalization_drops_isolated_nodes() {
        let db = Database::graph_with_domain([9], [(1, 2)]);
        let out = Id.apply(&db).expect("applies");
        assert_eq!(out.domain_size(), 2);
    }

    #[test]
    fn boxed_transactions_delegate() {
        let b: Box<dyn Transaction> = Box::new(Id);
        assert_eq!(b.name(), "identity");
        let db = Database::graph([(0, 1)]);
        assert_eq!(b.apply(&db).expect("applies"), db);
    }
}
