//! Datalog with stratified negation.
//!
//! Theorem B shows that a transaction language expressing transitive
//! closure, deterministic transitive closure, or same-generation cannot be
//! verifiable over FO (or FOcount, FOc(Ω), monadic Σ¹₁); and the separating
//! transaction of Theorem 7 "can be chosen to be Datalog¬-definable". This
//! module supplies the substrate: a small but complete stratified-Datalog¬
//! engine with both naive and semi-naive evaluation (the ablation measured
//! by the `datalog_engine` bench), plus the three recursive queries as
//! programs.
//!
//! Conventions:
//! * IDB predicates are those appearing in rule heads; every other
//!   predicate must be a database relation, or the pseudo-EDB `Dom/1`
//!   holding the active domain;
//! * rules must be *safe*: every head variable and every variable of a
//!   negated atom or (in)equality must be bound by a positive body atom
//!   (equalities with a constant side may bind);
//! * negation must be stratified (no recursion through negation).

use crate::traits::{normalize_domain, Transaction, TxError};
use std::collections::{BTreeMap, BTreeSet};
use vpdt_logic::Elem;
use vpdt_structure::Database;

/// A Datalog term: variable or constant.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DlTerm {
    /// A variable.
    Var(String),
    /// A constant element of `U`.
    Const(Elem),
}

impl DlTerm {
    /// Convenience: a variable.
    pub fn v(name: impl Into<String>) -> Self {
        DlTerm::Var(name.into())
    }

    /// Convenience: a constant.
    pub fn c(e: u64) -> Self {
        DlTerm::Const(Elem(e))
    }
}

/// A predicate atom `p(t₁..t_n)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Predicate name.
    pub rel: String,
    /// Argument terms.
    pub args: Vec<DlTerm>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(rel: impl Into<String>, args: impl IntoIterator<Item = DlTerm>) -> Self {
        Atom {
            rel: rel.into(),
            args: args.into_iter().collect(),
        }
    }
}

/// A body literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal {
    /// A positive atom.
    Pos(Atom),
    /// A negated atom (stratified).
    Neg(Atom),
    /// Term equality.
    Eq(DlTerm, DlTerm),
    /// Term disequality.
    Neq(DlTerm, DlTerm),
}

/// A rule `head ← body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom (an IDB predicate).
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: impl IntoIterator<Item = Literal>) -> Self {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }
}

/// Evaluation strategy (the bench ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Re-derive everything each iteration.
    Naive,
    /// Derive only from at least one delta atom each iteration.
    SemiNaive,
}

/// A stratified Datalog¬ program.
#[derive(Clone, Debug)]
pub struct DatalogProgram {
    rules: Vec<Rule>,
    idb: BTreeSet<String>,
    strata: Vec<Vec<usize>>, // rule indices per stratum, in evaluation order
}

/// The name of the pseudo-EDB predicate holding the active domain.
pub const DOM: &str = "Dom";

impl DatalogProgram {
    /// Builds and validates a program: checks safety and stratifiability.
    pub fn new(rules: Vec<Rule>) -> Result<Self, TxError> {
        let idb: BTreeSet<String> = rules.iter().map(|r| r.head.rel.clone()).collect();
        for r in &rules {
            check_safety(r)?;
        }
        let strata = stratify(&rules, &idb)?;
        Ok(DatalogProgram { rules, idb, strata })
    }

    /// The IDB predicates (rule heads) with their arities.
    pub fn idb_arities(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for r in &self.rules {
            out.insert(r.head.rel.clone(), r.head.args.len());
        }
        out
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Runs the program on a database, returning all derived IDB facts.
    pub fn run(
        &self,
        db: &Database,
        strategy: Strategy,
    ) -> Result<BTreeMap<String, BTreeSet<Vec<Elem>>>, TxError> {
        // EDB facts from the database (+ Dom pseudo-relation).
        let mut facts: BTreeMap<String, BTreeSet<Vec<Elem>>> = BTreeMap::new();
        for (name, _arity) in db.schema().iter() {
            if self.idb.contains(name) {
                return Err(TxError::SchemaMismatch(format!(
                    "IDB predicate {name} shadows a database relation"
                )));
            }
            facts.insert(name.to_string(), db.rel(name).iter().cloned().collect());
        }
        if !facts.contains_key(DOM) {
            facts.insert(
                DOM.to_string(),
                db.domain().iter().map(|e| vec![*e]).collect(),
            );
        }
        for (p, _) in self.idb_arities() {
            facts.insert(p.clone(), BTreeSet::new());
        }

        for stratum in &self.strata {
            let stratum_preds: BTreeSet<&str> = stratum
                .iter()
                .map(|&ri| self.rules[ri].head.rel.as_str())
                .collect();
            match strategy {
                Strategy::Naive => loop {
                    let mut changed = false;
                    for &ri in stratum {
                        let rule = &self.rules[ri];
                        let derived = eval_rule(rule, &facts, None)?;
                        let store = facts.get_mut(&rule.head.rel).expect("idb initialized");
                        for t in derived {
                            changed |= store.insert(t);
                        }
                    }
                    if !changed {
                        break;
                    }
                },
                Strategy::SemiNaive => {
                    // Round 0: full evaluation seeds the deltas.
                    let mut delta: BTreeMap<String, BTreeSet<Vec<Elem>>> = BTreeMap::new();
                    for &ri in stratum {
                        let rule = &self.rules[ri];
                        let derived = eval_rule(rule, &facts, None)?;
                        let store = facts.get_mut(&rule.head.rel).expect("idb initialized");
                        let d = delta.entry(rule.head.rel.clone()).or_default();
                        for t in derived {
                            if store.insert(t.clone()) {
                                d.insert(t);
                            }
                        }
                    }
                    // Iterate: each derivation must use ≥1 delta atom of
                    // this stratum.
                    while delta.values().any(|d| !d.is_empty()) {
                        let mut next_delta: BTreeMap<String, BTreeSet<Vec<Elem>>> = BTreeMap::new();
                        for &ri in stratum {
                            let rule = &self.rules[ri];
                            for (li, lit) in rule.body.iter().enumerate() {
                                let Literal::Pos(a) = lit else { continue };
                                if !stratum_preds.contains(a.rel.as_str()) {
                                    continue;
                                }
                                let derived = eval_rule(rule, &facts, Some((li, &delta)))?;
                                let store = facts.get_mut(&rule.head.rel).expect("idb initialized");
                                let d = next_delta.entry(rule.head.rel.clone()).or_default();
                                for t in derived {
                                    if store.insert(t.clone()) {
                                        d.insert(t);
                                    }
                                }
                            }
                        }
                        delta = next_delta;
                    }
                }
            }
        }

        Ok(self
            .idb_arities()
            .into_keys()
            .map(|p| {
                let f = facts.remove(&p).expect("idb present");
                (p, f)
            })
            .collect())
    }
}

/// Safety: head vars, negated-atom vars, and disequality vars must be bound
/// by positive atoms; equalities may propagate constants.
fn check_safety(rule: &Rule) -> Result<(), TxError> {
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for lit in &rule.body {
        if let Literal::Pos(a) = lit {
            for t in &a.args {
                if let DlTerm::Var(v) = t {
                    bound.insert(v);
                }
            }
        }
    }
    // Equality with a constant or bound side binds the other side (one pass
    // to a fixpoint).
    loop {
        let mut grew = false;
        for lit in &rule.body {
            if let Literal::Eq(a, b) = lit {
                let a_ok = match a {
                    DlTerm::Const(_) => true,
                    DlTerm::Var(v) => bound.contains(v.as_str()),
                };
                let b_ok = match b {
                    DlTerm::Const(_) => true,
                    DlTerm::Var(v) => bound.contains(v.as_str()),
                };
                if a_ok && !b_ok {
                    if let DlTerm::Var(v) = b {
                        grew |= bound.insert(v);
                    }
                }
                if b_ok && !a_ok {
                    if let DlTerm::Var(v) = a {
                        grew |= bound.insert(v);
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let mut need: Vec<&DlTerm> = rule.head.args.iter().collect();
    for lit in &rule.body {
        match lit {
            Literal::Neg(a) => need.extend(a.args.iter()),
            Literal::Neq(a, b) => {
                need.push(a);
                need.push(b);
            }
            _ => {}
        }
    }
    for t in need {
        if let DlTerm::Var(v) = t {
            if !bound.contains(v.as_str()) {
                return Err(TxError::Eval(format!(
                    "unsafe rule: variable {v} not bound by a positive atom in {:?}",
                    rule.head
                )));
            }
        }
    }
    Ok(())
}

/// Assigns strata: `σ(p) ≥ σ(q)` for positive dependencies, `σ(p) > σ(q)`
/// for negative ones. Fails if negation is recursive.
fn stratify(rules: &[Rule], idb: &BTreeSet<String>) -> Result<Vec<Vec<usize>>, TxError> {
    let preds: Vec<&str> = idb.iter().map(String::as_str).collect();
    let index: BTreeMap<&str, usize> = preds.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let mut stratum = vec![0usize; preds.len()];
    let max_rounds = preds.len() * preds.len() + 1;
    for round in 0..=max_rounds {
        let mut changed = false;
        for r in rules {
            let h = index[r.head.rel.as_str()];
            for lit in &r.body {
                match lit {
                    Literal::Pos(a) => {
                        if let Some(&q) = index.get(a.rel.as_str()) {
                            if stratum[h] < stratum[q] {
                                stratum[h] = stratum[q];
                                changed = true;
                            }
                        }
                    }
                    Literal::Neg(a) => {
                        if let Some(&q) = index.get(a.rel.as_str()) {
                            if stratum[h] < stratum[q] + 1 {
                                stratum[h] = stratum[q] + 1;
                                changed = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if !changed {
            break;
        }
        if round == max_rounds {
            return Err(TxError::Eval(
                "program is not stratifiable (recursion through negation)".to_string(),
            ));
        }
    }
    let max_stratum = stratum.iter().copied().max().unwrap_or(0);
    let mut out = vec![Vec::new(); max_stratum + 1];
    for (ri, r) in rules.iter().enumerate() {
        out[stratum[index[r.head.rel.as_str()]]].push(ri);
    }
    out.retain(|s| !s.is_empty());
    Ok(out)
}

type FactStore = BTreeMap<String, BTreeSet<Vec<Elem>>>;

/// Evaluates one rule against the fact store. With `delta = Some((li, d))`,
/// the positive literal at index `li` ranges over `d[pred]` instead of the
/// full store (semi-naive restriction).
fn eval_rule(
    rule: &Rule,
    facts: &FactStore,
    delta: Option<(usize, &FactStore)>,
) -> Result<BTreeSet<Vec<Elem>>, TxError> {
    // Order literals greedily so that each is evaluable when reached.
    let order = plan(rule)?;
    let mut out = BTreeSet::new();
    let mut env: BTreeMap<String, Elem> = BTreeMap::new();
    search(rule, &order, 0, facts, delta, &mut env, &mut out)?;
    Ok(out)
}

/// A literal evaluation order where every literal is ready when reached.
fn plan(rule: &Rule) -> Result<Vec<usize>, TxError> {
    let mut order = Vec::with_capacity(rule.body.len());
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    while !remaining.is_empty() {
        let ready = remaining.iter().position(|&li| match &rule.body[li] {
            Literal::Pos(_) => true,
            Literal::Neg(a) => a.args.iter().all(|t| match t {
                DlTerm::Var(v) => bound.contains(v.as_str()),
                DlTerm::Const(_) => true,
            }),
            Literal::Eq(a, b) => {
                let is_bound = |t: &DlTerm| match t {
                    DlTerm::Var(v) => bound.contains(v.as_str()),
                    DlTerm::Const(_) => true,
                };
                is_bound(a) || is_bound(b)
            }
            Literal::Neq(a, b) => [a, b].iter().all(|t| match t {
                DlTerm::Var(v) => bound.contains(v.as_str()),
                DlTerm::Const(_) => true,
            }),
        });
        let Some(pos) = ready else {
            return Err(TxError::Eval(
                "no evaluable literal order (unsafe rule)".into(),
            ));
        };
        let li = remaining.remove(pos);
        match &rule.body[li] {
            Literal::Pos(a) => {
                for t in &a.args {
                    if let DlTerm::Var(v) = t {
                        bound.insert(v);
                    }
                }
            }
            Literal::Eq(a, b) => {
                for t in [a, b] {
                    if let DlTerm::Var(v) = t {
                        bound.insert(v);
                    }
                }
            }
            _ => {}
        }
        order.push(li);
    }
    Ok(order)
}

#[allow(clippy::too_many_arguments)]
fn search(
    rule: &Rule,
    order: &[usize],
    step: usize,
    facts: &FactStore,
    delta: Option<(usize, &FactStore)>,
    env: &mut BTreeMap<String, Elem>,
    out: &mut BTreeSet<Vec<Elem>>,
) -> Result<(), TxError> {
    if step == order.len() {
        let tuple: Vec<Elem> = rule
            .head
            .args
            .iter()
            .map(|t| value(t, env).expect("safety guarantees head bound"))
            .collect();
        out.insert(tuple);
        return Ok(());
    }
    let li = order[step];
    match &rule.body[li] {
        Literal::Pos(a) => {
            let store = match delta {
                Some((dli, d)) if dli == li => d.get(&a.rel),
                _ => facts.get(&a.rel),
            };
            let Some(tuples) = store else {
                // delta without entries for this predicate, or unknown EDB
                if facts.contains_key(&a.rel) || delta.is_some() {
                    return Ok(());
                }
                return Err(TxError::SchemaMismatch(format!(
                    "unknown predicate {}",
                    a.rel
                )));
            };
            for t in tuples {
                if t.len() != a.args.len() {
                    return Err(TxError::SchemaMismatch(format!(
                        "arity mismatch on {}",
                        a.rel
                    )));
                }
                let mut added: Vec<String> = Vec::new();
                let mut ok = true;
                for (arg, val) in a.args.iter().zip(t.iter()) {
                    match arg {
                        DlTerm::Const(c) => {
                            if c != val {
                                ok = false;
                                break;
                            }
                        }
                        DlTerm::Var(v) => match env.get(v) {
                            Some(e) if e != val => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                env.insert(v.clone(), *val);
                                added.push(v.clone());
                            }
                        },
                    }
                }
                if ok {
                    search(rule, order, step + 1, facts, delta, env, out)?;
                }
                for v in added {
                    env.remove(&v);
                }
            }
            Ok(())
        }
        Literal::Neg(a) => {
            let tuple: Vec<Elem> = a
                .args
                .iter()
                .map(|t| value(t, env).expect("plan guarantees bound"))
                .collect();
            let present = facts.get(&a.rel).is_some_and(|s| s.contains(&tuple));
            if !present {
                search(rule, order, step + 1, facts, delta, env, out)?;
            }
            Ok(())
        }
        Literal::Eq(a, b) => {
            match (value(a, env), value(b, env)) {
                (Some(x), Some(y)) => {
                    if x == y {
                        search(rule, order, step + 1, facts, delta, env, out)?;
                    }
                }
                (Some(x), None) => {
                    if let DlTerm::Var(v) = b {
                        env.insert(v.clone(), x);
                        search(rule, order, step + 1, facts, delta, env, out)?;
                        env.remove(v);
                    }
                }
                (None, Some(y)) => {
                    if let DlTerm::Var(v) = a {
                        env.insert(v.clone(), y);
                        search(rule, order, step + 1, facts, delta, env, out)?;
                        env.remove(v);
                    }
                }
                (None, None) => {
                    return Err(TxError::Eval("equality with both sides unbound".into()))
                }
            }
            Ok(())
        }
        Literal::Neq(a, b) => {
            let x = value(a, env).expect("plan guarantees bound");
            let y = value(b, env).expect("plan guarantees bound");
            if x != y {
                search(rule, order, step + 1, facts, delta, env, out)?;
            }
            Ok(())
        }
    }
}

fn value(t: &DlTerm, env: &BTreeMap<String, Elem>) -> Option<Elem> {
    match t {
        DlTerm::Const(c) => Some(*c),
        DlTerm::Var(v) => env.get(v).copied(),
    }
}

/// A transaction defined by a Datalog¬ program: runs the program, then
/// replaces each listed database relation by the contents of an IDB
/// predicate. Unlisted relations are kept.
#[derive(Clone, Debug)]
pub struct DatalogTransaction {
    label: String,
    program: DatalogProgram,
    outputs: Vec<(String, String)>, // (idb predicate, target relation)
    strategy: Strategy,
}

impl DatalogTransaction {
    /// Builds the transaction. `outputs` maps IDB predicates to target
    /// schema relations.
    pub fn new(
        label: impl Into<String>,
        program: DatalogProgram,
        outputs: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
        strategy: Strategy,
    ) -> Self {
        DatalogTransaction {
            label: label.into(),
            program,
            outputs: outputs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
            strategy,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &DatalogProgram {
        &self.program
    }
}

impl Transaction for DatalogTransaction {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        let derived = self.program.run(db, self.strategy)?;
        let mut out = db.clone();
        for (idb, target) in &self.outputs {
            let tuples = derived
                .get(idb)
                .ok_or_else(|| TxError::Eval(format!("no IDB predicate {idb}")))?;
            let old: Vec<Vec<Elem>> = out.rel(target).iter().cloned().collect();
            for t in old {
                out.remove(target, &t);
            }
            for t in tuples {
                out.insert(target, t.clone());
            }
        }
        Ok(normalize_domain(out))
    }
}

/// `tc(x,y) ← E(x,y);  tc(x,y) ← E(x,z), tc(z,y)` — transitive closure.
pub fn tc_program() -> DatalogProgram {
    let v = DlTerm::v;
    DatalogProgram::new(vec![
        Rule::new(
            Atom::new("tc", [v("x"), v("y")]),
            [Literal::Pos(Atom::new("E", [v("x"), v("y")]))],
        ),
        Rule::new(
            Atom::new("tc", [v("x"), v("y")]),
            [
                Literal::Pos(Atom::new("E", [v("x"), v("z")])),
                Literal::Pos(Atom::new("tc", [v("z"), v("y")])),
            ],
        ),
    ])
    .expect("tc program is valid")
}

/// Deterministic transitive closure via stratified negation. `dpath(x,y)`
/// holds when there is a path from `x` to `y` all of whose nodes *except
/// possibly `y`* have out-degree 1 — exactly the side condition of the
/// definition in Section 3 ("each `xᵢ` has out-degree 1, `i = 1..n−1`"):
///
/// ```text
/// multi(x)   ← E(x,y), E(x,z), y≠z
/// only(x,y)  ← E(x,y), ¬multi(x)
/// dpath(x,y) ← only(x,y)
/// dpath(x,y) ← only(x,z), dpath(z,y)
/// dtc(x,y)   ← E(x,y)
/// dtc(x,y)   ← dpath(x,y)
/// ```
pub fn dtc_program() -> DatalogProgram {
    let v = DlTerm::v;
    DatalogProgram::new(vec![
        Rule::new(
            Atom::new("multi", [v("x")]),
            [
                Literal::Pos(Atom::new("E", [v("x"), v("y")])),
                Literal::Pos(Atom::new("E", [v("x"), v("z")])),
                Literal::Neq(v("y"), v("z")),
            ],
        ),
        Rule::new(
            Atom::new("only", [v("x"), v("y")]),
            [
                Literal::Pos(Atom::new("E", [v("x"), v("y")])),
                Literal::Neg(Atom::new("multi", [v("x")])),
            ],
        ),
        Rule::new(
            Atom::new("dpath", [v("x"), v("y")]),
            [Literal::Pos(Atom::new("only", [v("x"), v("y")]))],
        ),
        Rule::new(
            Atom::new("dpath", [v("x"), v("y")]),
            [
                Literal::Pos(Atom::new("only", [v("x"), v("z")])),
                Literal::Pos(Atom::new("dpath", [v("z"), v("y")])),
            ],
        ),
        Rule::new(
            Atom::new("dtc", [v("x"), v("y")]),
            [Literal::Pos(Atom::new("E", [v("x"), v("y")]))],
        ),
        Rule::new(
            Atom::new("dtc", [v("x"), v("y")]),
            [Literal::Pos(Atom::new("dpath", [v("x"), v("y")]))],
        ),
    ])
    .expect("dtc program is valid")
}

/// Same-generation from the diagonal:
///
/// ```text
/// sg(x,x) ← Dom(x)
/// sg(x,y) ← E(u,x), E(w,y), sg(u,w)
/// ```
pub fn sg_program() -> DatalogProgram {
    let v = DlTerm::v;
    DatalogProgram::new(vec![
        Rule::new(
            Atom::new("sg", [v("x"), v("x")]),
            [Literal::Pos(Atom::new(DOM, [v("x")]))],
        ),
        Rule::new(
            Atom::new("sg", [v("x"), v("y")]),
            [
                Literal::Pos(Atom::new("E", [v("u"), v("x")])),
                Literal::Pos(Atom::new("E", [v("w"), v("y")])),
                Literal::Pos(Atom::new("sg", [v("u"), v("w")])),
            ],
        ),
    ])
    .expect("sg program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_structure::{families, Graph};

    fn run_tc(db: &Database, s: Strategy) -> BTreeSet<(Elem, Elem)> {
        tc_program()
            .run(db, s)
            .expect("runs")
            .remove("tc")
            .expect("tc derived")
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect()
    }

    #[test]
    fn tc_matches_graph_algorithm() {
        for db in [
            families::chain(5),
            families::cycle(4),
            families::cc_graph(3, &[4]),
            families::gnm(2, 3),
        ] {
            let expect = Graph::of_edges(&db).transitive_closure();
            assert_eq!(run_tc(&db, Strategy::Naive), expect);
            assert_eq!(run_tc(&db, Strategy::SemiNaive), expect);
        }
    }

    #[test]
    fn dtc_matches_graph_algorithm() {
        for db in [
            families::chain(5),
            families::cycle(4),
            Database::graph([(0, 1), (0, 2), (1, 3), (3, 4)]),
        ] {
            let expect = Graph::of_edges(&db).deterministic_transitive_closure();
            let got: BTreeSet<(Elem, Elem)> = dtc_program()
                .run(&db, Strategy::SemiNaive)
                .expect("runs")
                .remove("dtc")
                .expect("dtc derived")
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            assert_eq!(got, expect, "on {db:?}");
        }
    }

    #[test]
    fn sg_matches_graph_algorithm() {
        for db in [families::gnm(3, 3), families::complete_binary_tree(3)] {
            let expect = Graph::of_edges(&db).same_generation();
            let got: BTreeSet<(Elem, Elem)> = sg_program()
                .run(&db, Strategy::SemiNaive)
                .expect("runs")
                .remove("sg")
                .expect("sg derived")
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            assert_eq!(got, expect, "on {db:?}");
        }
    }

    #[test]
    fn datalog_transaction_replaces_relation() {
        let tx = DatalogTransaction::new("tc", tc_program(), [("tc", "E")], Strategy::SemiNaive);
        let out = tx.apply(&families::chain(4)).expect("applies");
        assert_eq!(out, families::linear_order(4));
    }

    #[test]
    fn unsafe_rules_rejected() {
        let v = DlTerm::v;
        // head variable y unbound
        let bad = DatalogProgram::new(vec![Rule::new(
            Atom::new("p", [v("x"), v("y")]),
            [Literal::Pos(Atom::new("E", [v("x"), v("x")]))],
        )]);
        assert!(bad.is_err());
        // negated variable unbound
        let bad2 = DatalogProgram::new(vec![Rule::new(
            Atom::new("p", [v("x")]),
            [
                Literal::Pos(Atom::new("E", [v("x"), v("x")])),
                Literal::Neg(Atom::new("E", [v("x"), v("z")])),
            ],
        )]);
        assert!(bad2.is_err());
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let v = DlTerm::v;
        let bad = DatalogProgram::new(vec![
            Rule::new(
                Atom::new("p", [v("x")]),
                [
                    Literal::Pos(Atom::new("E", [v("x"), v("x")])),
                    Literal::Neg(Atom::new("q", [v("x")])),
                ],
            ),
            Rule::new(
                Atom::new("q", [v("x")]),
                [
                    Literal::Pos(Atom::new("E", [v("x"), v("x")])),
                    Literal::Neg(Atom::new("p", [v("x")])),
                ],
            ),
        ]);
        assert!(bad.is_err());
    }

    #[test]
    fn constants_in_rules() {
        let v = DlTerm::v;
        let p = DatalogProgram::new(vec![Rule::new(
            Atom::new("from0", [v("y")]),
            [Literal::Pos(Atom::new("E", [DlTerm::c(0), v("y")]))],
        )])
        .expect("valid");
        let db = families::chain(3);
        let got = p.run(&db, Strategy::SemiNaive).expect("runs");
        assert_eq!(got["from0"], BTreeSet::from([vec![Elem(1)]]));
    }

    #[test]
    fn equality_binding() {
        let v = DlTerm::v;
        let p = DatalogProgram::new(vec![Rule::new(
            Atom::new("pairs", [v("x"), v("y")]),
            [
                Literal::Pos(Atom::new("E", [v("x"), v("z")])),
                Literal::Eq(v("y"), v("z")),
            ],
        )])
        .expect("valid");
        let db = families::chain(3);
        let got = p.run(&db, Strategy::SemiNaive).expect("runs");
        assert_eq!(got["pairs"].len(), 2);
    }

    #[test]
    fn strata_count() {
        assert_eq!(tc_program().num_strata(), 1);
        assert_eq!(dtc_program().num_strata(), 2);
    }
}
