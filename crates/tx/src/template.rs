//! Statement templates: prepared statements for update programs.
//!
//! A ground program like `insert E(3, 4)` differs from `insert E(5, 1)`
//! only in its constants; everything the guard compiler produces for one —
//! prerelations, the `wpc` translation, the invariant-reduced guard, the
//! Section-6 Δ — has the same *shape* for the other. [`canonicalize`] makes
//! that sharing explicit: it lifts every constant occurring in a program to
//! a placeholder term ([`Term::param`]) in first-occurrence order, yielding
//! a constant-free [`Template`] plus the binding vector of lifted values.
//! [`Template::instantiate`] inverts the lifting up to the canonical
//! variable renaming `canonicalize` also performs:
//!
//! ```text
//! canonicalize(p) = (t, b)   ⟹   canonicalize(t.instantiate(&b)) = (t, b)
//! ```
//!
//! with `t.instantiate(&b)` α-equivalent to `p` (same semantics, canonical
//! variable spelling).
//!
//! Two ground programs canonicalize to the same template exactly when they
//! differ only in constants — element constants in terms *or* numeric
//! literals in condition formulas — or in variable names, so a guard cache
//! keyed by templates holds one entry per statement *shape* — O(1) in the
//! size of the universe — instead of one entry per ground program.
//!
//! Placeholders are ground terms (nullary applications of the reserved
//! symbol `?i`), so a template's shape is itself a well-formed [`Program`]
//! and flows through the whole compilation pipeline unchanged; only
//! *evaluation* of an un-instantiated placeholder is an error, which is
//! exactly the failure mode a forgotten binding should have.

use crate::program::Program;
use crate::traits::TxError;
use std::fmt;
use vpdt_logic::formula::NumTerm;
use vpdt_logic::subst::map_terms_full;
use vpdt_logic::{Elem, Formula, Term, Var};

/// A canonicalized statement shape: a program whose constants have been
/// lifted to placeholders `?0, ?1, …` in first-occurrence order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Template {
    shape: Program,
    params: usize,
}

impl Template {
    /// The constant-free program shape (placeholders in constant positions).
    pub fn shape(&self) -> &Program {
        &self.shape
    }

    /// Number of placeholders (= length of a valid binding vector).
    pub fn params(&self) -> usize {
        self.params
    }

    /// A stable cache key for the shape. Two ground programs share a key
    /// exactly when they canonicalize to the same template.
    pub fn key(&self) -> String {
        format!("{:?}", self.shape)
    }

    /// Rebuilds a template from a decoded shape program — the durable-log
    /// path, where shapes come back from disk rather than from
    /// [`canonicalize`]. The shape must carry exactly the placeholders
    /// `?0..?{n-1}` for some `n` (contiguous from zero), the invariant
    /// `canonicalize` guarantees; anything else is rejected so a tampered
    /// log cannot smuggle in a template whose instantiation would silently
    /// skip bindings.
    pub fn from_shape(shape: Program) -> Result<Template, TxError> {
        let mut params = std::collections::BTreeSet::new();
        for cond in shape.condition_formulas() {
            params.extend(vpdt_logic::subst::formula_params(cond));
        }
        collect_insert_params(&shape, &mut params);
        let n = params.len();
        if params.iter().next_back().is_some_and(|&max| max + 1 != n) {
            return Err(TxError::Eval(format!(
                "template shape has non-contiguous placeholders {params:?}"
            )));
        }
        Ok(Template { shape, params: n })
    }

    /// Substitutes `bindings[i]` for every placeholder `?i`, recovering a
    /// ground program. The inverse of [`canonicalize`] on its own output.
    pub fn instantiate(&self, bindings: &[Elem]) -> Result<Program, TxError> {
        if bindings.len() != self.params {
            return Err(TxError::Eval(format!(
                "template with {} placeholders instantiated with {} bindings",
                self.params,
                bindings.len()
            )));
        }
        Ok(map_program_terms(
            &self.shape,
            &mut |t| vpdt_logic::subst::instantiate_params_term(t, bindings),
            &mut |nt| vpdt_logic::subst::instantiate_num_param(nt, bindings),
        ))
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template[{} params] {:?}", self.params, self.shape)
    }
}

/// Splits a ground program into `(shape, bindings)`: every constant —
/// in insert tuples, inside Ω-applications, and in condition formulas —
/// is replaced by the next placeholder and its value recorded. Constants
/// are lifted *positionally* (two occurrences of the same value get two
/// placeholders), which maximizes shape sharing: `insert E(3,3)` and
/// `insert E(3,4)` are the same prepared statement with different bindings.
///
/// Numeric literals in condition formulas (counting bounds, `NumLe`/`NumEq`/
/// `Bit` operands) are value-normalized the same way, into the *same*
/// binding vector — so guards differing only in a threshold (`∃≥2` vs
/// `∃≥9`) share one compiled shape. The structural constants `1#` and
/// `max#` are part of the logic's syntax, not values, and stay in place.
///
/// Variable *names* are normalized away too: statement binders are renamed
/// positionally to `v0, v1, …` and quantified variables in condition
/// formulas to `b0, b1, …` by nesting depth, so α-equivalent programs —
/// `delete E where (x,y): x = 3` and `delete E where (a,b): a = 7` — share
/// one shape instead of splitting the cache per spelling. Renaming is
/// skipped (never unsound, just less sharing) in the degenerate cases
/// where it could capture: a canonical name already free in the condition,
/// or duplicate binder names.
///
/// Because of the renaming, the roundtrip lands on the *canonical
/// spelling* of the input, not its original one:
///
/// ```text
/// canonicalize(p) = (t, b)   ⟹   canonicalize(t.instantiate(&b)) = (t, b)
/// ```
///
/// with `t.instantiate(&b)` α-equivalent (hence semantically identical) to
/// `p`. Checks that tie a recorded `(shape, bindings)` back to a submitted
/// program must therefore compare canonical forms, not instantiations.
///
/// A program that already contains placeholder terms is **rejected**: the
/// lifted indices would collide with the pre-existing `?i`, breaking the
/// roundtrip invariant (the guard would verify a different program than
/// the one executed). Placeholders belong to templates, not to submitted
/// programs.
pub fn canonicalize(p: &Program) -> Result<(Template, Vec<Elem>), TxError> {
    if program_has_params(p) {
        return Err(TxError::Eval(
            "cannot canonicalize a program that already contains placeholder terms".to_string(),
        ));
    }
    let renamed = alpha_normalize(p);
    // Both sorts share one index space, so the two rewriters push into the
    // same vector; the RefCell lets the closures alias it.
    let bindings = std::cell::RefCell::new(Vec::new());
    let shape = map_program_terms(
        &renamed,
        &mut |t| lift_term(t, &mut bindings.borrow_mut()),
        &mut |nt| lift_num_term(nt, &mut bindings.borrow_mut()),
    );
    let bindings = bindings.into_inner();
    Ok((
        Template {
            shape,
            params: bindings.len(),
        },
        bindings,
    ))
}

/// Canonically renames the program's variables: statement binders become
/// `v0, v1, …` positionally, quantified variables in every condition
/// formula become `b0, b1, …` by nesting depth (via
/// [`normalize_bound_vars`]). Statement renaming is simultaneous and
/// capture-checked; when a canonical name is already free in the condition
/// (and is not one of the binders being renamed) or the binder list has
/// duplicates, the statement keeps its original names — correctness never
/// depends on the rename, only cache sharing does.
fn alpha_normalize(p: &Program) -> Program {
    use vpdt_logic::simplify::normalize_bound_vars;
    match p {
        Program::Skip => Program::Skip,
        Program::Insert { rel, tuple } => Program::Insert {
            rel: rel.clone(),
            tuple: tuple.clone(),
        },
        Program::DeleteWhere { rel, vars, cond } => {
            let (vars, cond) = rename_statement_vars(vars, cond);
            Program::DeleteWhere {
                rel: rel.clone(),
                vars,
                cond: normalize_bound_vars(&cond),
            }
        }
        Program::InsertWhere { rel, vars, cond } => {
            let (vars, cond) = rename_statement_vars(vars, cond);
            Program::InsertWhere {
                rel: rel.clone(),
                vars,
                cond: normalize_bound_vars(&cond),
            }
        }
        Program::Assign { rel, vars, body } => {
            let (vars, body) = rename_statement_vars(vars, body);
            Program::Assign {
                rel: rel.clone(),
                vars,
                body: normalize_bound_vars(&body),
            }
        }
        Program::Seq(ps) => Program::Seq(ps.iter().map(alpha_normalize).collect()),
        Program::If {
            cond,
            then_p,
            else_p,
        } => Program::If {
            cond: normalize_bound_vars(cond),
            then_p: Box::new(alpha_normalize(then_p)),
            else_p: Box::new(alpha_normalize(else_p)),
        },
    }
}

/// Simultaneously renames `vars` to `v0..v{n-1}` in `cond`. Bails out
/// (returning the originals) when the rename could capture or conflate:
/// duplicate binders, or a canonical name free in `cond` that is not
/// itself one of the binders.
fn rename_statement_vars(vars: &[Var], cond: &Formula) -> (Vec<Var>, Formula) {
    let targets: Vec<Var> = (0..vars.len()).map(|i| Var::new(format!("v{i}"))).collect();
    if targets == vars {
        return (vars.to_vec(), cond.clone());
    }
    let distinct: std::collections::BTreeSet<&Var> = vars.iter().collect();
    if distinct.len() != vars.len() {
        return (vars.to_vec(), cond.clone());
    }
    let free = cond.free_vars();
    if targets
        .iter()
        .any(|t| free.contains(t) && !distinct.contains(t))
    {
        return (vars.to_vec(), cond.clone());
    }
    let map: std::collections::BTreeMap<Var, Term> = vars
        .iter()
        .cloned()
        .zip(targets.iter().cloned().map(Term::Var))
        .collect();
    (targets, vpdt_logic::subst::substitute_many(cond, &map))
}

/// Whether any placeholder term occurs in the program (insert tuples or
/// condition formulas).
fn program_has_params(p: &Program) -> bool {
    fn formula_has_params(f: &Formula) -> bool {
        !vpdt_logic::subst::formula_params(f).is_empty()
    }
    match p {
        Program::Skip => false,
        Program::Insert { tuple, .. } => tuple.iter().any(Term::has_params),
        Program::DeleteWhere { cond, .. } | Program::InsertWhere { cond, .. } => {
            formula_has_params(cond)
        }
        Program::Assign { body, .. } => formula_has_params(body),
        Program::Seq(ps) => ps.iter().any(program_has_params),
        Program::If {
            cond,
            then_p,
            else_p,
        } => formula_has_params(cond) || program_has_params(then_p) || program_has_params(else_p),
    }
}

/// Collects the placeholder indices occurring in `Insert` tuples (the one
/// term position [`Program::condition_formulas`] does not cover).
fn collect_insert_params(p: &Program, out: &mut std::collections::BTreeSet<usize>) {
    fn term_params(t: &Term, out: &mut std::collections::BTreeSet<usize>) {
        if let Some(i) = t.as_param() {
            out.insert(i);
        } else if let Term::App(_, args) = t {
            for a in args {
                term_params(a, out);
            }
        }
    }
    match p {
        Program::Insert { tuple, .. } => {
            for t in tuple {
                term_params(t, out);
            }
        }
        Program::Seq(ps) => {
            for q in ps {
                collect_insert_params(q, out);
            }
        }
        Program::If { then_p, else_p, .. } => {
            collect_insert_params(then_p, out);
            collect_insert_params(else_p, out);
        }
        _ => {}
    }
}

fn lift_term(t: &Term, bindings: &mut Vec<Elem>) -> Term {
    match t {
        Term::Var(_) => t.clone(),
        Term::Const(e) => {
            bindings.push(*e);
            Term::param(bindings.len() - 1)
        }
        Term::App(f, args) => Term::App(
            f.clone(),
            args.iter().map(|a| lift_term(a, bindings)).collect(),
        ),
    }
}

fn lift_num_term(t: &NumTerm, bindings: &mut Vec<Elem>) -> NumTerm {
    match t {
        NumTerm::Lit(n) => {
            bindings.push(Elem(*n));
            NumTerm::Param(bindings.len() - 1)
        }
        // `1#` and `max#` are syntax, not values — lifting them would make
        // shapes depend on the universe size; variables stay bound.
        NumTerm::Var(_) | NumTerm::One | NumTerm::Max | NumTerm::Param(_) => t.clone(),
    }
}

/// Rewrites every term position of a program — insert tuples and all
/// condition formulas, numeric-term positions included — with the two
/// rewriters.
fn map_program_terms(
    p: &Program,
    rewrite: &mut dyn FnMut(&Term) -> Term,
    rewrite_num: &mut dyn FnMut(&NumTerm) -> NumTerm,
) -> Program {
    match p {
        Program::Skip => Program::Skip,
        Program::Insert { rel, tuple } => Program::Insert {
            rel: rel.clone(),
            tuple: tuple.iter().map(rewrite).collect(),
        },
        Program::DeleteWhere { rel, vars, cond } => Program::DeleteWhere {
            rel: rel.clone(),
            vars: vars.clone(),
            cond: map_terms_full(cond, rewrite, rewrite_num),
        },
        Program::InsertWhere { rel, vars, cond } => Program::InsertWhere {
            rel: rel.clone(),
            vars: vars.clone(),
            cond: map_terms_full(cond, rewrite, rewrite_num),
        },
        Program::Assign { rel, vars, body } => Program::Assign {
            rel: rel.clone(),
            vars: vars.clone(),
            body: map_terms_full(body, rewrite, rewrite_num),
        },
        Program::Seq(ps) => Program::Seq(
            ps.iter()
                .map(|q| map_program_terms(q, rewrite, rewrite_num))
                .collect(),
        ),
        Program::If {
            cond,
            then_p,
            else_p,
        } => Program::If {
            cond: map_terms_full(cond, rewrite, rewrite_num),
            then_p: Box::new(map_program_terms(then_p, rewrite, rewrite_num)),
            else_p: Box::new(map_program_terms(else_p, rewrite, rewrite_num)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::{parse_formula, Var};

    fn roundtrips(p: &Program) {
        let (t, b) = canonicalize(p).expect("canonicalizes");
        // The roundtrip lands on the canonical spelling of `p`:
        // re-canonicalizing the instantiation is a fixpoint.
        let ground = t.instantiate(&b).expect("instantiates");
        let (t2, b2) = canonicalize(&ground).expect("re-canonicalizes");
        assert_eq!(t2, t, "{p:?}");
        assert_eq!(b2, b, "{p:?}");
    }

    #[test]
    fn canonicalize_roundtrips() {
        for p in [
            Program::Skip,
            Program::insert_consts("E", [3, 4]),
            Program::insert_consts("E", [3, 3]),
            Program::delete_consts("E", [0, 7]),
            Program::Insert {
                rel: "E".into(),
                tuple: vec![Term::cst(1u64), Term::app("succ", [Term::cst(1u64)])],
            },
            Program::seq([
                Program::insert_consts("E", [1, 2]),
                Program::If {
                    cond: parse_formula("exists x. E(x, 5)").expect("parses"),
                    then_p: Box::new(Program::delete_consts("E", [5, 5])),
                    else_p: Box::new(Program::Skip),
                },
            ]),
            Program::Assign {
                rel: "E".into(),
                vars: vec![Var::new("x"), Var::new("y")],
                body: parse_formula("x != 9 & E(x, y)").expect("parses"),
            },
        ] {
            roundtrips(&p);
        }
    }

    #[test]
    fn shapes_collapse_over_constants() {
        let (a, ba) = canonicalize(&Program::insert_consts("E", [3, 4])).expect("canonicalizes");
        let (b, bb) = canonicalize(&Program::insert_consts("E", [5, 1])).expect("canonicalizes");
        let (c, bc) = canonicalize(&Program::insert_consts("E", [3, 3])).expect("canonicalizes");
        assert_eq!(a, b);
        assert_eq!(a, c, "repeated constants do not change the shape");
        assert_eq!(a.key(), b.key());
        assert_eq!(ba, vec![Elem(3), Elem(4)]);
        assert_eq!(bb, vec![Elem(5), Elem(1)]);
        assert_eq!(bc, vec![Elem(3), Elem(3)]);
        // different statement kinds stay distinct
        let (d, _) = canonicalize(&Program::delete_consts("E", [3, 4])).expect("canonicalizes");
        assert_ne!(a.key(), d.key());
        // ...and so do different relations
        let (e, _) = canonicalize(&Program::insert_consts("F", [3, 4])).expect("canonicalizes");
        assert_ne!(a.key(), e.key());
    }

    #[test]
    fn shape_is_constant_free() {
        let (t, b) = canonicalize(&Program::seq([
            Program::insert_consts("E", [1, 2]),
            Program::delete_consts("E", [3, 4]),
        ]))
        .expect("canonicalizes");
        assert_eq!(t.params(), 4);
        assert_eq!(b.len(), 4);
        for cond in t.shape().condition_formulas() {
            assert!(cond.constants_used().is_empty(), "constant left in {cond}");
        }
    }

    #[test]
    fn programs_with_placeholders_are_rejected() {
        // a placeholder smuggled into a "ground" program would collide
        // with the lifted indices and break the roundtrip invariant
        let p = Program::Insert {
            rel: "E".into(),
            tuple: vec![Term::param(0), Term::cst(5u64)],
        };
        assert!(matches!(canonicalize(&p), Err(TxError::Eval(_))));
        // ...also when nested in an Ω-application or a condition formula
        let nested = Program::Insert {
            rel: "E".into(),
            tuple: vec![Term::cst(1u64), Term::app("succ", [Term::param(0)])],
        };
        assert!(canonicalize(&nested).is_err());
        let cond = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: Formula::eq(Term::var("x"), Term::param(2)),
        };
        assert!(canonicalize(&cond).is_err());
        // ...and numeric placeholders in condition formulas
        let num = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: Formula::NumLe(NumTerm::Param(0), NumTerm::Max),
        };
        assert!(canonicalize(&num).is_err());
    }

    /// Numeric literals in condition formulas are value-normalized into the
    /// same binding vector as element constants, in one occurrence order —
    /// so guards differing only in a counting threshold share a shape.
    #[test]
    fn numeric_literals_lift_into_the_shared_binding_vector() {
        let guarded = |n: u64, e: u64| Program::If {
            cond: Formula::count_ge(
                NumTerm::Lit(n),
                "x",
                Formula::rel("E", [Term::var("x"), Term::cst(e)]),
            ),
            then_p: Box::new(Program::insert_consts("E", [7, 8])),
            else_p: Box::new(Program::Skip),
        };
        roundtrips(&guarded(2, 4));
        let (a, ba) = canonicalize(&guarded(2, 4)).expect("canonicalizes");
        let (b, bb) = canonicalize(&guarded(9, 5)).expect("canonicalizes");
        assert_eq!(a, b, "thresholds no longer split shapes");
        assert_eq!(ba, vec![Elem(2), Elem(4), Elem(7), Elem(8)]);
        assert_eq!(bb, vec![Elem(9), Elem(5), Elem(7), Elem(8)]);
        // the shape carries a numeric placeholder where the threshold was
        match a.shape() {
            Program::If { cond, .. } => match cond {
                Formula::CountGe(i, _, _) => assert_eq!(i, &NumTerm::Param(0)),
                other => panic!("expected CountGe, got {other}"),
            },
            other => panic!("expected If, got {other:?}"),
        }
        // `1#` and `max#` are structural and stay in place; repeated numeric
        // literals lift positionally, like repeated element constants
        let structural = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: Formula::and([
                Formula::NumLe(NumTerm::One, NumTerm::Max),
                Formula::NumEq(NumTerm::Lit(3), NumTerm::Lit(3)),
            ]),
        };
        roundtrips(&structural);
        let (t, bs) = canonicalize(&structural).expect("canonicalizes");
        assert_eq!(bs, vec![Elem(3), Elem(3)]);
        // the durable-log path accepts numeric placeholders too
        let rebuilt = Template::from_shape(t.shape().clone()).expect("rebuilds");
        assert_eq!(rebuilt, t);
        // the instantiation is the canonical (α-renamed) spelling
        assert_eq!(
            canonicalize(&rebuilt.instantiate(&bs).expect("instantiates")).expect("canonicalizes"),
            (t, bs)
        );
    }

    /// α-equivalent programs — differing only in how their binders are
    /// spelled — canonicalize to one shape, for statement binders and for
    /// quantified condition variables alike. This is what keeps a guard
    /// cache from splitting per client naming convention.
    #[test]
    fn alpha_equivalent_programs_share_a_shape() {
        // statement binders: delete E where (x,y): x = 3  vs  (a,b): a = 7
        let delete = |u: &str, v: &str, k: u64| Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new(u), Var::new(v)],
            cond: Formula::eq(Term::var(u), Term::cst(k)),
        };
        roundtrips(&delete("x", "y", 3));
        let (a, ba) = canonicalize(&delete("x", "y", 3)).expect("canonicalizes");
        let (b, bb) = canonicalize(&delete("a", "b", 7)).expect("canonicalizes");
        assert_eq!(a, b, "binder spelling no longer splits shapes");
        assert_eq!(ba, vec![Elem(3)]);
        assert_eq!(bb, vec![Elem(7)]);
        // quantified condition variables: If (exists x. E(x,5)) vs (exists q. E(q,9))
        let guarded = |name: &str, k: u64| Program::If {
            cond: Formula::exists(name, Formula::rel("E", [Term::var(name), Term::cst(k)])),
            then_p: Box::new(Program::insert_consts("E", [1, 2])),
            else_p: Box::new(Program::Skip),
        };
        roundtrips(&guarded("x", 5));
        let (c, _) = canonicalize(&guarded("x", 5)).expect("canonicalizes");
        let (d, _) = canonicalize(&guarded("q", 9)).expect("canonicalizes");
        assert_eq!(c, d, "quantifier spelling no longer splits shapes");
        // ...and the two renamings compose in one statement
        let both = |u: &str, w: &str| Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new(u), Var::new("y2")],
            cond: Formula::exists(w, Formula::rel("E", [Term::var(u), Term::var(w)])),
        };
        roundtrips(&both("x", "z"));
        let (e, _) = canonicalize(&both("x", "z")).expect("canonicalizes");
        let (f, _) = canonicalize(&both("p", "q")).expect("canonicalizes");
        assert_eq!(e, f);
    }

    /// The capture bail-outs: renaming is skipped (not botched) when a
    /// canonical name is already taken or binders repeat.
    #[test]
    fn alpha_renaming_bails_out_rather_than_capture() {
        // `v1` is free in the condition but is NOT one of the binders:
        // renaming y→v1 would conflate it with the free v1.
        let clash = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: Formula::rel("E", [Term::var("x"), Term::var("v1")]),
        };
        let (t, _) = canonicalize(&clash).expect("canonicalizes");
        match t.shape() {
            Program::DeleteWhere { vars, .. } => {
                assert_eq!(vars, &[Var::new("x"), Var::new("y")], "rename skipped");
            }
            other => panic!("expected DeleteWhere, got {other:?}"),
        }
        roundtrips(&clash);
        // duplicate binders: positional renaming would decouple the two
        // occurrences, so the spelling stays.
        let dup = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("x")],
            cond: Formula::eq(Term::var("x"), Term::cst(3u64)),
        };
        let (t, _) = canonicalize(&dup).expect("canonicalizes");
        match t.shape() {
            Program::DeleteWhere { vars, .. } => {
                assert_eq!(vars, &[Var::new("x"), Var::new("x")], "rename skipped");
            }
            other => panic!("expected DeleteWhere, got {other:?}"),
        }
        roundtrips(&dup);
    }

    /// `from_shape` (the durable-log path) accepts exactly the shapes
    /// `canonicalize` produces and rejects gappy placeholder sets.
    #[test]
    fn from_shape_reconstructs_templates() {
        for p in [
            Program::insert_consts("E", [3, 4]),
            Program::delete_consts("E", [0, 7]),
            Program::seq([
                Program::insert_consts("E", [1, 2]),
                Program::delete_consts("F", [3, 4]),
            ]),
        ] {
            let (t, b) = canonicalize(&p).expect("canonicalizes");
            let rebuilt = Template::from_shape(t.shape().clone()).expect("rebuilds");
            assert_eq!(rebuilt, t);
            // instantiation is the canonical spelling of `p`
            assert_eq!(
                canonicalize(&rebuilt.instantiate(&b).expect("instantiates"))
                    .expect("canonicalizes"),
                (t, b)
            );
        }
        // ?1 without ?0: instantiation would silently skip a binding
        let gappy = Program::Insert {
            rel: "E".into(),
            tuple: vec![Term::param(1), Term::param(1)],
        };
        assert!(matches!(Template::from_shape(gappy), Err(TxError::Eval(_))));
    }

    #[test]
    fn binding_arity_is_checked() {
        let (t, _) = canonicalize(&Program::insert_consts("E", [1, 2])).expect("canonicalizes");
        assert!(matches!(t.instantiate(&[Elem(1)]), Err(TxError::Eval(_))));
        assert!(matches!(
            t.instantiate(&[Elem(1), Elem(2), Elem(3)]),
            Err(TxError::Eval(_))
        ));
    }

    #[test]
    fn shape_footprints_match_ground_footprints() {
        let p = Program::seq([
            Program::insert_consts("E", [1, 2]),
            Program::delete_consts("F", [3, 4]),
        ]);
        let (t, _) = canonicalize(&p).expect("canonicalizes");
        assert_eq!(t.shape().touched_relations(), p.touched_relations());
        assert_eq!(t.shape().read_relations(), p.read_relations());
        assert_eq!(t.shape().enumerates_domain(), p.enumerates_domain());
    }

    #[test]
    fn templates_cross_threads() {
        fn assert_bounds<T: Send + Sync + Clone + 'static>() {}
        assert_bounds::<Template>();
    }
}
