//! While-programs over relation variables.
//!
//! Section 2 contrasts weakest preconditions for databases with those "for
//! a simple while loop language" in general program verification [6, 9];
//! and Theorem B applies to *any* transaction language expressing
//! transitive closure — in particular to this one, the classical
//! `while`-language of Abiteboul–Vianu ([1], "while queries"): relation
//! variables, RA assignments, and a loop that runs until the state stops
//! changing.

use crate::algebra::RaExpr;
use crate::traits::{normalize_domain, Transaction, TxError};
use vpdt_logic::Schema;
use vpdt_structure::Database;

/// A statement of the while-language.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `X := e` — assign an RA expression (over base relations and relation
    /// variables) to a relation variable.
    Assign(String, RaExpr),
    /// Run the body until the whole state (all relation variables) is
    /// unchanged by an iteration.
    WhileChange(Vec<Stmt>),
}

/// A while-program: relation variables with arities, a body, and an output
/// mapping from variables to base relations.
#[derive(Clone, Debug)]
pub struct WhileProgram {
    label: String,
    vars: Vec<(String, usize)>,
    body: Vec<Stmt>,
    outputs: Vec<(String, String)>, // (variable, target base relation)
    max_iterations: usize,
}

impl WhileProgram {
    /// Builds a program. `max_iterations` bounds every loop (while-programs
    /// need not terminate; the bound turns divergence into
    /// [`TxError::ResourceLimit`]).
    pub fn new(
        label: impl Into<String>,
        vars: impl IntoIterator<Item = (impl Into<String>, usize)>,
        body: Vec<Stmt>,
        outputs: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
        max_iterations: usize,
    ) -> Self {
        WhileProgram {
            label: label.into(),
            vars: vars.into_iter().map(|(n, a)| (n.into(), a)).collect(),
            body,
            outputs: outputs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
            max_iterations,
        }
    }

    fn extended_schema(&self, base: &Schema) -> Schema {
        base.extended(self.vars.iter().map(|(n, a)| (n.clone(), *a)))
    }

    fn run_body(&self, stmts: &[Stmt], state: &mut Database) -> Result<(), TxError> {
        for s in stmts {
            match s {
                Stmt::Assign(var, expr) => {
                    let tuples = expr.eval(state)?;
                    let old: Vec<Vec<vpdt_logic::Elem>> = state.rel(var).iter().cloned().collect();
                    for t in old {
                        state.remove(var, &t);
                    }
                    for t in tuples {
                        state.insert(var, t);
                    }
                }
                Stmt::WhileChange(body) => {
                    let mut iterations = 0;
                    loop {
                        let before = state.clone();
                        self.run_body(body, state)?;
                        if *state == before {
                            break;
                        }
                        iterations += 1;
                        if iterations > self.max_iterations {
                            return Err(TxError::ResourceLimit(format!(
                                "while loop exceeded {} iterations",
                                self.max_iterations
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Transaction for WhileProgram {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        let mut state = db.with_schema(self.extended_schema(db.schema()));
        self.run_body(&self.body, &mut state)?;
        let mut out = db.clone();
        for (var, target) in &self.outputs {
            let old: Vec<Vec<vpdt_logic::Elem>> = out.rel(target).iter().cloned().collect();
            for t in old {
                out.remove(target, &t);
            }
            for t in state.rel(var).iter() {
                out.insert(target, t.clone());
            }
        }
        Ok(normalize_domain(out))
    }
}

/// Transitive closure as a while-program:
///
/// ```text
/// T := E;
/// while change { T := T ∪ π₀,₃(σ₁=₂(T × E)) }
/// output E := T
/// ```
pub fn tc_while() -> WhileProgram {
    use crate::algebra::SelPred;
    let step = RaExpr::rel("T").union(
        RaExpr::rel("T")
            .product(RaExpr::rel("E"))
            .select(SelPred::EqCols(1, 2))
            .project([0, 3]),
    );
    WhileProgram::new(
        "tc-while",
        [("T", 2usize)],
        vec![
            Stmt::Assign("T".into(), RaExpr::rel("E")),
            Stmt::WhileChange(vec![Stmt::Assign("T".into(), step)]),
        ],
        [("T", "E")],
        10_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_structure::{families, Graph};

    #[test]
    fn tc_while_matches_graph_tc() {
        for db in [families::chain(5), families::cycle(4), families::gnm(2, 3)] {
            let out = tc_while().apply(&db).expect("applies");
            let expect: std::collections::BTreeSet<_> = Graph::of_edges(&db)
                .transitive_closure()
                .into_iter()
                .collect();
            let got: std::collections::BTreeSet<_> = out.edges().into_iter().collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn divergence_is_bounded() {
        // a loop that flips E between two values never stabilizes
        use crate::algebra::SelPred;
        let flip = RaExpr::rel("T")
            .diff(RaExpr::rel("T").select(SelPred::EqCols(0, 0)))
            .union(RaExpr::rel("E").diff(RaExpr::rel("T")));
        let p = WhileProgram::new(
            "flip",
            [("T", 2usize)],
            vec![Stmt::WhileChange(vec![Stmt::Assign("T".into(), flip)])],
            [("T", "E")],
            10,
        );
        let r = p.apply(&families::chain(3));
        assert!(matches!(r, Err(TxError::ResourceLimit(_))));
    }

    #[test]
    fn straight_line_assignment() {
        let p = WhileProgram::new(
            "reverse",
            [("T", 2usize)],
            vec![Stmt::Assign("T".into(), RaExpr::rel("E").project([1, 0]))],
            [("T", "E")],
            10,
        );
        let out = p.apply(&families::chain(3)).expect("applies");
        assert!(out.contains("E", &[vpdt_logic::Elem(1), vpdt_logic::Elem(0)]));
        assert_eq!(out.rel("E").len(), 2);
    }
}
