//! First-order update programs — the transaction language of Qian [32]
//! as used by the paper (insertions, deletions, assignments, sequencing,
//! conditionals), with direct operational semantics.
//!
//! Every program here admits prerelations over FOc(Ω) (Proposition 3);
//! the compiler lives in `vpdt-core::prerelations`, and the equivalence of
//! the two semantics is property-tested there.

use crate::traits::{normalize_domain, Transaction, TxError};
use vpdt_eval::{eval, eval_term, holds, Env, Omega};
use vpdt_logic::{Formula, Term, Var};
use vpdt_structure::Database;

/// An update program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Program {
    /// Does nothing.
    Skip,
    /// Inserts the tuple of ground terms into a relation.
    Insert {
        /// Target relation.
        rel: String,
        /// Ground terms (constants or Ω-applications over constants).
        tuple: Vec<Term>,
    },
    /// Deletes every tuple `x̄` of `rel` with `D ⊨ cond(x̄)`.
    DeleteWhere {
        /// Target relation.
        rel: String,
        /// The tuple variables, one per column.
        vars: Vec<Var>,
        /// Deletion condition; free variables ⊆ `vars`.
        cond: Formula,
    },
    /// Inserts every tuple `x̄ ∈ dom(D)^n` with `D ⊨ cond(x̄)` into `rel`.
    InsertWhere {
        /// Target relation.
        rel: String,
        /// The tuple variables, one per column.
        vars: Vec<Var>,
        /// Insertion condition; free variables ⊆ `vars`.
        cond: Formula,
    },
    /// Replaces `rel` wholesale: `rel := {x̄ ∈ dom(D)^n | D ⊨ body(x̄)}`.
    Assign {
        /// Target relation.
        rel: String,
        /// The tuple variables, one per column.
        vars: Vec<Var>,
        /// Membership condition over the *old* state.
        body: Formula,
    },
    /// Runs the sub-programs in order (each sees its predecessor's output).
    Seq(Vec<Program>),
    /// Conditional on a sentence over the current state.
    If {
        /// The guard sentence.
        cond: Formula,
        /// Taken when the guard holds.
        then_p: Box<Program>,
        /// Taken otherwise.
        else_p: Box<Program>,
    },
}

impl Program {
    /// Sequencing helper.
    pub fn seq(ps: impl IntoIterator<Item = Program>) -> Self {
        Program::Seq(ps.into_iter().collect())
    }

    /// Insertion of a constant tuple.
    pub fn insert_consts(rel: impl Into<String>, tuple: impl IntoIterator<Item = u64>) -> Self {
        Program::Insert {
            rel: rel.into(),
            tuple: tuple.into_iter().map(Term::cst).collect(),
        }
    }

    /// Deletion of one constant tuple.
    pub fn delete_consts(rel: impl Into<String>, tuple: impl IntoIterator<Item = u64>) -> Self {
        let tuple: Vec<u64> = tuple.into_iter().collect();
        let vars: Vec<Var> = (0..tuple.len())
            .map(|i| Var::new(format!("d{i}")))
            .collect();
        let cond = Formula::and(
            vars.iter()
                .zip(tuple.iter())
                .map(|(v, c)| Formula::eq(Term::Var(v.clone()), Term::cst(*c))),
        );
        Program::DeleteWhere {
            rel: rel.into(),
            vars,
            cond,
        }
    }

    /// Applies the program to a database state (domain evolves with inserts
    /// but is *not* normalized — [`Transaction::apply`] on
    /// [`ProgramTransaction`] does the final normalization).
    pub fn run(&self, db: &Database, omega: &Omega) -> Result<Database, TxError> {
        match self {
            Program::Skip => Ok(db.clone()),
            Program::Insert { rel, tuple } => {
                let env = Env::new();
                let mut vals = Vec::with_capacity(tuple.len());
                for t in tuple {
                    if !t.is_ground() {
                        return Err(TxError::Eval(format!(
                            "insert tuple must be ground, found {t}"
                        )));
                    }
                    vals.push(eval_term(omega, t, &env)?);
                }
                let mut out = db.clone();
                out.insert(rel, vals);
                Ok(out)
            }
            Program::DeleteWhere { rel, vars, cond } => {
                check_cond(vars, cond)?;
                let mut out = db.clone();
                let tuples: Vec<Vec<vpdt_logic::Elem>> = db.rel(rel).iter().cloned().collect();
                for t in tuples {
                    let mut env = Env::new();
                    for (v, e) in vars.iter().zip(t.iter()) {
                        env.push_elem(v.clone(), *e);
                    }
                    if eval(db, omega, cond, &mut env)? {
                        out.remove(rel, &t);
                    }
                }
                Ok(out)
            }
            Program::InsertWhere { rel, vars, cond } => {
                check_cond(vars, cond)?;
                let mut out = db.clone();
                for t in all_tuples(db, vars.len()) {
                    let mut env = Env::new();
                    for (v, e) in vars.iter().zip(t.iter()) {
                        env.push_elem(v.clone(), *e);
                    }
                    if eval(db, omega, cond, &mut env)? {
                        out.insert(rel, t);
                    }
                }
                Ok(out)
            }
            Program::Assign { rel, vars, body } => {
                check_cond(vars, body)?;
                let mut out = db.clone();
                let old: Vec<Vec<vpdt_logic::Elem>> = db.rel(rel).iter().cloned().collect();
                for t in old {
                    out.remove(rel, &t);
                }
                for t in all_tuples(db, vars.len()) {
                    let mut env = Env::new();
                    for (v, e) in vars.iter().zip(t.iter()) {
                        env.push_elem(v.clone(), *e);
                    }
                    if eval(db, omega, body, &mut env)? {
                        out.insert(rel, t);
                    }
                }
                Ok(out)
            }
            Program::Seq(ps) => {
                let mut cur = db.clone();
                for p in ps {
                    cur = p.run(&cur, omega)?;
                }
                Ok(cur)
            }
            Program::If {
                cond,
                then_p,
                else_p,
            } => {
                if !cond.is_sentence() {
                    return Err(TxError::Eval("if-guard must be a sentence".to_string()));
                }
                if holds(db, omega, cond)? {
                    then_p.run(db, omega)
                } else {
                    else_p.run(db, omega)
                }
            }
        }
    }

    /// All relations this program may modify.
    pub fn touched_relations(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_touched(&mut out);
        out
    }

    fn collect_touched(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Program::Skip => {}
            Program::Insert { rel, .. }
            | Program::DeleteWhere { rel, .. }
            | Program::InsertWhere { rel, .. }
            | Program::Assign { rel, .. } => {
                out.insert(rel.clone());
            }
            Program::Seq(ps) => {
                for p in ps {
                    p.collect_touched(out);
                }
            }
            Program::If { then_p, else_p, .. } => {
                then_p.collect_touched(out);
                else_p.collect_touched(out);
            }
        }
    }

    /// All relations whose *old* contents the program's semantics consults:
    /// relations mentioned by conditions, plus the target relations of
    /// updates that rewrite existing tuples. A sound superset — `Seq` is
    /// approximated by the union over its steps.
    pub fn read_relations(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Program::Skip | Program::Insert { .. } => {}
            Program::DeleteWhere { rel, cond, .. } | Program::InsertWhere { rel, cond, .. } => {
                out.insert(rel.clone());
                out.extend(cond.relations_used());
            }
            Program::Assign { body, .. } => {
                out.extend(body.relations_used());
            }
            Program::Seq(ps) => {
                for p in ps {
                    p.collect_reads(out);
                }
            }
            Program::If {
                cond,
                then_p,
                else_p,
            } => {
                out.extend(cond.relations_used());
                then_p.collect_reads(out);
                else_p.collect_reads(out);
            }
        }
    }

    /// Every condition formula the program evaluates, in syntactic order
    /// (deletion/insertion conditions, assignment bodies, `if` guards).
    pub fn condition_formulas(&self) -> Vec<&Formula> {
        let mut out = Vec::new();
        self.collect_conditions(&mut out);
        out
    }

    fn collect_conditions<'a>(&'a self, out: &mut Vec<&'a Formula>) {
        match self {
            Program::Skip | Program::Insert { .. } => {}
            Program::DeleteWhere { cond, .. } | Program::InsertWhere { cond, .. } => {
                out.push(cond);
            }
            Program::Assign { body, .. } => out.push(body),
            Program::Seq(ps) => {
                for p in ps {
                    p.collect_conditions(out);
                }
            }
            Program::If {
                cond,
                then_p,
                else_p,
            } => {
                out.push(cond);
                then_p.collect_conditions(out);
                else_p.collect_conditions(out);
            }
        }
    }

    /// Whether some step enumerates candidate tuples over the whole domain
    /// (`InsertWhere` and `Assign` range over `dom(D)^n`, so their output
    /// depends on the domain, not only on relation contents).
    pub fn enumerates_domain(&self) -> bool {
        match self {
            Program::Skip | Program::Insert { .. } | Program::DeleteWhere { .. } => false,
            Program::InsertWhere { .. } | Program::Assign { .. } => true,
            Program::Seq(ps) => ps.iter().any(Program::enumerates_domain),
            Program::If { then_p, else_p, .. } => {
                then_p.enumerates_domain() || else_p.enumerates_domain()
            }
        }
    }
}

fn check_cond(vars: &[Var], cond: &Formula) -> Result<(), TxError> {
    for fv in cond.free_vars() {
        if !vars.contains(&fv) {
            return Err(TxError::Eval(format!(
                "condition has stray free variable {fv}"
            )));
        }
    }
    Ok(())
}

fn all_tuples(db: &Database, arity: usize) -> Vec<Vec<vpdt_logic::Elem>> {
    let dom: Vec<vpdt_logic::Elem> = db.domain().iter().copied().collect();
    let mut out = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * dom.len());
        for t in &out {
            for e in &dom {
                let mut t2 = t.clone();
                t2.push(*e);
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

/// A [`Transaction`] wrapper around a program and an Ω interpretation.
#[derive(Clone, Debug)]
pub struct ProgramTransaction {
    label: String,
    program: Program,
    omega: Omega,
}

impl ProgramTransaction {
    /// Wraps a program with an interpretation of its Ω symbols.
    pub fn new(label: impl Into<String>, program: Program, omega: Omega) -> Self {
        ProgramTransaction {
            label: label.into(),
            program,
            omega,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The Ω interpretation.
    pub fn omega(&self) -> &Omega {
        &self.omega
    }
}

impl Transaction for ProgramTransaction {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        Ok(normalize_domain(self.program.run(db, &self.omega)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::parse_formula;
    use vpdt_structure::families;

    fn pt(p: Program) -> ProgramTransaction {
        ProgramTransaction::new("test", p, Omega::empty())
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let db = families::chain(3);
        let ins = pt(Program::insert_consts("E", [7, 8]));
        let out = ins.apply(&db).expect("applies");
        assert!(out.contains("E", &[vpdt_logic::Elem(7), vpdt_logic::Elem(8)]));
        let del = pt(Program::delete_consts("E", [7, 8]));
        let back = del.apply(&out).expect("applies");
        assert_eq!(back, db);
    }

    #[test]
    fn delete_where_condition() {
        // delete loops
        let mut db = families::chain(3);
        db.insert("E", vec![vpdt_logic::Elem(1), vpdt_logic::Elem(1)]);
        let p = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: parse_formula("x = y").expect("parses"),
        };
        let out = pt(p).apply(&db).expect("applies");
        assert_eq!(out, families::chain(3));
    }

    #[test]
    fn insert_where_adds_reverse_edges() {
        let db = families::chain(3);
        let p = Program::InsertWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: parse_formula("E(y, x)").expect("parses"),
        };
        let out = pt(p).apply(&db).expect("applies");
        assert_eq!(out.rel("E").len(), 4);
        assert!(out.contains("E", &[vpdt_logic::Elem(1), vpdt_logic::Elem(0)]));
    }

    #[test]
    fn assign_replaces_wholesale() {
        let db = families::chain(4);
        // E := complete loopless graph (T2 in program form)
        let p = Program::Assign {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            body: parse_formula("x != y").expect("parses"),
        };
        let out = pt(p).apply(&db).expect("applies");
        assert_eq!(out, families::complete_loopless(4));
    }

    #[test]
    fn sequence_threads_state() {
        let db = Database::graph([(0, 1)]);
        let p = Program::seq([
            Program::insert_consts("E", [1, 2]),
            // now delete the original edge; the insert must survive
            Program::delete_consts("E", [0, 1]),
        ]);
        let out = pt(p).apply(&db).expect("applies");
        assert_eq!(
            out.edges(),
            vec![(vpdt_logic::Elem(1), vpdt_logic::Elem(2))]
        );
    }

    #[test]
    fn conditional_branches() {
        let guard = parse_formula("exists x. E(x, x)").expect("parses");
        let p = Program::If {
            cond: guard,
            then_p: Box::new(Program::delete_consts("E", [0, 0])),
            else_p: Box::new(Program::insert_consts("E", [0, 0])),
        };
        let with_loop = Database::graph([(0, 0), (0, 1)]);
        let removed = pt(p.clone()).apply(&with_loop).expect("applies");
        assert!(!removed.contains("E", &[vpdt_logic::Elem(0), vpdt_logic::Elem(0)]));
        let without = Database::graph([(0, 1)]);
        let added = pt(p).apply(&without).expect("applies");
        assert!(added.contains("E", &[vpdt_logic::Elem(0), vpdt_logic::Elem(0)]));
    }

    #[test]
    fn footprints_cover_reads_and_writes() {
        let p = Program::seq([
            Program::insert_consts("E", [1, 2]),
            Program::If {
                cond: parse_formula("exists x. A(x)").expect("parses"),
                then_p: Box::new(Program::DeleteWhere {
                    rel: "E".into(),
                    vars: vec![Var::new("x"), Var::new("y")],
                    cond: parse_formula("B(x)").expect("parses"),
                }),
                else_p: Box::new(Program::Skip),
            },
        ]);
        let writes: Vec<_> = p.touched_relations().into_iter().collect();
        assert_eq!(writes, ["E"]);
        let reads: Vec<_> = p.read_relations().into_iter().collect();
        assert_eq!(reads, ["A", "B", "E"]);
        assert_eq!(p.condition_formulas().len(), 2);
        assert!(!p.enumerates_domain());
        assert!(Program::Assign {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            body: Formula::True,
        }
        .enumerates_domain());
    }

    /// Programs and compiled transactions cross worker threads in
    /// `vpdt-store`; these bounds are load-bearing, not incidental.
    #[test]
    fn programs_are_send_sync_clone() {
        fn assert_bounds<T: Send + Sync + Clone + 'static>() {}
        assert_bounds::<Program>();
        assert_bounds::<ProgramTransaction>();
    }

    #[test]
    fn stray_free_variables_rejected() {
        let p = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: parse_formula("E(x, z)").expect("parses"),
        };
        assert!(matches!(
            pt(p).apply(&families::chain(2)),
            Err(TxError::Eval(_))
        ));
    }

    #[test]
    fn omega_functions_in_inserts() {
        let p = Program::Insert {
            rel: "E".into(),
            tuple: vec![Term::cst(1u64), Term::app("succ", [Term::cst(1u64)])],
        };
        let tx = ProgramTransaction::new("succ-insert", p, Omega::arithmetic());
        let out = tx.apply(&Database::graph([])).expect("applies");
        assert!(out.contains("E", &[vpdt_logic::Elem(1), vpdt_logic::Elem(2)]));
    }

    #[test]
    fn touched_relations_collected() {
        let p = Program::seq([
            Program::insert_consts("E", [0, 1]),
            Program::If {
                cond: Formula::True,
                then_p: Box::new(Program::Skip),
                else_p: Box::new(Program::delete_consts("E", [0, 1])),
            },
        ]);
        assert_eq!(
            p.touched_relations().into_iter().collect::<Vec<_>>(),
            vec!["E".to_string()]
        );
    }
}
