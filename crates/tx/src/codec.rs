//! A stable binary codec for programs, formulas and terms.
//!
//! The durable history log persists statement *templates* (shape id →
//! constant-free program) so that a cold audit — one that starts from
//! nothing but the files on disk — can re-derive every transaction's ground
//! program from its recorded `(shape, bindings)` provenance. Templates
//! contain arbitrary condition formulas, so this module gives the whole
//! `Program`/`Formula`/`Term` syntax a deterministic, self-delimiting
//! binary encoding:
//!
//! * integers are fixed-width little-endian (`u64`/`u32`), strings are
//!   `u32`-length-prefixed UTF-8, sequences are `u32`-count-prefixed;
//! * every enum variant is a one-byte tag;
//! * decoding is total: every failure is a typed [`CodecError`] with the
//!   byte offset where it happened, never a panic.
//!
//! The encoding is byte-deterministic (`encode(decode(encode(x))) ==
//! encode(x)`) — what the write-ahead log's checksums and the byte-for-byte
//! round-trip property tests rely on. No serde: the format is owned here,
//! versioned by the log that embeds it, and auditable with a hex dump.

use crate::program::Program;
use std::fmt;
use vpdt_logic::{Elem, Formula, FuncSym, NumTerm, PredSym, Term, Var};

/// A decoding failure: what went wrong and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value it promised.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
        /// What was being decoded.
        want: &'static str,
    },
    /// An enum tag byte is not one of the variants.
    BadTag {
        /// Byte offset of the offending tag.
        at: usize,
        /// Which enum was being decoded.
        what: &'static str,
        /// The tag found.
        tag: u8,
    },
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string's first byte.
        at: usize,
    },
    /// Decoding finished with unconsumed bytes (whole-buffer entry points).
    Trailing {
        /// Byte offset of the first unconsumed byte.
        at: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { at, want } => {
                write!(f, "input truncated at byte {at} while decoding {want}")
            }
            CodecError::BadTag { at, what, tag } => {
                write!(f, "invalid {what} tag {tag:#04x} at byte {at}")
            }
            CodecError::BadUtf8 { at } => write!(f, "invalid UTF-8 in string at byte {at}"),
            CodecError::Trailing { at } => {
                write!(f, "trailing bytes after value, starting at byte {at}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A byte reader with an explicit position, shared by every decoder here
/// (and by the store's write-ahead log for its record payloads).
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors unless the buffer is fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(CodecError::Trailing { at: self.pos })
        }
    }

    fn take(&mut self, n: usize, want: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated { at: self.pos, want });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one tag byte.
    pub fn u8(&mut self, want: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, want)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, want: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, want)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, want: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, want)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, want: &'static str) -> Result<String, CodecError> {
        let len = self.u32(want)? as usize;
        let at = self.pos;
        let bytes = self.take(len, want)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8 { at })
    }

    /// Reads a sequence count, bounded by what the remaining buffer could
    /// possibly hold (each element is ≥ 1 byte), so a corrupt count cannot
    /// drive a huge allocation.
    pub fn count(&mut self, want: &'static str) -> Result<usize, CodecError> {
        let n = self.u32(want)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(CodecError::Truncated { at: self.pos, want });
        }
        Ok(n)
    }
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// --- terms -----------------------------------------------------------------

const TERM_VAR: u8 = 0;
const TERM_CONST: u8 = 1;
const TERM_APP: u8 = 2;

/// Encodes a term.
pub fn encode_term(t: &Term, out: &mut Vec<u8>) {
    match t {
        Term::Var(v) => {
            out.push(TERM_VAR);
            put_str(out, v.name());
        }
        Term::Const(e) => {
            out.push(TERM_CONST);
            put_u64(out, e.0);
        }
        Term::App(f, args) => {
            out.push(TERM_APP);
            put_str(out, f.name());
            put_u32(out, args.len() as u32);
            for a in args {
                encode_term(a, out);
            }
        }
    }
}

/// Decodes a term.
pub fn decode_term(c: &mut Cursor<'_>) -> Result<Term, CodecError> {
    let at = c.pos();
    match c.u8("term tag")? {
        TERM_VAR => Ok(Term::Var(Var::new(c.str("variable name")?))),
        TERM_CONST => Ok(Term::Const(Elem(c.u64("constant")?))),
        TERM_APP => {
            let f = FuncSym::new(c.str("function symbol")?);
            let n = c.count("application arity")?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(decode_term(c)?);
            }
            Ok(Term::App(f, args))
        }
        tag => Err(CodecError::BadTag {
            at,
            what: "term",
            tag,
        }),
    }
}

// --- numeric terms ---------------------------------------------------------

const NUM_VAR: u8 = 0;
const NUM_ONE: u8 = 1;
const NUM_MAX: u8 = 2;
const NUM_LIT: u8 = 3;
const NUM_PARAM: u8 = 4;

fn encode_num_term(t: &NumTerm, out: &mut Vec<u8>) {
    match t {
        NumTerm::Var(v) => {
            out.push(NUM_VAR);
            put_str(out, v.name());
        }
        NumTerm::One => out.push(NUM_ONE),
        NumTerm::Max => out.push(NUM_MAX),
        NumTerm::Lit(n) => {
            out.push(NUM_LIT);
            put_u64(out, *n);
        }
        NumTerm::Param(i) => {
            out.push(NUM_PARAM);
            put_u64(out, *i as u64);
        }
    }
}

fn decode_num_term(c: &mut Cursor<'_>) -> Result<NumTerm, CodecError> {
    let at = c.pos();
    match c.u8("numeric term tag")? {
        NUM_VAR => Ok(NumTerm::Var(Var::new(c.str("numeric variable")?))),
        NUM_ONE => Ok(NumTerm::One),
        NUM_MAX => Ok(NumTerm::Max),
        NUM_LIT => Ok(NumTerm::Lit(c.u64("numeric literal")?)),
        NUM_PARAM => Ok(NumTerm::Param(c.u64("numeric placeholder")? as usize)),
        tag => Err(CodecError::BadTag {
            at,
            what: "numeric term",
            tag,
        }),
    }
}

// --- formulas --------------------------------------------------------------

const F_TRUE: u8 = 0;
const F_FALSE: u8 = 1;
const F_REL: u8 = 2;
const F_EQ: u8 = 3;
const F_PRED: u8 = 4;
const F_NOT: u8 = 5;
const F_AND: u8 = 6;
const F_OR: u8 = 7;
const F_IMPLIES: u8 = 8;
const F_IFF: u8 = 9;
const F_EXISTS: u8 = 10;
const F_FORALL: u8 = 11;
const F_COUNT_GE: u8 = 12;
const F_NUM_EXISTS: u8 = 13;
const F_NUM_FORALL: u8 = 14;
const F_NUM_LE: u8 = 15;
const F_NUM_EQ: u8 = 16;
const F_BIT: u8 = 17;

/// Encodes a formula.
pub fn encode_formula(f: &Formula, out: &mut Vec<u8>) {
    match f {
        Formula::True => out.push(F_TRUE),
        Formula::False => out.push(F_FALSE),
        Formula::Rel(r, ts) => {
            out.push(F_REL);
            put_str(out, r);
            put_u32(out, ts.len() as u32);
            for t in ts {
                encode_term(t, out);
            }
        }
        Formula::Eq(a, b) => {
            out.push(F_EQ);
            encode_term(a, out);
            encode_term(b, out);
        }
        Formula::Pred(p, ts) => {
            out.push(F_PRED);
            put_str(out, p.name());
            put_u32(out, ts.len() as u32);
            for t in ts {
                encode_term(t, out);
            }
        }
        Formula::Not(g) => {
            out.push(F_NOT);
            encode_formula(g, out);
        }
        Formula::And(gs) => {
            out.push(F_AND);
            put_u32(out, gs.len() as u32);
            for g in gs {
                encode_formula(g, out);
            }
        }
        Formula::Or(gs) => {
            out.push(F_OR);
            put_u32(out, gs.len() as u32);
            for g in gs {
                encode_formula(g, out);
            }
        }
        Formula::Implies(a, b) => {
            out.push(F_IMPLIES);
            encode_formula(a, out);
            encode_formula(b, out);
        }
        Formula::Iff(a, b) => {
            out.push(F_IFF);
            encode_formula(a, out);
            encode_formula(b, out);
        }
        Formula::Exists(v, g) => {
            out.push(F_EXISTS);
            put_str(out, v.name());
            encode_formula(g, out);
        }
        Formula::Forall(v, g) => {
            out.push(F_FORALL);
            put_str(out, v.name());
            encode_formula(g, out);
        }
        Formula::CountGe(n, v, g) => {
            out.push(F_COUNT_GE);
            encode_num_term(n, out);
            put_str(out, v.name());
            encode_formula(g, out);
        }
        Formula::NumExists(v, g) => {
            out.push(F_NUM_EXISTS);
            put_str(out, v.name());
            encode_formula(g, out);
        }
        Formula::NumForall(v, g) => {
            out.push(F_NUM_FORALL);
            put_str(out, v.name());
            encode_formula(g, out);
        }
        Formula::NumLe(a, b) => {
            out.push(F_NUM_LE);
            encode_num_term(a, out);
            encode_num_term(b, out);
        }
        Formula::NumEq(a, b) => {
            out.push(F_NUM_EQ);
            encode_num_term(a, out);
            encode_num_term(b, out);
        }
        Formula::Bit(a, b) => {
            out.push(F_BIT);
            encode_num_term(a, out);
            encode_num_term(b, out);
        }
    }
}

/// Decodes a formula.
pub fn decode_formula(c: &mut Cursor<'_>) -> Result<Formula, CodecError> {
    let at = c.pos();
    let tag = c.u8("formula tag")?;
    Ok(match tag {
        F_TRUE => Formula::True,
        F_FALSE => Formula::False,
        F_REL => {
            let r = c.str("relation name")?;
            let n = c.count("atom width")?;
            let mut ts = Vec::with_capacity(n);
            for _ in 0..n {
                ts.push(decode_term(c)?);
            }
            Formula::Rel(r, ts)
        }
        F_EQ => Formula::Eq(decode_term(c)?, decode_term(c)?),
        F_PRED => {
            let p = PredSym::new(c.str("predicate symbol")?);
            let n = c.count("predicate width")?;
            let mut ts = Vec::with_capacity(n);
            for _ in 0..n {
                ts.push(decode_term(c)?);
            }
            Formula::Pred(p, ts)
        }
        F_NOT => Formula::Not(Box::new(decode_formula(c)?)),
        F_AND | F_OR => {
            let n = c.count("connective width")?;
            let mut gs = Vec::with_capacity(n);
            for _ in 0..n {
                gs.push(decode_formula(c)?);
            }
            if tag == F_AND {
                Formula::And(gs)
            } else {
                Formula::Or(gs)
            }
        }
        F_IMPLIES => Formula::Implies(Box::new(decode_formula(c)?), Box::new(decode_formula(c)?)),
        F_IFF => Formula::Iff(Box::new(decode_formula(c)?), Box::new(decode_formula(c)?)),
        F_EXISTS => Formula::Exists(
            Var::new(c.str("bound variable")?),
            Box::new(decode_formula(c)?),
        ),
        F_FORALL => Formula::Forall(
            Var::new(c.str("bound variable")?),
            Box::new(decode_formula(c)?),
        ),
        F_COUNT_GE => {
            let n = decode_num_term(c)?;
            let v = Var::new(c.str("bound variable")?);
            Formula::CountGe(n, v, Box::new(decode_formula(c)?))
        }
        F_NUM_EXISTS => Formula::NumExists(
            Var::new(c.str("bound variable")?),
            Box::new(decode_formula(c)?),
        ),
        F_NUM_FORALL => Formula::NumForall(
            Var::new(c.str("bound variable")?),
            Box::new(decode_formula(c)?),
        ),
        F_NUM_LE => Formula::NumLe(decode_num_term(c)?, decode_num_term(c)?),
        F_NUM_EQ => Formula::NumEq(decode_num_term(c)?, decode_num_term(c)?),
        F_BIT => Formula::Bit(decode_num_term(c)?, decode_num_term(c)?),
        tag => {
            return Err(CodecError::BadTag {
                at,
                what: "formula",
                tag,
            })
        }
    })
}

// --- programs --------------------------------------------------------------

const P_SKIP: u8 = 0;
const P_INSERT: u8 = 1;
const P_DELETE_WHERE: u8 = 2;
const P_INSERT_WHERE: u8 = 3;
const P_ASSIGN: u8 = 4;
const P_SEQ: u8 = 5;
const P_IF: u8 = 6;

fn put_vars(out: &mut Vec<u8>, vars: &[Var]) {
    put_u32(out, vars.len() as u32);
    for v in vars {
        put_str(out, v.name());
    }
}

fn get_vars(c: &mut Cursor<'_>) -> Result<Vec<Var>, CodecError> {
    let n = c.count("variable list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Var::new(c.str("variable name")?));
    }
    Ok(out)
}

/// Encodes a program into `out` (appending; self-delimiting).
pub fn encode_program(p: &Program, out: &mut Vec<u8>) {
    match p {
        Program::Skip => out.push(P_SKIP),
        Program::Insert { rel, tuple } => {
            out.push(P_INSERT);
            put_str(out, rel);
            put_u32(out, tuple.len() as u32);
            for t in tuple {
                encode_term(t, out);
            }
        }
        Program::DeleteWhere { rel, vars, cond } => {
            out.push(P_DELETE_WHERE);
            put_str(out, rel);
            put_vars(out, vars);
            encode_formula(cond, out);
        }
        Program::InsertWhere { rel, vars, cond } => {
            out.push(P_INSERT_WHERE);
            put_str(out, rel);
            put_vars(out, vars);
            encode_formula(cond, out);
        }
        Program::Assign { rel, vars, body } => {
            out.push(P_ASSIGN);
            put_str(out, rel);
            put_vars(out, vars);
            encode_formula(body, out);
        }
        Program::Seq(ps) => {
            out.push(P_SEQ);
            put_u32(out, ps.len() as u32);
            for q in ps {
                encode_program(q, out);
            }
        }
        Program::If {
            cond,
            then_p,
            else_p,
        } => {
            out.push(P_IF);
            encode_formula(cond, out);
            encode_program(then_p, out);
            encode_program(else_p, out);
        }
    }
}

/// Decodes one program from the cursor (not necessarily consuming all input
/// — programs are self-delimiting; use [`decode_program_exact`] for
/// whole-buffer decoding).
pub fn decode_program(c: &mut Cursor<'_>) -> Result<Program, CodecError> {
    let at = c.pos();
    match c.u8("program tag")? {
        P_SKIP => Ok(Program::Skip),
        P_INSERT => {
            let rel = c.str("relation name")?;
            let n = c.count("insert tuple width")?;
            let mut tuple = Vec::with_capacity(n);
            for _ in 0..n {
                tuple.push(decode_term(c)?);
            }
            Ok(Program::Insert { rel, tuple })
        }
        P_DELETE_WHERE => Ok(Program::DeleteWhere {
            rel: c.str("relation name")?,
            vars: get_vars(c)?,
            cond: decode_formula(c)?,
        }),
        P_INSERT_WHERE => Ok(Program::InsertWhere {
            rel: c.str("relation name")?,
            vars: get_vars(c)?,
            cond: decode_formula(c)?,
        }),
        P_ASSIGN => Ok(Program::Assign {
            rel: c.str("relation name")?,
            vars: get_vars(c)?,
            body: decode_formula(c)?,
        }),
        P_SEQ => {
            let n = c.count("sequence length")?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(decode_program(c)?);
            }
            Ok(Program::Seq(ps))
        }
        P_IF => Ok(Program::If {
            cond: decode_formula(c)?,
            then_p: Box::new(decode_program(c)?),
            else_p: Box::new(decode_program(c)?),
        }),
        tag => Err(CodecError::BadTag {
            at,
            what: "program",
            tag,
        }),
    }
}

/// Encodes a program into a fresh buffer.
pub fn program_to_bytes(p: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    encode_program(p, &mut out);
    out
}

/// Decodes a program that must occupy the whole buffer.
pub fn decode_program_exact(bytes: &[u8]) -> Result<Program, CodecError> {
    let mut c = Cursor::new(bytes);
    let p = decode_program(&mut c)?;
    c.finish()?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::parse_formula;

    fn menu() -> Vec<Program> {
        vec![
            Program::Skip,
            Program::insert_consts("E", [3, 4]),
            Program::delete_consts("E", [0, 7]),
            Program::Insert {
                rel: "E".into(),
                tuple: vec![Term::param(0), Term::app("succ", [Term::param(1)])],
            },
            Program::seq([
                Program::insert_consts("E", [1, 2]),
                Program::If {
                    cond: parse_formula("exists x. E(x, 5)").expect("parses"),
                    then_p: Box::new(Program::delete_consts("E", [5, 5])),
                    else_p: Box::new(Program::Skip),
                },
            ]),
            Program::Assign {
                rel: "R0".into(),
                vars: vec![Var::new("x"), Var::new("y")],
                body: parse_formula("x != y & (R0(x, y) | R0(y, x))").expect("parses"),
            },
            Program::InsertWhere {
                rel: "E".into(),
                vars: vec![Var::new("x"), Var::new("y")],
                cond: Formula::CountGe(
                    NumTerm::Lit(2),
                    Var::new("z"),
                    Box::new(parse_formula("E(x, z) & E(z, y)").expect("parses")),
                ),
            },
            // a template shape with a lifted counting threshold
            Program::DeleteWhere {
                rel: "E".into(),
                vars: vec![Var::new("x"), Var::new("y")],
                cond: Formula::CountGe(
                    NumTerm::Param(0),
                    Var::new("z"),
                    Box::new(Formula::NumEq(NumTerm::Param(1), NumTerm::Max)),
                ),
            },
        ]
    }

    #[test]
    fn programs_roundtrip_byte_for_byte() {
        for p in menu() {
            let bytes = program_to_bytes(&p);
            let back = decode_program_exact(&bytes).expect("decodes");
            assert_eq!(back, p, "value roundtrip for {p:?}");
            assert_eq!(program_to_bytes(&back), bytes, "byte roundtrip for {p:?}");
        }
    }

    #[test]
    fn formulas_roundtrip_including_counting_syntax() {
        // counting constructs have no parseable concrete syntax, so the
        // binary codec is the only stable wire form they have
        let f = Formula::NumForall(
            Var::new("i"),
            Box::new(Formula::Implies(
                Box::new(Formula::NumLe(NumTerm::One, NumTerm::var("i"))),
                Box::new(Formula::Bit(NumTerm::var("i"), NumTerm::Max)),
            )),
        );
        let mut bytes = Vec::new();
        encode_formula(&f, &mut bytes);
        let mut c = Cursor::new(&bytes);
        let back = decode_formula(&mut c).expect("decodes");
        c.finish().expect("fully consumed");
        assert_eq!(back, f);
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_prefix() {
        let bytes = program_to_bytes(&menu()[4]);
        for cut in 0..bytes.len() {
            match decode_program_exact(&bytes[..cut]) {
                Err(CodecError::Truncated { .. }) => {}
                other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_tags_and_trailing_bytes_are_typed_errors() {
        assert!(matches!(
            decode_program_exact(&[250]),
            Err(CodecError::BadTag {
                what: "program",
                tag: 250,
                ..
            })
        ));
        let mut bytes = program_to_bytes(&Program::Skip);
        bytes.push(0);
        assert!(matches!(
            decode_program_exact(&bytes),
            Err(CodecError::Trailing { at: 1 })
        ));
        // a corrupt count cannot demand more elements than bytes remain
        let mut seq = vec![P_SEQ];
        put_u32(&mut seq, u32::MAX);
        assert!(matches!(
            decode_program_exact(&seq),
            Err(CodecError::Truncated { .. })
        ));
    }
}
