//! The recursive transactions of Theorem B as native [`Transaction`]s:
//! transitive closure, deterministic transitive closure, and
//! same-generation. Cross-checked against their Datalog¬ and while-language
//! definitions (three independent implementations of each semantics).

use crate::datalog::{dtc_program, sg_program, tc_program, DatalogTransaction, Strategy};
use crate::traits::{normalize_domain, Transaction, TxError};
use vpdt_structure::graph::graph_from_pairs;
use vpdt_structure::{Database, Graph};

/// `tc`: replaces `E` by its transitive closure; the node set is preserved
/// by the closure's own edges (every endpoint keeps at least one edge).
#[derive(Clone, Copy, Debug, Default)]
pub struct TcTransaction;

impl Transaction for TcTransaction {
    fn name(&self) -> String {
        "tc".into()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        let g = Graph::of_edges(db);
        Ok(normalize_domain(graph_from_pairs(
            db.domain().iter().copied(),
            g.transitive_closure(),
        )))
    }
}

/// `dtc`: deterministic transitive closure (Section 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct DtcTransaction;

impl Transaction for DtcTransaction {
    fn name(&self) -> String {
        "dtc".into()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        let g = Graph::of_edges(db);
        Ok(normalize_domain(graph_from_pairs(
            db.domain().iter().copied(),
            g.deterministic_transitive_closure(),
        )))
    }
}

/// `sg`: the same-generation query (a member of `SG_tree`; on trees it
/// computes exactly `sg(G)`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SgTransaction;

impl Transaction for SgTransaction {
    fn name(&self) -> String {
        "sg".into()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        let g = Graph::of_edges(db);
        Ok(normalize_domain(graph_from_pairs(
            db.domain().iter().copied(),
            g.same_generation(),
        )))
    }
}

/// The Datalog¬ version of [`TcTransaction`].
pub fn tc_datalog(strategy: Strategy) -> DatalogTransaction {
    DatalogTransaction::new("tc-datalog", tc_program(), [("tc", "E")], strategy)
}

/// The Datalog¬ version of [`DtcTransaction`].
pub fn dtc_datalog(strategy: Strategy) -> DatalogTransaction {
    DatalogTransaction::new("dtc-datalog", dtc_program(), [("dtc", "E")], strategy)
}

/// The Datalog¬ version of [`SgTransaction`].
pub fn sg_datalog(strategy: Strategy) -> DatalogTransaction {
    DatalogTransaction::new("sg-datalog", sg_program(), [("sg", "E")], strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::while_lang::tc_while;
    use rand::SeedableRng;
    use vpdt_structure::families;

    fn test_graphs() -> Vec<Database> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut out = vec![
            families::chain(6),
            families::cycle(5),
            families::cc_graph(3, &[4]),
            families::gnm(3, 4),
            families::complete_binary_tree(2),
            Database::graph([]),
        ];
        for _ in 0..4 {
            out.push(families::random_graph(5, 0.3, &mut rng));
        }
        out
    }

    #[test]
    fn three_tc_implementations_agree() {
        let native = TcTransaction;
        let datalog = tc_datalog(Strategy::SemiNaive);
        let while_p = tc_while();
        for db in test_graphs() {
            let a = native.apply(&db).expect("native");
            let b = datalog.apply(&db).expect("datalog");
            let c = while_p.apply(&db).expect("while");
            assert_eq!(a, b, "native vs datalog on {db:?}");
            assert_eq!(a, c, "native vs while on {db:?}");
        }
    }

    #[test]
    fn dtc_implementations_agree() {
        let native = DtcTransaction;
        let datalog = dtc_datalog(Strategy::SemiNaive);
        for db in test_graphs() {
            assert_eq!(
                native.apply(&db).expect("native"),
                datalog.apply(&db).expect("datalog"),
                "on {db:?}"
            );
        }
    }

    #[test]
    fn sg_implementations_agree() {
        let native = SgTransaction;
        let datalog = sg_datalog(Strategy::SemiNaive);
        for db in test_graphs() {
            assert_eq!(
                native.apply(&db).expect("native"),
                datalog.apply(&db).expect("datalog"),
                "on {db:?}"
            );
        }
    }

    #[test]
    fn sg_on_gnm_counts_isolated_points() {
        // Claim 3 of Theorem 2: in sg(G_{n,m}) with n ≤ m there are exactly
        // m − n isolated points if n≠m… more precisely |n−m| depth levels
        // are singletons, plus the root's generation is {root}. The sentence
        // α_i counts i isolated nodes and G_{n,m} ⊨ wpc(sg, α_i) iff
        // |n−m| = i−1.
        for (n, m) in [(2usize, 4usize), (3, 3), (2, 5)] {
            let db = families::gnm(n, m);
            let out = SgTransaction.apply(&db).expect("applies");
            let i = n.abs_diff(m) + 1;
            let alpha = vpdt_logic::library::exactly_isolated(i);
            assert!(
                vpdt_eval::holds_pure(&out, &alpha).expect("evaluates"),
                "G_({n},{m}) should have exactly {i} isolated points in sg"
            );
        }
    }
}
