//! Relational algebra: select–project–join expressions and set operations.
//!
//! Proposition 1 proves `Preserve(TL, FO)` undecidable already when `TL`
//! contains the select-project-join expressions of the relational algebra;
//! its two witnesses are provided here as [`t1_diagonal`] and
//! [`t2_complete`]:
//!
//! ```text
//! T₁(E) = π₁,₃(σ₁=₃(E×E))        (the diagonal {(x,x) | x ∈ V})
//! T₂(E) = π₁,₃(σ₁≠₃(E×E))        (the complete loopless graph on V)
//! ```
//!
//! [`RaExpr::to_formula`] compiles an RA expression to an equivalent FO
//! formula (the classical algebra→calculus translation), which is how RA
//! transactions become prerelations in `vpdt-core`.

use crate::traits::{normalize_domain, Transaction, TxError};
use std::collections::BTreeSet;
use vpdt_logic::{Elem, Formula, Schema, Term, Var};
use vpdt_structure::Database;

/// A selection predicate over the columns of a relation (0-indexed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelPred {
    /// Column `i` equals column `j`.
    EqCols(usize, usize),
    /// Column `i` differs from column `j`.
    NeqCols(usize, usize),
    /// Column `i` equals a constant.
    EqConst(usize, Elem),
    /// Column `i` differs from a constant.
    NeqConst(usize, Elem),
    /// Conjunction.
    And(Box<SelPred>, Box<SelPred>),
    /// Disjunction.
    Or(Box<SelPred>, Box<SelPred>),
    /// Negation.
    Not(Box<SelPred>),
}

impl SelPred {
    fn eval(&self, t: &[Elem]) -> bool {
        match self {
            SelPred::EqCols(i, j) => t[*i] == t[*j],
            SelPred::NeqCols(i, j) => t[*i] != t[*j],
            SelPred::EqConst(i, c) => t[*i] == *c,
            SelPred::NeqConst(i, c) => t[*i] != *c,
            SelPred::And(a, b) => a.eval(t) && b.eval(t),
            SelPred::Or(a, b) => a.eval(t) || b.eval(t),
            SelPred::Not(a) => !a.eval(t),
        }
    }

    fn max_col(&self) -> usize {
        match self {
            SelPred::EqCols(i, j) | SelPred::NeqCols(i, j) => *i.max(j),
            SelPred::EqConst(i, _) | SelPred::NeqConst(i, _) => *i,
            SelPred::And(a, b) | SelPred::Or(a, b) => a.max_col().max(b.max_col()),
            SelPred::Not(a) => a.max_col(),
        }
    }

    fn to_formula(&self, vars: &[Var]) -> Formula {
        let v = |i: usize| Term::Var(vars[i].clone());
        match self {
            SelPred::EqCols(i, j) => Formula::eq(v(*i), v(*j)),
            SelPred::NeqCols(i, j) => Formula::neq(v(*i), v(*j)),
            SelPred::EqConst(i, c) => Formula::eq(v(*i), Term::Const(*c)),
            SelPred::NeqConst(i, c) => Formula::neq(v(*i), Term::Const(*c)),
            SelPred::And(a, b) => Formula::and([a.to_formula(vars), b.to_formula(vars)]),
            SelPred::Or(a, b) => Formula::or([a.to_formula(vars), b.to_formula(vars)]),
            SelPred::Not(a) => Formula::not(a.to_formula(vars)),
        }
    }
}

/// A relational algebra expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaExpr {
    /// A base relation.
    Rel(String),
    /// Selection σ_pred.
    Select(Box<RaExpr>, SelPred),
    /// Projection π_cols (columns may repeat or reorder).
    Project(Box<RaExpr>, Vec<usize>),
    /// Cartesian product.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Set union (arities must agree).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Set difference (arities must agree).
    Diff(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// Convenience: base relation.
    pub fn rel(name: impl Into<String>) -> Self {
        RaExpr::Rel(name.into())
    }

    /// Convenience: selection.
    pub fn select(self, p: SelPred) -> Self {
        RaExpr::Select(Box::new(self), p)
    }

    /// Convenience: projection.
    pub fn project(self, cols: impl IntoIterator<Item = usize>) -> Self {
        RaExpr::Project(Box::new(self), cols.into_iter().collect())
    }

    /// Convenience: product.
    pub fn product(self, other: RaExpr) -> Self {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// Convenience: union.
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// Convenience: difference.
    pub fn diff(self, other: RaExpr) -> Self {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    /// The output arity of the expression against a schema.
    pub fn arity(&self, schema: &Schema) -> Result<usize, TxError> {
        match self {
            RaExpr::Rel(name) => schema
                .arity_of(name)
                .ok_or_else(|| TxError::SchemaMismatch(format!("unknown relation {name}"))),
            RaExpr::Select(e, p) => {
                let n = e.arity(schema)?;
                if p.max_col() >= n {
                    return Err(TxError::SchemaMismatch(format!(
                        "selection references column {} of arity-{n} input",
                        p.max_col()
                    )));
                }
                Ok(n)
            }
            RaExpr::Project(e, cols) => {
                let n = e.arity(schema)?;
                if let Some(&bad) = cols.iter().find(|&&c| c >= n) {
                    return Err(TxError::SchemaMismatch(format!(
                        "projection references column {bad} of arity-{n} input"
                    )));
                }
                Ok(cols.len())
            }
            RaExpr::Product(a, b) => Ok(a.arity(schema)? + b.arity(schema)?),
            RaExpr::Union(a, b) | RaExpr::Diff(a, b) => {
                let (na, nb) = (a.arity(schema)?, b.arity(schema)?);
                if na != nb {
                    return Err(TxError::SchemaMismatch(format!(
                        "set operation on arities {na} and {nb}"
                    )));
                }
                Ok(na)
            }
        }
    }

    /// Evaluates the expression to a set of tuples.
    pub fn eval(&self, db: &Database) -> Result<BTreeSet<Vec<Elem>>, TxError> {
        self.arity(db.schema())?; // validate once up front
        Ok(self.eval_unchecked(db))
    }

    fn eval_unchecked(&self, db: &Database) -> BTreeSet<Vec<Elem>> {
        match self {
            RaExpr::Rel(name) => db.rel(name).iter().cloned().collect(),
            RaExpr::Select(e, p) => e
                .eval_unchecked(db)
                .into_iter()
                .filter(|t| p.eval(t))
                .collect(),
            RaExpr::Project(e, cols) => e
                .eval_unchecked(db)
                .into_iter()
                .map(|t| cols.iter().map(|&c| t[c]).collect())
                .collect(),
            RaExpr::Product(a, b) => {
                let ta = a.eval_unchecked(db);
                let tb = b.eval_unchecked(db);
                let mut out = BTreeSet::new();
                for x in &ta {
                    for y in &tb {
                        let mut t = x.clone();
                        t.extend_from_slice(y);
                        out.insert(t);
                    }
                }
                out
            }
            RaExpr::Union(a, b) => {
                let mut out = a.eval_unchecked(db);
                out.extend(b.eval_unchecked(db));
                out
            }
            RaExpr::Diff(a, b) => {
                let tb = b.eval_unchecked(db);
                a.eval_unchecked(db)
                    .into_iter()
                    .filter(|t| !tb.contains(t))
                    .collect()
            }
        }
    }

    /// Compiles the expression to an FO formula whose free variables (in
    /// order) are `vars` — the classical algebra-to-calculus translation.
    /// `vars.len()` must equal the expression's arity.
    pub fn to_formula(&self, schema: &Schema, vars: &[Var]) -> Result<Formula, TxError> {
        let n = self.arity(schema)?;
        assert_eq!(vars.len(), n, "one variable per output column");
        let mut fresh = FreshVars::avoiding(vars);
        Ok(self.to_formula_inner(schema, vars, &mut fresh))
    }

    fn to_formula_inner(&self, schema: &Schema, vars: &[Var], fresh: &mut FreshVars) -> Formula {
        match self {
            RaExpr::Rel(name) => {
                Formula::rel(name.clone(), vars.iter().map(|v| Term::Var(v.clone())))
            }
            RaExpr::Select(e, p) => {
                Formula::and([e.to_formula_inner(schema, vars, fresh), p.to_formula(vars)])
            }
            RaExpr::Project(e, cols) => {
                let inner_arity = e
                    .arity(schema)
                    .expect("validated by the public entry point");
                let inner_vars: Vec<Var> = (0..inner_arity).map(|_| fresh.next()).collect();
                let body = e.to_formula_inner(schema, &inner_vars, fresh);
                let bindings = cols.iter().enumerate().map(|(out_i, &c)| {
                    Formula::eq(
                        Term::Var(vars[out_i].clone()),
                        Term::Var(inner_vars[c].clone()),
                    )
                });
                Formula::exists_many(
                    inner_vars.clone(),
                    Formula::and(std::iter::once(body).chain(bindings)),
                )
            }
            RaExpr::Product(a, b) => {
                let na = a.arity(schema).expect("validated");
                Formula::and([
                    a.to_formula_inner(schema, &vars[..na], fresh),
                    b.to_formula_inner(schema, &vars[na..], fresh),
                ])
            }
            RaExpr::Union(a, b) => Formula::or([
                a.to_formula_inner(schema, vars, fresh),
                b.to_formula_inner(schema, vars, fresh),
            ]),
            RaExpr::Diff(a, b) => Formula::and([
                a.to_formula_inner(schema, vars, fresh),
                Formula::not(b.to_formula_inner(schema, vars, fresh)),
            ]),
        }
    }
}

/// A supply of fresh variables `q0, q1, …` avoiding a given set.
struct FreshVars {
    counter: usize,
    avoid: BTreeSet<Var>,
}

impl FreshVars {
    fn avoiding(vars: &[Var]) -> Self {
        FreshVars {
            counter: 0,
            avoid: vars.iter().cloned().collect(),
        }
    }

    fn next(&mut self) -> Var {
        loop {
            let v = Var::new(format!("q{}", self.counter));
            self.counter += 1;
            if !self.avoid.contains(&v) {
                return v;
            }
        }
    }
}

/// A transaction defined by parallel RA assignments: each listed relation
/// is replaced by the value of its expression over the *old* state;
/// unlisted relations are kept. The result domain is its active domain.
#[derive(Clone, Debug)]
pub struct RaTransaction {
    label: String,
    assignments: Vec<(String, RaExpr)>,
}

impl RaTransaction {
    /// Creates a named transaction from parallel assignments.
    pub fn new(
        label: impl Into<String>,
        assignments: impl IntoIterator<Item = (impl Into<String>, RaExpr)>,
    ) -> Self {
        RaTransaction {
            label: label.into(),
            assignments: assignments
                .into_iter()
                .map(|(n, e)| (n.into(), e))
                .collect(),
        }
    }

    /// The assignments.
    pub fn assignments(&self) -> &[(String, RaExpr)] {
        &self.assignments
    }
}

impl Transaction for RaTransaction {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        let mut results = Vec::with_capacity(self.assignments.len());
        for (rel, expr) in &self.assignments {
            let arity = expr.arity(db.schema())?;
            let expected = db
                .schema()
                .arity_of(rel)
                .ok_or_else(|| TxError::SchemaMismatch(format!("unknown target relation {rel}")))?;
            if arity != expected {
                return Err(TxError::SchemaMismatch(format!(
                    "assigning arity-{arity} expression to {rel}/{expected}"
                )));
            }
            results.push((rel.clone(), expr.eval(db)?));
        }
        let mut out = Database::empty(db.schema().clone());
        for (rel, _arity) in db.schema().iter().map(|(n, a)| (n.to_string(), a)) {
            if let Some((_, tuples)) = results.iter().find(|(n, _)| *n == rel) {
                for t in tuples {
                    out.insert(&rel, t.clone());
                }
            } else {
                for t in db.rel(&rel).iter() {
                    out.insert(&rel, t.clone());
                }
            }
        }
        Ok(normalize_domain(out))
    }
}

/// The symmetrized edge relation `E ∪ π₂,₁(E)`, whose first projection is
/// the full node set `V = π₁(E) ∪ π₂(E)`.
fn symmetrized() -> RaExpr {
    RaExpr::rel("E").union(RaExpr::rel("E").project([1, 0]))
}

/// `T₁` from Proposition 1: the diagonal `{(x,x) | x ∈ V}`.
///
/// The paper writes `π₁,₃(σ₁=₃(E×E))` and separately stipulates "V is the
/// union of the first and the second projections of E"; taken literally the
/// product only covers `π₁(E)`, so we first symmetrize `E` (a
/// select-project-join-union expression) to make the prose semantics exact.
pub fn t1_diagonal() -> RaTransaction {
    let s = symmetrized();
    let expr = s
        .clone()
        .product(s)
        .select(SelPred::EqCols(0, 2))
        .project([0, 2]);
    RaTransaction::new("T1-diagonal", [("E", expr)])
}

/// `T₂` from Proposition 1: the complete loopless graph
/// `{(x,y) | x,y ∈ V, x ≠ y}` (same symmetrization note as
/// [`t1_diagonal`]).
pub fn t2_complete() -> RaTransaction {
    let s = symmetrized();
    let expr = s
        .clone()
        .product(s)
        .select(SelPred::NeqCols(0, 2))
        .project([0, 2]);
    RaTransaction::new("T2-complete", [("E", expr)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_eval::{eval, Env, Omega};
    use vpdt_structure::families;

    #[test]
    fn t1_produces_diagonal() {
        let db = families::chain(4);
        let out = t1_diagonal().apply(&db).expect("applies");
        assert_eq!(out, families::diagonal(0..4));
    }

    #[test]
    fn t2_produces_complete_loopless() {
        let db = families::chain(3);
        let out = t2_complete().apply(&db).expect("applies");
        assert_eq!(out, families::complete_loopless(3));
    }

    #[test]
    fn t1_on_graph_with_loop_only() {
        // V is the union of the projections of E, so a single loop keeps V={0}
        let db = Database::graph([(0, 0)]);
        let out = t1_diagonal().apply(&db).expect("applies");
        assert_eq!(out, families::diagonal([0]));
    }

    #[test]
    fn union_and_diff() {
        let db = families::chain(3); // E = {(0,1),(1,2)}
        let sym = RaExpr::rel("E").union(RaExpr::rel("E").project([1, 0]));
        let tuples = sym.eval(&db).expect("evaluates");
        assert_eq!(tuples.len(), 4);
        let nothing = RaExpr::rel("E").diff(RaExpr::rel("E"));
        assert!(nothing.eval(&db).expect("evaluates").is_empty());
    }

    #[test]
    fn arity_errors_are_reported() {
        let bad = RaExpr::rel("E").union(RaExpr::rel("E").project([0]));
        assert!(matches!(
            bad.eval(&families::chain(2)),
            Err(TxError::SchemaMismatch(_))
        ));
        let bad_col = RaExpr::rel("E").project([5]);
        assert!(bad_col.eval(&families::chain(2)).is_err());
    }

    /// The RA→FO compiler is semantics-preserving: for every tuple over the
    /// active domain, the formula holds iff the tuple is in the result.
    #[test]
    fn to_formula_agrees_with_eval() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let exprs = [
            t1_diagonal().assignments()[0].1.clone(),
            t2_complete().assignments()[0].1.clone(),
            RaExpr::rel("E").union(RaExpr::rel("E").project([1, 0])),
            RaExpr::rel("E")
                .product(RaExpr::rel("E"))
                .select(SelPred::EqCols(1, 2))
                .project([0, 3]), // composition E∘E
            RaExpr::rel("E").diff(RaExpr::rel("E").project([1, 0])),
        ];
        for expr in &exprs {
            for _ in 0..3 {
                let db = families::random_graph(4, 0.4, &mut rng);
                let vars = [Var::new("a"), Var::new("b")];
                let f = expr.to_formula(db.schema(), &vars).expect("compiles");
                let tuples = expr.eval(&db).expect("evaluates");
                let dom: Vec<Elem> = db.domain().iter().copied().collect();
                for &x in &dom {
                    for &y in &dom {
                        let mut env = Env::of([(Var::new("a"), x), (Var::new("b"), y)]);
                        let by_formula =
                            eval(&db, &Omega::empty(), &f, &mut env).expect("evaluates");
                        let by_algebra = tuples.contains(&vec![x, y]);
                        assert_eq!(by_formula, by_algebra, "{expr:?} on ({x},{y})");
                    }
                }
            }
        }
    }
}
