//! # vpdt-tx
//!
//! Transaction languages (Section 2: "a transaction language consists of a
//! recursive syntax and a total recursive semantics mapping database
//! encodings to database encodings or `error`").
//!
//! * [`traits::Transaction`] — the common interface: a total map from
//!   databases to databases (or an error/abort);
//! * [`algebra`] — relational algebra (select–project–join plus set
//!   operations), its evaluator, the RA→FO compiler, and the transactions
//!   `T₁` (diagonal) and `T₂` (complete loopless graph) from the
//!   undecidability proof of Proposition 1;
//! * [`program`] — first-order update programs in the style of Qian [32]:
//!   inserts, conditional deletes/inserts, parallel assignment, sequencing
//!   and conditionals. These compile to prerelations in `vpdt-core`;
//! * [`template`] — prepared statements: [`template::canonicalize`] splits a
//!   ground program into a constant-free [`template::Template`] shape plus a
//!   binding vector, so guard compilation can be shared across all programs
//!   of the same shape (one cache entry per statement, not per tuple);
//! * [`datalog`] — a stratified Datalog¬ engine (naive and semi-naive) and
//!   Datalog-defined transactions; `tc`, `dtc` and same-generation are
//!   provided as programs (Theorem B's recursion constructs);
//! * [`while_lang`] — while-programs over relation variables with RA
//!   assignments (the "simple while loop language" the paper contrasts
//!   with in Section 2);
//! * [`recursive`] — native implementations of `tc`, `dtc`, `sg` as
//!   transactions, cross-checked against the Datalog and while versions.
//!
//! **Domain convention.** Following the paper (where `dom(D)` is the active
//! domain), every transaction normalizes its output so the domain equals
//! the active domain of the result relations.

pub mod algebra;
pub mod codec;
pub mod datalog;
pub mod program;
pub mod recursive;
pub mod template;
pub mod traits;
pub mod while_lang;

pub use traits::{Transaction, TxError};
