//! The resident store server: a builder-configured worker pool serving
//! long-lived client sessions.
//!
//! [`StoreBuilder`] collects a configuration — constraint `α`, the Ω
//! interpretation, guard-cache capacity, worker-pool size, and a
//! [`RetryPolicy`] — and [`StoreBuilder::build`] establishes the guard
//! soundness base case (`α` holds at admission) **once per server**, then
//! spawns the workers. From then on the server owns the execution layer:
//! the submission queue (an MPMC queue sessions feed), the versioned
//! store, the guard cache, and the lifecycle. Clients hold
//! [`Session`](crate::Session) handles and receive
//! [`TxTicket`](crate::TxTicket)s; nobody owns a batch.
//!
//! [`StoreServer::shutdown`] closes the queue, lets the workers drain every
//! already-submitted transaction (outstanding tickets all resolve), joins
//! the pool, and returns the final [`ServerReport`].

use crate::exec::{self, ExecReport, OutcomeSink, TxOutcome, WorkItem, WorkQueue};
use crate::guard::{CacheStats, GuardCache};
use crate::history::{root_hash, state_hash, Event, History};
use crate::metrics::StoreMetrics;
use crate::session::{Session, TicketState, TxTicket};
use crate::snapshot::{Snapshot, VersionedStore};
use crate::wal::{
    self, DurableLog, FlushStats, GroupCommitFlusher, RecoveryError, RecoveryOptions, WalOptions,
    WalWriter,
};
use crate::StoreError;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use vpdt_eval::Omega;
use vpdt_logic::{Formula, Schema};
use vpdt_obs::{MetricsSnapshot, TraceStage, TxTimeline};
use vpdt_structure::Database;
use vpdt_tx::program::Program;
use vpdt_tx::template::Template;

/// Default capacity of the transaction-lifecycle trace ring
/// ([`StoreBuilder::trace_capacity`]): enough for the full lifecycles of
/// the last ~1500 transactions at ~5 events each.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// How many of the slowest traced transactions a [`ServerReport`] keeps.
const SLOWEST_IN_REPORT: usize = 16;

/// How the workers respond to commit-footprint conflicts: how many times a
/// transaction may re-validate, and how long to back off between attempts
/// (linear: attempt `k` sleeps `k × backoff`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    max_retries: Option<u32>,
    backoff: Duration,
}

impl RetryPolicy {
    /// Retry forever, immediately — the classical optimistic loop (and the
    /// default). Progress is guaranteed: a conflict means some *other*
    /// transaction committed.
    pub fn unbounded() -> Self {
        RetryPolicy {
            max_retries: None,
            backoff: Duration::ZERO,
        }
    }

    /// Give up (with [`StoreError::RetriesExhausted`]) after `max_retries`
    /// failed re-validations, sleeping `attempt × backoff` between them.
    pub fn bounded(max_retries: u32, backoff: Duration) -> Self {
        RetryPolicy {
            max_retries: Some(max_retries),
            backoff,
        }
    }

    /// The retry bound, if any.
    pub fn max_retries(&self) -> Option<u32> {
        self.max_retries
    }

    /// Whether a transaction that has already retried `done` times may try
    /// again.
    pub(crate) fn may_retry(&self, done: u32) -> bool {
        match self.max_retries {
            None => true,
            Some(max) => done < max,
        }
    }

    /// Sleeps the linear backoff for retry number `attempt` (1-based).
    pub(crate) fn backoff(&self, attempt: u32) {
        if !self.backoff.is_zero() {
            std::thread::sleep(self.backoff * attempt);
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::unbounded()
    }
}

/// Where a server's state comes from: a fresh initial database, or a
/// persisted directory to recover.
#[derive(Clone, Debug)]
enum Source {
    Fresh {
        initial: Database,
        alpha: Formula,
    },
    /// Recover state, constraint, shape identities and history from `dir`,
    /// then resume appending to its log.
    Recover {
        dir: PathBuf,
    },
}

/// Configuration for a [`StoreServer`]. Construct with an initial state
/// and the constraint `α` ([`StoreBuilder::new`]) or from a persisted
/// directory ([`StoreBuilder::recover`]); everything else has serviceable
/// defaults.
#[derive(Clone, Debug)]
pub struct StoreBuilder {
    source: Source,
    omega: Omega,
    cache_capacity: usize,
    workers: usize,
    retry: RetryPolicy,
    retain_outcomes: bool,
    persist_dir: Option<PathBuf>,
    wal_opts: WalOptions,
    trace_capacity: usize,
}

impl StoreBuilder {
    /// A builder over `initial` (ingested as version 0) guarding `α`.
    pub fn new(initial: Database, alpha: Formula) -> Self {
        StoreBuilder {
            source: Source::Fresh { initial, alpha },
            omega: Omega::empty(),
            cache_capacity: crate::guard::DEFAULT_CAPACITY,
            workers: 4,
            retry: RetryPolicy::unbounded(),
            retain_outcomes: true,
            persist_dir: None,
            wal_opts: WalOptions::default(),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// A builder that recovers a persisted server from `dir` and resumes
    /// appending to its log. The constraint `α`, the schema, the state, the
    /// statement-shape identities, and the full event history all come from
    /// the directory; [`build`](StoreBuilder::build) performs the recovery
    /// — replaying snapshot + log tail with hash and provenance
    /// verification, so a successful build *is* a passed cold audit of the
    /// tail. Set the same Ω interpretation the original server ran with
    /// ([`omega`](StoreBuilder::omega)) before building.
    pub fn recover(dir: impl Into<PathBuf>) -> Self {
        StoreBuilder {
            source: Source::Recover { dir: dir.into() },
            omega: Omega::empty(),
            cache_capacity: crate::guard::DEFAULT_CAPACITY,
            workers: 4,
            retry: RetryPolicy::unbounded(),
            retain_outcomes: true,
            persist_dir: None,
            wal_opts: WalOptions::default(),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// The Ω interpretation guards and programs evaluate under
    /// (default: empty).
    pub fn omega(mut self, omega: Omega) -> Self {
        self.omega = omega;
        self
    }

    /// LRU budget for live guard compilations (default:
    /// [`DEFAULT_CAPACITY`](crate::guard::DEFAULT_CAPACITY)).
    pub fn guard_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Worker threads in the resident pool (default: 4, minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The conflict [`RetryPolicy`] (default: unbounded, no backoff).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Makes the server durable: every history event is written ahead to a
    /// segmented, checksummed log in `dir` (created fresh — building fails
    /// with [`WalError::AlreadyExists`](crate::wal::WalError::AlreadyExists)
    /// if `dir` already holds a log; use [`StoreBuilder::recover`] for
    /// those). Commit records reach the log *before* the commit is
    /// published or acknowledged, and are fsync'd under the default
    /// [`WalOptions`], so an outcome observed through
    /// [`TxTicket::wait`](crate::TxTicket::wait) is durable. A genesis
    /// checkpoint is written at build; a clean checkpoint at
    /// [`shutdown`](StoreServer::shutdown). Ignored by the recover path
    /// (which always resumes its own directory's log).
    pub fn persist(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// [`persist`](StoreBuilder::persist) with explicit [`WalOptions`]
    /// (segment size, fsync policy). The options also govern the resumed
    /// log of the [`recover`](StoreBuilder::recover) path.
    pub fn persist_with(mut self, dir: impl Into<PathBuf>, opts: WalOptions) -> Self {
        self.persist_dir = Some(dir.into());
        self.wal_opts = opts;
        self
    }

    /// Sets the [`WalOptions`] without changing where (or whether) the
    /// store persists — the knob the recover path uses.
    pub fn wal_options(mut self, opts: WalOptions) -> Self {
        self.wal_opts = opts;
        self
    }

    /// Capacity of the transaction-lifecycle trace ring (default:
    /// [`DEFAULT_TRACE_CAPACITY`]). Events shard by transaction id; a
    /// full shard overwrites its oldest events first, so recent
    /// transactions always have complete timelines. `0` disables tracing
    /// entirely (metrics stay on) — worth it for pure-throughput runs:
    /// the per-event shard locks cost a few percent on saturated
    /// all-in-memory workloads (`store_bench` measures untraced).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Whether the server keeps every transaction's outcome for the final
    /// [`ServerReport`] (default: `true`). A resident server facing
    /// unbounded traffic should turn this off — memory then stays flat,
    /// clients still receive every outcome through their tickets, history
    /// and audit are unaffected, and the report's aggregate counters
    /// remain exact; only `ServerReport::exec.outcomes` comes back empty.
    pub fn retain_outcomes(mut self, retain: bool) -> Self {
        self.retain_outcomes = retain;
        self
    }

    /// Establishes the guard-soundness base case — `α` must hold (and
    /// evaluate) on the initial state — and spawns the worker pool. A
    /// server is only ever handed out consistent, so every guard it
    /// evaluates is sound, and the invariant is maintained by construction
    /// from here on.
    ///
    /// For a [`recover`](StoreBuilder::recover) builder this is where the
    /// recovery runs: the log tail is replayed with hash and provenance
    /// verification (any failure is a typed
    /// [`StoreError::Recovery`]), shape identities are re-seeded into the
    /// guard cache under their original ids, transaction ids continue
    /// where the log left off, and the log is reopened for appending (its
    /// torn tail, if any, physically truncated).
    pub fn build(self) -> Result<StoreServer, StoreError> {
        // One registry per server: the guard cache, the workers, and the
        // flusher all count on it, so every reading comes from one place.
        let obs = StoreMetrics::new(self.trace_capacity);
        // The durable phase exists exactly when commits must reach stable
        // storage before acknowledgment: persistence on, fsync policy on.
        let wants_flusher = self.wal_opts.fsync_commits;
        let group_policy = self.wal_opts.group_commit.clone();
        let group = {
            let obs = obs.clone();
            move |durable: bool| -> Option<Arc<GroupCommitFlusher>> {
                durable
                    .then(|| Arc::new(GroupCommitFlusher::new(group_policy.clone(), obs.clone())))
            }
        };
        let (store, cache, next_tx, group) = match self.source {
            Source::Fresh { initial, alpha } => {
                let store = VersionedStore::new(initial);
                let cache = GuardCache::with_metrics(
                    store.schema().clone(),
                    alpha,
                    self.omega,
                    self.cache_capacity,
                    &obs.registry,
                );
                exec::check_base_case(&store, &cache)?;
                let mut flusher = None;
                if let Some(dir) = self.persist_dir {
                    let writer = WalWriter::create(&dir, self.wal_opts)?;
                    let snap = store.snapshot();
                    wal::write_checkpoint(
                        writer.dir(),
                        &wal::Checkpoint {
                            offset: 0,
                            version: 0,
                            next_tx: 0,
                            state_hash: state_hash(&snap.db),
                            root_hash: root_hash(&snap.db),
                            alpha: cache.alpha().clone(),
                            schema: store.schema().clone(),
                            db: (*snap.db).clone(),
                            templates: BTreeMap::new(),
                        },
                    )?;
                    obs.checkpoints.inc();
                    flusher = group(wants_flusher);
                    store.history().attach_wal(DurableLog::new(
                        writer,
                        BTreeSet::new(),
                        flusher.clone(),
                    ));
                }
                (store, cache, 0, flusher)
            }
            Source::Recover { dir } => {
                let recovered = wal::recover(&dir, &self.omega, RecoveryOptions::default())?;
                for (i, id) in recovered.templates.keys().enumerate() {
                    if *id != i as u64 {
                        return Err(StoreError::Recovery(RecoveryError::Divergence {
                            detail: format!(
                                "recovered shape ids are not contiguous (found {id} at \
                                 position {i})"
                            ),
                        }));
                    }
                }
                let store = VersionedStore::resume(
                    recovered.db,
                    recovered.version,
                    History::with_events(recovered.events),
                    recovered.rel_versions,
                );
                let cache = GuardCache::with_metrics(
                    store.schema().clone(),
                    recovered.alpha,
                    self.omega,
                    self.cache_capacity,
                    &obs.registry,
                );
                cache.seed_registry(&recovered.templates);
                exec::check_base_case(&store, &cache)?;
                let (writer, logged_shapes) = WalWriter::resume(&dir, self.wal_opts)?;
                let flusher = group(wants_flusher);
                store
                    .history()
                    .attach_wal(DurableLog::new(writer, logged_shapes, flusher.clone()));
                (store, cache, recovered.next_tx, flusher)
            }
        };
        obs.version.set(store.version());

        let shared = Arc::new(Shared {
            store,
            cache,
            retry: self.retry,
            queue: WorkQueue::new(),
            sink: OutcomeSink::new(self.retain_outcomes, 0),
            obs,
            group,
        });
        let flusher_thread = shared.group.as_ref().map(|g| {
            let g = Arc::clone(g);
            std::thread::Builder::new()
                .name("vpdt-store-flusher".to_string())
                .spawn(move || g.run())
                .expect("spawning the group-commit flusher")
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vpdt-store-worker-{i}"))
                    .spawn(move || {
                        exec::worker_loop(
                            &shared.store,
                            &shared.cache,
                            &shared.retry,
                            &shared.queue,
                            &shared.sink,
                            &shared.obs,
                            shared.group.as_deref(),
                        );
                    })
                    .expect("spawning a store worker")
            })
            .collect();
        Ok(StoreServer {
            shared,
            workers,
            flusher_thread,
            next_tx: AtomicU64::new(next_tx),
            next_session: AtomicU64::new(1),
        })
    }
}

/// State shared between the server handle, its worker threads, and the
/// group-commit flusher.
struct Shared {
    store: VersionedStore,
    cache: GuardCache,
    retry: RetryPolicy,
    queue: WorkQueue,
    sink: OutcomeSink,
    /// The server's metrics registry + transaction trace ring. Every
    /// counter, gauge, histogram, and trace event in the pipeline lands
    /// here; [`StoreServer::metrics`] and [`ServerReport::metrics`] read
    /// it out.
    obs: StoreMetrics,
    /// The durable phase (persisted servers with `fsync_commits` only):
    /// workers enqueue published commits here; the flusher thread batches
    /// the fsyncs and resolves the tickets.
    group: Option<Arc<GroupCommitFlusher>>,
}

/// A resident, session-oriented transaction server — the front door of
/// `vpdt-store` (see the crate docs for the full tour and an example).
///
/// The server owns the queue, the cache, and the lifecycle; clients hold
/// [`Session`]s. Submissions are accepted at any time from any number of
/// sessions; [`StoreServer::shutdown`] drains and reports.
pub struct StoreServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The group-commit flusher thread (durable servers only). Spawned in
    /// [`StoreBuilder::build`]; drained and joined by both `shutdown` and
    /// `Drop`, so every ticket handed to the durable phase resolves.
    flusher_thread: Option<JoinHandle<()>>,
    next_tx: AtomicU64,
    next_session: AtomicU64,
}

impl StoreServer {
    /// Opens a new client session. Sessions are independent and cheap; ids
    /// start at 1 (0 is the [`BATCH_SESSION`](crate::exec::BATCH_SESSION)
    /// provenance of the legacy batch path).
    pub fn session(&self) -> Session<'_> {
        Session::new(self, self.next_session.fetch_add(1, Ordering::Relaxed))
    }

    /// Enqueues one submission (the internal half of
    /// [`Session::submit`](crate::Session::submit)).
    pub(crate) fn enqueue(&self, session: u64, program: Program) -> TxTicket {
        let tx = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(TicketState::default());
        self.shared.obs.submitted.inc();
        self.shared.obs.trace(tx, TraceStage::Enqueued);
        let item = WorkItem {
            tx,
            session,
            program,
            ticket: Some(Arc::clone(&state)),
            enqueued_at_ns: self.shared.obs.now_ns(),
        };
        if let Err(refused) = self.shared.queue.push(item) {
            // Unreachable through a `Session` (shutdown consumes the
            // server while sessions borrow it), but kept total: resolve
            // the ticket rather than strand it. Resolving before the
            // refused item drops makes its drop-guard a no-op.
            state.resolve(TxOutcome::Failed {
                error: StoreError::ShutDown,
            });
            drop(refused);
        }
        TxTicket::new(tx, session, state)
    }

    /// Warms the prepared-statement cache for `program` without executing
    /// anything: canonicalize, compile the shape if unseen. Useful to take
    /// compilation off the serving path after a deploy.
    pub fn prepare(&self, program: &Program) -> Result<(), StoreError> {
        self.shared.cache.get_or_compile(program).map(|_| ())
    }

    /// Reserves a transaction id without enqueueing anything — the
    /// cross-shard coordinator assigns branch ids up front so the decision
    /// record can name them before any branch commits.
    pub(crate) fn reserve_tx(&self) -> u64 {
        self.next_tx.fetch_add(1, Ordering::Relaxed)
    }

    /// The underlying versioned store — the cross-shard coordinator drives
    /// `prepare_hold`/`commit_prepared`/`abort_prepared` on it directly.
    pub(crate) fn store(&self) -> &VersionedStore {
        &self.shared.store
    }

    /// The shard's guard cache — the coordinator canonicalizes each
    /// cross-shard branch delta against it so the shape ids recorded in
    /// `Cross` events are this shard's own (and stay resolvable across
    /// this shard's recoveries).
    pub(crate) fn cache(&self) -> &GuardCache {
        &self.shared.cache
    }

    /// Flushes the shard's write-ahead log to stable storage now. The
    /// cross-shard commit path calls this after `commit_prepared`: `Cross`
    /// records bypass the group-commit flusher's watermark (which only
    /// tracks ordinary commits), so the coordinator owns their fsync.
    /// No-op on an in-memory shard.
    pub(crate) fn sync_wal(&self) -> Result<(), wal::WalError> {
        self.shared
            .store
            .history()
            .with_wal(|log| log.writer.sync())
            .unwrap_or(Ok(()))
    }

    /// The store's schema.
    pub fn schema(&self) -> &Schema {
        self.shared.store.schema()
    }

    /// The constraint `α` every transaction is guarded with.
    pub fn alpha(&self) -> &Formula {
        self.shared.cache.alpha()
    }

    /// The Ω interpretation.
    pub fn omega(&self) -> &Omega {
        self.shared.cache.omega()
    }

    /// The current version and state (cheap: clones an `Arc`).
    pub fn snapshot(&self) -> Snapshot {
        self.shared.store.snapshot()
    }

    /// The current store version.
    pub fn version(&self) -> u64 {
        self.shared.store.version()
    }

    /// A point-in-time copy of the history log.
    pub fn history_events(&self) -> Vec<Event> {
        self.shared.store.history().events()
    }

    /// The root hash the commit at `version` recorded — the per-relation
    /// state commitment a remote client pairs with its committed version.
    /// `None` for version 0, uncommitted versions, and versions retired by
    /// segment retention on a recovered server. O(1) per call.
    pub fn commit_root(&self, version: u64) -> Option<u64> {
        self.shared.store.history().commit_root(version)
    }

    /// The metrics registry every pipeline counter lives on. A front door
    /// wrapping this server registers its own instruments here so one
    /// snapshot — and the final [`ServerReport`] — covers both.
    pub fn metrics_registry(&self) -> Arc<vpdt_obs::MetricsRegistry> {
        Arc::clone(&self.shared.obs.registry)
    }

    /// Guard-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.cache_stats()
    }

    /// Every statement shape ever compiled, by id — what an audit needs to
    /// resolve history provenance.
    pub fn templates(&self) -> BTreeMap<u64, Template> {
        self.shared.cache.templates()
    }

    /// Writes a snapshot checkpoint of the current state to the attached
    /// log's directory *while serving* (commits are briefly paused so the
    /// (state, version, offset) triple is exact), returning the covered
    /// log offset. Later recoveries start from the newest checkpoint and
    /// replay only the tail. `Err(StoreError::Wal(WalError::NotDurable))`
    /// when the server is not persisted.
    pub fn checkpoint(&self) -> Result<u64, StoreError> {
        let gc = self
            .shared
            .store
            .checkpoint_now(
                self.shared.cache.templates(),
                self.next_tx.load(Ordering::Relaxed),
                self.shared.cache.alpha(),
            )
            .map_err(StoreError::Wal)?;
        self.shared.obs.checkpoints.inc();
        self.shared
            .obs
            .wal_segments_deleted
            .add(gc.segments_deleted as u64);
        self.shared
            .obs
            .checkpoint_files_deleted
            .add(gc.checkpoints_deleted as u64);
        Ok(gc.offset)
    }

    /// A point-in-time snapshot of every metric the server keeps —
    /// pipeline counters, stage-latency histograms, cache and WAL
    /// counters. Counters and histograms are **server-lifetime totals**;
    /// to measure a window, take two snapshots and
    /// [`MetricsSnapshot::delta`] them.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.refresh_gauges();
        self.shared.obs.snapshot()
    }

    /// The `n` slowest *complete* traced transactions (first event
    /// `enqueued`, last terminal), slowest first. Empty when tracing is
    /// disabled ([`StoreBuilder::trace_capacity`] 0) or the ring has
    /// overwritten every complete timeline.
    pub fn slowest(&self, n: usize) -> Vec<TxTimeline> {
        self.shared.obs.trace.slowest(n)
    }

    /// Gauges sample state rather than accumulate, so they are refreshed
    /// on read instead of on every commit.
    fn refresh_gauges(&self) {
        self.shared.obs.version.set(self.shared.store.version());
        let cache = self.shared.cache.cache_stats();
        self.shared.obs.cache_entries.set(cache.entries as u64);
        self.shared.obs.cache_shapes.set(cache.shapes as u64);
    }

    /// Counters of the durable phase — fsyncs issued, commits resolved
    /// per fsync (the batch-size histogram), flush failures. `None` on a
    /// server without a group-commit flusher (in-memory, or
    /// `fsync_commits: false`).
    pub fn flush_stats(&self) -> Option<FlushStats> {
        self.shared.group.as_ref().map(|g| g.stats())
    }

    /// Test hook: make the flusher's next fsync fail as if the disk had,
    /// so the fail-stop fan-out (every covered ticket resolves with a
    /// typed [`StoreError::Wal`]) can be exercised without a faulty
    /// device. No-op on a server without a flusher.
    #[doc(hidden)]
    pub fn debug_inject_flush_error(&self) {
        if let Some(g) = &self.shared.group {
            g.inject_flush_error();
        }
    }

    /// Closes the submission queue, drains every already-submitted
    /// transaction (outstanding [`TxTicket`]s all resolve), joins the
    /// worker pool, drains the group-commit flusher (published commits get
    /// their covering fsync; their tickets resolve durable), and returns
    /// the final report. Sessions borrow the server, so the borrow checker
    /// guarantees none are left when this runs — but tickets are
    /// independent and may be waited on after.
    ///
    /// A persisted server also flushes its log and writes a clean
    /// checkpoint, so the next [`StoreBuilder::recover`] starts without
    /// replay. Both are fail-stop: an I/O error here panics rather than
    /// reporting a durability it cannot promise. (Dropping the server
    /// instead of calling `shutdown` also drains and joins — workers *and*
    /// flusher, so no acknowledged-or-pending commit is lost — but skips
    /// the checkpoint: the crash-shaped exit.)
    pub fn shutdown(mut self) -> ServerReport {
        let next_tx = self.next_tx.load(Ordering::Relaxed);
        // Closing the queue turns it into a drain: workers finish what was
        // submitted, then exit.
        self.shared.queue.close();
        for worker in std::mem::take(&mut self.workers) {
            worker.join().expect("store worker panicked");
        }
        // The workers are gone, so nothing publishes anymore: close the
        // flusher and let it drain — one final fsync resolves every
        // ticket still owed a durable acknowledgment.
        if let Some(group) = &self.shared.group {
            group.close();
        }
        if let Some(flusher) = self.flusher_thread.take() {
            flusher.join().expect("group-commit flusher panicked");
        }
        let flush = self.shared.group.as_ref().map(|g| g.stats());
        self.refresh_gauges();
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop sees an empty worker list and an already-closed queue
        let shared = Arc::into_inner(shared).expect("workers joined, no other owners");
        if let Some(mut log) = shared.store.history().detach_wal() {
            log.writer
                .sync()
                .expect("write-ahead log flush at shutdown failed");
            let offset = log.writer.offset();
            let snap = shared.store.snapshot();
            wal::write_checkpoint(
                log.writer.dir(),
                &wal::Checkpoint {
                    offset,
                    version: snap.version,
                    next_tx,
                    state_hash: state_hash(&snap.db),
                    root_hash: root_hash(&snap.db),
                    alpha: shared.cache.alpha().clone(),
                    schema: shared.store.schema().clone(),
                    db: (*snap.db).clone(),
                    templates: shared.cache.templates(),
                },
            )
            .expect("clean checkpoint at shutdown failed");
            shared.obs.checkpoints.inc();
            // Best-effort, unlike the sync and checkpoint above: state and
            // log are already fully durable, and a segment or checkpoint
            // that survives a failed unlink breaks nothing — the next
            // checkpoint (or `vpdtool wal gc`) simply retries.
            if !log.writer.options().retain_segments {
                if let Ok(deleted) = wal::gc_segments(log.writer.dir(), offset) {
                    shared.obs.wal_segments_deleted.add(deleted.len() as u64);
                }
                if let Ok(deleted) = wal::gc_checkpoints(log.writer.dir()) {
                    shared
                        .obs
                        .checkpoint_files_deleted
                        .add(deleted.len() as u64);
                }
            }
        }
        // Every counter in the report — cache, WAL, pipeline — is a
        // **server-lifetime total**: `prepare` warm-ups count, and nothing
        // resets between reads. Callers measuring a serving window should
        // take a [`StoreServer::metrics`] snapshot at the window's start
        // and [`MetricsSnapshot::delta`] the final one against it.
        let (hits, misses) = shared.cache.stats();
        let exec = shared
            .sink
            .into_report(shared.obs.conflicts.get(), hits, misses);
        let snap = shared.store.snapshot();
        // Snapshot metrics last so the clean checkpoint and GC above are
        // included in the report's counters.
        let metrics = shared.obs.snapshot();
        let slowest = shared.obs.trace.slowest(SLOWEST_IN_REPORT);
        ServerReport {
            exec,
            events: shared.store.history().events(),
            final_db: snap.db,
            final_version: snap.version,
            templates: shared.cache.templates(),
            cache: shared.cache.cache_stats(),
            flush,
            metrics,
            slowest,
        }
    }
}

/// Dropping a server without [`StoreServer::shutdown`] still drains the
/// queue, joins the workers, and drains the group-commit flusher (no
/// thread leaks, every ticket resolves — published commits get their
/// covering fsync first, so no acknowledged-or-pending commit is lost) —
/// but writes **no** clean checkpoint. For a persisted server this is the
/// crash-shaped exit: the next open goes through recovery and replays the
/// log tail. Acknowledged commits were already on disk before their
/// tickets resolved, so none is lost.
impl Drop for StoreServer {
    fn drop(&mut self) {
        self.shared.queue.close();
        for worker in std::mem::take(&mut self.workers) {
            // Best-effort during teardown: a panicked worker already
            // resolved its tickets via the work-item drop guard.
            let _ = worker.join();
        }
        if let Some(group) = &self.shared.group {
            group.close();
        }
        if let Some(flusher) = self.flusher_thread.take() {
            let _ = flusher.join();
        }
    }
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer")
            .field("workers", &self.workers.len())
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

/// Everything a shut-down server leaves behind: the aggregated execution
/// report, the full history, the final state, and the statement templates —
/// exactly the inputs [`audit`](crate::audit::audit) needs (callers supply
/// their own `programs` map, since only they know what they submitted).
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Per-transaction outcomes and pipeline counters.
    pub exec: ExecReport,
    /// The complete history log.
    pub events: Vec<Event>,
    /// The final state.
    pub final_db: Arc<Database>,
    /// The final store version.
    pub final_version: u64,
    /// Statement shapes by id (survives guard-cache eviction).
    pub templates: BTreeMap<u64, Template>,
    /// Final guard-cache counters.
    pub cache: CacheStats,
    /// Durable-phase counters (`None` without a group-commit flusher):
    /// fsyncs, flushed commits, the batch-size histogram.
    pub flush: Option<FlushStats>,
    /// The final metrics snapshot — every counter, gauge, and
    /// stage-latency histogram the server kept, taken after the clean
    /// checkpoint so shutdown housekeeping is included. All counters are
    /// server-lifetime totals (see [`MetricsSnapshot::delta`] for
    /// windows); render with
    /// [`render_prometheus`](MetricsSnapshot::render_prometheus).
    pub metrics: MetricsSnapshot,
    /// The slowest complete traced transactions (up to 16), slowest
    /// first. Empty when tracing was disabled.
    pub slowest: Vec<TxTimeline>,
}
