//! The resident store server: a builder-configured worker pool serving
//! long-lived client sessions.
//!
//! [`StoreBuilder`] collects a configuration — constraint `α`, the Ω
//! interpretation, guard-cache capacity, worker-pool size, and a
//! [`RetryPolicy`] — and [`StoreBuilder::build`] establishes the guard
//! soundness base case (`α` holds at admission) **once per server**, then
//! spawns the workers. From then on the server owns the execution layer:
//! the submission queue (an MPMC queue sessions feed), the versioned
//! store, the guard cache, and the lifecycle. Clients hold
//! [`Session`](crate::Session) handles and receive
//! [`TxTicket`](crate::TxTicket)s; nobody owns a batch.
//!
//! [`StoreServer::shutdown`] closes the queue, lets the workers drain every
//! already-submitted transaction (outstanding tickets all resolve), joins
//! the pool, and returns the final [`ServerReport`].

use crate::exec::{self, ExecReport, OutcomeSink, TxOutcome, WorkItem, WorkQueue};
use crate::guard::{CacheStats, GuardCache};
use crate::history::Event;
use crate::session::{Session, TicketState, TxTicket};
use crate::snapshot::{Snapshot, VersionedStore};
use crate::StoreError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use vpdt_eval::Omega;
use vpdt_logic::{Formula, Schema};
use vpdt_structure::Database;
use vpdt_tx::program::Program;
use vpdt_tx::template::Template;

/// How the workers respond to commit-footprint conflicts: how many times a
/// transaction may re-validate, and how long to back off between attempts
/// (linear: attempt `k` sleeps `k × backoff`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    max_retries: Option<u32>,
    backoff: Duration,
}

impl RetryPolicy {
    /// Retry forever, immediately — the classical optimistic loop (and the
    /// default). Progress is guaranteed: a conflict means some *other*
    /// transaction committed.
    pub fn unbounded() -> Self {
        RetryPolicy {
            max_retries: None,
            backoff: Duration::ZERO,
        }
    }

    /// Give up (with [`StoreError::RetriesExhausted`]) after `max_retries`
    /// failed re-validations, sleeping `attempt × backoff` between them.
    pub fn bounded(max_retries: u32, backoff: Duration) -> Self {
        RetryPolicy {
            max_retries: Some(max_retries),
            backoff,
        }
    }

    /// The retry bound, if any.
    pub fn max_retries(&self) -> Option<u32> {
        self.max_retries
    }

    /// Whether a transaction that has already retried `done` times may try
    /// again.
    pub(crate) fn may_retry(&self, done: u32) -> bool {
        match self.max_retries {
            None => true,
            Some(max) => done < max,
        }
    }

    /// Sleeps the linear backoff for retry number `attempt` (1-based).
    pub(crate) fn backoff(&self, attempt: u32) {
        if !self.backoff.is_zero() {
            std::thread::sleep(self.backoff * attempt);
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::unbounded()
    }
}

/// Configuration for a [`StoreServer`]. Construct with an initial state
/// and the constraint `α`; everything else has serviceable defaults.
#[derive(Clone, Debug)]
pub struct StoreBuilder {
    initial: Database,
    alpha: Formula,
    omega: Omega,
    cache_capacity: usize,
    workers: usize,
    retry: RetryPolicy,
    retain_outcomes: bool,
}

impl StoreBuilder {
    /// A builder over `initial` (ingested as version 0) guarding `α`.
    pub fn new(initial: Database, alpha: Formula) -> Self {
        StoreBuilder {
            initial,
            alpha,
            omega: Omega::empty(),
            cache_capacity: crate::guard::DEFAULT_CAPACITY,
            workers: 4,
            retry: RetryPolicy::unbounded(),
            retain_outcomes: true,
        }
    }

    /// The Ω interpretation guards and programs evaluate under
    /// (default: empty).
    pub fn omega(mut self, omega: Omega) -> Self {
        self.omega = omega;
        self
    }

    /// LRU budget for live guard compilations (default:
    /// [`DEFAULT_CAPACITY`](crate::guard::DEFAULT_CAPACITY)).
    pub fn guard_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Worker threads in the resident pool (default: 4, minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The conflict [`RetryPolicy`] (default: unbounded, no backoff).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Whether the server keeps every transaction's outcome for the final
    /// [`ServerReport`] (default: `true`). A resident server facing
    /// unbounded traffic should turn this off — memory then stays flat,
    /// clients still receive every outcome through their tickets, history
    /// and audit are unaffected, and the report's aggregate counters
    /// remain exact; only `ServerReport::exec.outcomes` comes back empty.
    pub fn retain_outcomes(mut self, retain: bool) -> Self {
        self.retain_outcomes = retain;
        self
    }

    /// Establishes the guard-soundness base case — `α` must hold (and
    /// evaluate) on the initial state — and spawns the worker pool. A
    /// server is only ever handed out consistent, so every guard it
    /// evaluates is sound, and the invariant is maintained by construction
    /// from here on.
    pub fn build(self) -> Result<StoreServer, StoreError> {
        let store = VersionedStore::new(self.initial);
        let cache = GuardCache::with_capacity(
            store.schema().clone(),
            self.alpha,
            self.omega,
            self.cache_capacity,
        );
        exec::check_base_case(&store, &cache)?;

        let shared = Arc::new(Shared {
            store,
            cache,
            retry: self.retry,
            queue: WorkQueue::new(),
            sink: OutcomeSink::new(self.retain_outcomes, 0),
            conflicts: AtomicU64::new(0),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vpdt-store-worker-{i}"))
                    .spawn(move || {
                        exec::worker_loop(
                            &shared.store,
                            &shared.cache,
                            &shared.retry,
                            &shared.queue,
                            &shared.sink,
                            &shared.conflicts,
                        );
                    })
                    .expect("spawning a store worker")
            })
            .collect();
        Ok(StoreServer {
            shared,
            workers,
            next_tx: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
        })
    }
}

/// State shared between the server handle and its worker threads.
struct Shared {
    store: VersionedStore,
    cache: GuardCache,
    retry: RetryPolicy,
    queue: WorkQueue,
    sink: OutcomeSink,
    conflicts: AtomicU64,
}

/// A resident, session-oriented transaction server — the front door of
/// `vpdt-store` (see the crate docs for the full tour and an example).
///
/// The server owns the queue, the cache, and the lifecycle; clients hold
/// [`Session`]s. Submissions are accepted at any time from any number of
/// sessions; [`StoreServer::shutdown`] drains and reports.
pub struct StoreServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_tx: AtomicU64,
    next_session: AtomicU64,
}

impl StoreServer {
    /// Opens a new client session. Sessions are independent and cheap; ids
    /// start at 1 (0 is the [`BATCH_SESSION`](crate::exec::BATCH_SESSION)
    /// provenance of the legacy batch path).
    pub fn session(&self) -> Session<'_> {
        Session::new(self, self.next_session.fetch_add(1, Ordering::Relaxed))
    }

    /// Enqueues one submission (the internal half of
    /// [`Session::submit`](crate::Session::submit)).
    pub(crate) fn enqueue(&self, session: u64, program: Program) -> TxTicket {
        let tx = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(TicketState::default());
        let item = WorkItem {
            tx,
            session,
            program,
            ticket: Some(Arc::clone(&state)),
        };
        if let Err(refused) = self.shared.queue.push(item) {
            // Unreachable through a `Session` (shutdown consumes the
            // server while sessions borrow it), but kept total: resolve
            // the ticket rather than strand it. Resolving before the
            // refused item drops makes its drop-guard a no-op.
            state.resolve(TxOutcome::Failed {
                error: StoreError::ShutDown,
            });
            drop(refused);
        }
        TxTicket::new(tx, session, state)
    }

    /// Warms the prepared-statement cache for `program` without executing
    /// anything: canonicalize, compile the shape if unseen. Useful to take
    /// compilation off the serving path after a deploy.
    pub fn prepare(&self, program: &Program) -> Result<(), StoreError> {
        self.shared.cache.get_or_compile(program).map(|_| ())
    }

    /// The store's schema.
    pub fn schema(&self) -> &Schema {
        self.shared.store.schema()
    }

    /// The constraint `α` every transaction is guarded with.
    pub fn alpha(&self) -> &Formula {
        self.shared.cache.alpha()
    }

    /// The Ω interpretation.
    pub fn omega(&self) -> &Omega {
        self.shared.cache.omega()
    }

    /// The current version and state (cheap: clones an `Arc`).
    pub fn snapshot(&self) -> Snapshot {
        self.shared.store.snapshot()
    }

    /// The current store version.
    pub fn version(&self) -> u64 {
        self.shared.store.version()
    }

    /// A point-in-time copy of the history log.
    pub fn history_events(&self) -> Vec<Event> {
        self.shared.store.history().events()
    }

    /// Guard-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.cache_stats()
    }

    /// Every statement shape ever compiled, by id — what an audit needs to
    /// resolve history provenance.
    pub fn templates(&self) -> BTreeMap<u64, Template> {
        self.shared.cache.templates()
    }

    /// Closes the submission queue, drains every already-submitted
    /// transaction (outstanding [`TxTicket`]s all resolve), joins the
    /// worker pool, and returns the final report. Sessions borrow the
    /// server, so the borrow checker guarantees none are left when this
    /// runs — but tickets are independent and may be waited on after.
    pub fn shutdown(self) -> ServerReport {
        let StoreServer {
            shared, workers, ..
        } = self;
        // Closing the queue turns it into a drain: workers finish what was
        // submitted, then exit.
        shared.queue.close();
        for worker in workers {
            worker.join().expect("store worker panicked");
        }
        let shared = Arc::into_inner(shared).expect("workers joined, no other owners");
        // Cache counters here are server-lifetime totals, so `prepare`
        // warm-ups count too; callers measuring a serving window should
        // snapshot `cache_stats()` and subtract.
        let (hits, misses) = shared.cache.stats();
        let exec = shared
            .sink
            .into_report(shared.conflicts.load(Ordering::Relaxed), hits, misses);
        let snap = shared.store.snapshot();
        ServerReport {
            exec,
            events: shared.store.history().events(),
            final_db: snap.db,
            final_version: snap.version,
            templates: shared.cache.templates(),
            cache: shared.cache.cache_stats(),
        }
    }
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer")
            .field("workers", &self.workers.len())
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

/// Everything a shut-down server leaves behind: the aggregated execution
/// report, the full history, the final state, and the statement templates —
/// exactly the inputs [`audit`](crate::audit::audit) needs (callers supply
/// their own `programs` map, since only they know what they submitted).
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Per-transaction outcomes and pipeline counters.
    pub exec: ExecReport,
    /// The complete history log.
    pub events: Vec<Event>,
    /// The final state.
    pub final_db: Arc<Database>,
    /// The final store version.
    pub final_version: u64,
    /// Statement shapes by id (survives guard-cache eviction).
    pub templates: BTreeMap<u64, Template>,
    /// Final guard-cache counters.
    pub cache: CacheStats,
}
