//! Horizontal scale-out: relation-partitioned shard stores behind a
//! footprint router, with cross-shard two-phase commit.
//!
//! A [`ShardedStore`] partitions the schema's relations across `N`
//! independent [`StoreServer`]s — each with its own worker pool, guard
//! cache, versioned store, WAL directory, and group-commit flusher — and
//! routes every submitted transaction by its *relation footprint* (the
//! reads ∪ writes of its compiled statement shape):
//!
//! * **Single-shard** transactions (the overwhelming majority under a
//!   partitionable workload) are enqueued on their shard's ordinary
//!   submission queue and take exactly the monolithic commit path — same
//!   worker loop, same optimistic validation, same WAL append, same
//!   group-commit fsync. No new synchronization is on that path at all;
//!   shards share *nothing*, which is what makes disjoint-footprint
//!   throughput scale with the shard count.
//! * **Cross-shard** transactions run an inline two-phase commit driven by
//!   the submitting thread: prepare (hold the footprint on every touched
//!   shard and take its snapshot), decide (evaluate the *global* guard on
//!   the union snapshot, run the program, append one durable
//!   [`DecisionRecord`] to the coordinator's decision log), then commit a
//!   shard-local delta on each written shard (an atomic
//!   [`Event::Cross`] record carrying the decision id).
//!
//! ## Why the split is sound
//!
//! [`ShardedBuilder::build`] refuses any configuration it cannot prove
//! partitionable: every top-level conjunct of the constraint `α` must (a)
//! use relations of a single shard and (b) be domain-independent. Under
//! (a)+(b), a transaction that touches only shard `S` can neither change
//! the truth of another shard's conjuncts (their relations are untouched,
//! and by (b) their truth does not depend on the ambient domain) nor needs
//! them in its own guard (the invariant-reduced guard of an untouched,
//! invariant conjunct is `true`), so the shard-local guard over shard-local
//! state decides exactly what the global guard over global state would.
//! Cross-shard transactions do evaluate the full global guard — on a union
//! snapshot assembled from the prepared shards' relation handles, which
//! the holds keep stable until the decision.
//!
//! ## Crash windows and recovery
//!
//! Holds are in-memory only and the decision append+fsync is the single
//! commit point, which yields presumed-abort 2PC:
//!
//! | crash window                     | recovery outcome                   |
//! |----------------------------------|------------------------------------|
//! | after prepare, before decision   | holds vanish; nothing durable —    |
//! |                                  | the transaction aborted            |
//! | after decision fsync, before any | decision log wins: every branch is |
//! | shard commit                     | rolled forward into its shard WAL  |
//! | between shard commits            | missing branches rolled forward;   |
//! |                                  | present ones verified as-is        |
//! | after all shard commits          | nothing to do                      |
//!
//! Roll-forward re-applies the decision's ground delta program to the
//! recovered shard state and appends the missing [`Event::Cross`] (plus
//! any unseen shape declaration) to the shard's log; the subsequent
//! [`StoreBuilder::recover`] then replays and hash-verifies the appended
//! records like any other tail — a rolled-forward branch passes the same
//! cold audit as a live one. Roll-forward is safe to append at the log's
//! end because a decision's holds release only after its shard append:
//! no later commit conflicting with the missing branch can exist.
//!
//! Pending decisions replay in decision-log **append** order, not id
//! order: ids are allocated before the prepare loop, so a coordinator
//! that waited out another's holds appends its (lower-id) decision after
//! the (higher-id) one it waited for. Append order is the order holds
//! released — the real conflict order — and replaying any other order
//! could reconstruct a state the coordinators never decided.
//!
//! The `decisions/applied-through` watermark (written at clean shutdown,
//! *before* the shard checkpoints GC their segments) records the decision
//! id below which every branch is known applied, so recovery never
//! re-examines decisions whose `Cross` records have been retired by
//! checkpoint retention.

use crate::audit::{cold_audit_from, AuditReport};
use crate::guard::PreparedTx;
use crate::history::{root_hash, Event};
use crate::server::{RetryPolicy, ServerReport, StoreBuilder, StoreServer};
use crate::session::TxTicket;
use crate::snapshot::{CommitRequest, Snapshot};
use crate::wal::{
    self, DecisionBranch, DecisionRecord, Record, RecoveryOptions, WalOptions, WalWriter,
};
use crate::{metrics::names, AbortReason, GuardCache, StoreError};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use vpdt_eval::{holds, Omega};
use vpdt_logic::{domain::is_domain_independent, Elem, Formula, Schema};
use vpdt_obs::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use vpdt_structure::Database;
use vpdt_tx::program::Program;
use vpdt_tx::template::canonicalize;
use vpdt_tx::traits::normalize_domain;

/// Session id recorded for transactions that arrived through the sharded
/// router rather than a shard-local [`Session`](crate::Session) when the
/// caller does not supply one (see [`ShardedStore::submit`]).
pub const ROUTED_SESSION: u64 = u64::MAX;

/// Name of the watermark file in the decision log directory: the decision
/// id below which every branch is known applied (exclusive bound).
const WATERMARK_FILE: &str = "applied-through";

/// Round-robin relation → shard assignment in schema order: relation `i`
/// of the schema lands on shard `i mod shards`.
pub fn stripe_assignment(schema: &Schema, shards: usize) -> BTreeMap<String, usize> {
    schema
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.to_string(), i % shards))
        .collect()
}

/// Splits `α` into per-shard constraints, refusing anything the sharded
/// guard argument does not cover: every top-level conjunct must use
/// relations of one shard only and be domain-independent (see the module
/// docs for why both are load-bearing). Relation-free conjuncts land on
/// shard 0.
fn partition_constraint(
    alpha: &Formula,
    assignment: &BTreeMap<String, usize>,
    shards: usize,
) -> Result<Vec<Formula>, StoreError> {
    let mut per_shard: Vec<Vec<Formula>> = vec![Vec::new(); shards];
    for conjunct in alpha.conjuncts() {
        if !is_domain_independent(conjunct) {
            return Err(StoreError::Unshardable {
                detail: format!(
                    "constraint conjunct `{conjunct}` is not domain-independent; its truth \
                     could depend on elements held by other shards"
                ),
            });
        }
        let rels = conjunct.relations_used();
        let mut owners: BTreeSet<usize> = BTreeSet::new();
        for rel in &rels {
            match assignment.get(rel) {
                Some(&s) => {
                    owners.insert(s);
                }
                None => {
                    return Err(StoreError::Unshardable {
                        detail: format!("constraint uses unknown relation {rel}"),
                    })
                }
            }
        }
        match owners.len() {
            0 => per_shard[0].push(conjunct.clone()),
            1 => {
                let s = *owners.iter().next().expect("len checked");
                per_shard[s].push(conjunct.clone());
            }
            _ => {
                return Err(StoreError::Unshardable {
                    detail: format!(
                        "constraint conjunct `{conjunct}` spans relations of {} shards \
                         ({rels:?}); co-locate them or keep the store monolithic",
                        owners.len()
                    ),
                })
            }
        }
    }
    Ok(per_shard.into_iter().map(Formula::and).collect())
}

/// Where a sharded store's state comes from.
#[derive(Clone, Debug)]
enum ShardSource {
    Fresh {
        initial: Database,
        alpha: Formula,
        shards: usize,
        persist_root: Option<PathBuf>,
    },
    Recover {
        root: PathBuf,
    },
}

/// Configuration for a [`ShardedStore`]: the monolithic knobs, applied
/// per shard, plus the shard count and the persistence root (under which
/// each shard gets `shard-N/` and the coordinator gets `decisions/`).
#[derive(Clone, Debug)]
pub struct ShardedBuilder {
    source: ShardSource,
    omega: Omega,
    workers_per_shard: usize,
    cache_capacity: usize,
    retry: RetryPolicy,
    wal_opts: WalOptions,
    trace_capacity: usize,
}

impl ShardedBuilder {
    /// A builder partitioning `initial` (and the conjuncts of `alpha`)
    /// across `shards` stores by round-robin relation striping.
    pub fn new(initial: Database, alpha: Formula, shards: usize) -> Self {
        ShardedBuilder {
            source: ShardSource::Fresh {
                initial,
                alpha,
                shards: shards.max(1),
                persist_root: None,
            },
            omega: Omega::empty(),
            workers_per_shard: 4,
            cache_capacity: crate::guard::DEFAULT_CAPACITY,
            retry: RetryPolicy::unbounded(),
            wal_opts: WalOptions::default(),
            trace_capacity: 0,
        }
    }

    /// A builder that recovers a persisted sharded store from `root`
    /// (shard count auto-detected from the `shard-N/` directories). This
    /// is where cross-shard roll-forward happens: decisions durable in
    /// `root/decisions` but missing from a shard's log are re-applied
    /// before the shard recovers — see the module docs' crash-window
    /// table.
    pub fn recover(root: impl Into<PathBuf>) -> Self {
        ShardedBuilder {
            source: ShardSource::Recover { root: root.into() },
            omega: Omega::empty(),
            workers_per_shard: 4,
            cache_capacity: crate::guard::DEFAULT_CAPACITY,
            retry: RetryPolicy::unbounded(),
            wal_opts: WalOptions::default(),
            trace_capacity: 0,
        }
    }

    /// The Ω interpretation (default: empty).
    pub fn omega(mut self, omega: Omega) -> Self {
        self.omega = omega;
        self
    }

    /// Worker threads *per shard* (default: 4, minimum 1).
    pub fn workers_per_shard(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers.max(1);
        self
    }

    /// Per-shard guard-cache LRU budget.
    pub fn guard_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// The conflict [`RetryPolicy`], used by every shard's workers *and*
    /// by the coordinator's prepare loop when a footprint is held.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Per-shard transaction-trace ring capacity (default 0: tracing off —
    /// sharded deployments are throughput-oriented).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Makes the store durable under `root`: shard `i` logs to
    /// `root/shard-i/`, the coordinator's decision log lives in
    /// `root/decisions/`. Ignored by the recover path (which always
    /// resumes its own root).
    pub fn persist(mut self, root: impl Into<PathBuf>) -> Self {
        if let ShardSource::Fresh { persist_root, .. } = &mut self.source {
            *persist_root = Some(root.into());
        }
        self
    }

    /// [`persist`](Self::persist) with explicit [`WalOptions`] (applied to
    /// every shard log and the decision log; also governs resumed logs on
    /// the recover path).
    pub fn persist_with(self, root: impl Into<PathBuf>, opts: WalOptions) -> Self {
        self.persist(root).wal_options(opts)
    }

    /// Sets the [`WalOptions`] without changing where (or whether) the
    /// store persists.
    pub fn wal_options(mut self, opts: WalOptions) -> Self {
        self.wal_opts = opts;
        self
    }

    /// Builds the sharded store: validates the partition, establishes each
    /// shard's base case, spawns every shard's worker pool — or, for a
    /// [`recover`](Self::recover) source, rolls decided-but-unapplied
    /// cross-shard branches forward and recovers every shard with full
    /// hash and provenance verification.
    pub fn build(self) -> Result<ShardedStore, StoreError> {
        match self.source.clone() {
            ShardSource::Fresh {
                initial,
                alpha,
                shards,
                persist_root,
            } => self.build_fresh(initial, alpha, shards, persist_root),
            ShardSource::Recover { root } => self.build_recover(root),
        }
    }

    fn shard_builder(&self, initial_or_dir: Result<(Database, Formula), &Path>) -> StoreBuilder {
        let b = match initial_or_dir {
            Ok((db, alpha)) => StoreBuilder::new(db, alpha),
            Err(dir) => StoreBuilder::recover(dir),
        };
        b.omega(self.omega.clone())
            .workers(self.workers_per_shard)
            .guard_cache_capacity(self.cache_capacity)
            .retry_policy(self.retry.clone())
            .trace_capacity(self.trace_capacity)
            .wal_options(self.wal_opts.clone())
    }

    fn build_fresh(
        self,
        initial: Database,
        alpha: Formula,
        shards: usize,
        persist_root: Option<PathBuf>,
    ) -> Result<ShardedStore, StoreError> {
        let schema = initial.schema().clone();
        let rel_count = schema.iter().count();
        if shards > rel_count {
            return Err(StoreError::Unshardable {
                detail: format!(
                    "{shards} shards over {rel_count} relations: every shard needs at least \
                     one relation"
                ),
            });
        }
        let assignment = stripe_assignment(&schema, shards);
        let alphas = partition_constraint(&alpha, &assignment, shards)?;

        let mut servers = Vec::with_capacity(shards);
        for (s, shard_alpha) in alphas.into_iter().enumerate() {
            let rels: Vec<(String, usize)> = schema
                .iter()
                .filter(|(name, _)| assignment[*name] == s)
                .map(|(name, arity)| (name.to_string(), arity))
                .collect();
            let mut db = Database::empty(Schema::new(rels.iter().cloned()));
            for (rel, _) in &rels {
                db.set_rel_handle(rel, initial.rel_handle(rel));
            }
            let db = normalize_domain(db);
            let mut builder = self.shard_builder(Ok((db, shard_alpha)));
            if let Some(root) = &persist_root {
                builder = builder.persist(root.join(format!("shard-{s}")));
            }
            servers.push(builder.build()?);
        }
        let decisions = persist_root
            .as_ref()
            .map(|root| WalWriter::create(root.join("decisions"), self.wal_opts.clone()))
            .transpose()?
            .map(Mutex::new);

        Ok(ShardedStore::assemble(
            servers,
            assignment,
            schema,
            alpha,
            self.omega,
            self.cache_capacity,
            self.retry,
            decisions,
            persist_root,
            0,
            0,
        ))
    }

    fn build_recover(self, root: PathBuf) -> Result<ShardedStore, StoreError> {
        let dirs = shard_dirs(&root)?;
        let decisions_dir = root.join("decisions");
        let decisions = read_decisions(&decisions_dir)?;
        let watermark = read_watermark(&decisions_dir);
        let pending: Vec<&DecisionRecord> =
            decisions.iter().filter(|d| d.id >= watermark).collect();

        let mut servers = Vec::with_capacity(dirs.len());
        for (s, dir) in dirs.iter().enumerate() {
            roll_forward_shard(dir, s as u32, &pending, &self.omega, &self.wal_opts)?;
            servers.push(self.shard_builder(Err(dir)).build()?);
        }

        // Reconstruct the global view from the recovered shards: the
        // assignment is whatever each shard's checkpoint says it owns, and
        // the global constraint is the conjunction of the shard
        // constraints (which is exactly how it was partitioned).
        let mut assignment = BTreeMap::new();
        let mut rels: Vec<(String, usize)> = Vec::new();
        for (s, server) in servers.iter().enumerate() {
            for (name, arity) in server.schema().iter() {
                assignment.insert(name.to_string(), s);
                rels.push((name.to_string(), arity));
            }
        }
        rels.sort();
        let schema = Schema::new(rels);
        let alpha = Formula::and(servers.iter().map(|s| s.alpha().clone()));

        let (writer, _) = WalWriter::resume(&decisions_dir, self.wal_opts.clone())?;
        // `decisions` is in append order, and neither ids nor tx ids are
        // monotone in it (both are allocated before the log lock), so take
        // explicit maxima rather than trusting the tail record.
        let next_decision = decisions
            .iter()
            .map(|d| d.id + 1)
            .max()
            .unwrap_or(0)
            .max(watermark);
        let next_cross_tx = decisions.iter().map(|d| d.tx + 1).max().unwrap_or(0);

        Ok(ShardedStore::assemble(
            servers,
            assignment,
            schema,
            alpha,
            self.omega,
            self.cache_capacity,
            self.retry,
            Some(Mutex::new(writer)),
            Some(root),
            next_decision,
            next_cross_tx,
        ))
    }
}

/// Where the router sent a submission.
#[derive(Debug)]
pub enum Routed {
    /// The footprint fit one shard: enqueued on that shard's ordinary
    /// pipeline; resolve through the ticket exactly as on a monolithic
    /// server.
    Single {
        /// The owning shard's index.
        shard: usize,
        /// The shard-local ticket.
        ticket: TxTicket,
    },
    /// The footprint spanned shards: executed inline as a two-phase
    /// commit, already resolved.
    Cross(CrossOutcome),
}

/// How an inline cross-shard transaction ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrossOutcome {
    /// Every written shard committed its branch.
    Committed {
        /// The durable decision id (dense but not gapless: aborted and
        /// read-only decisions consume ids without a record).
        decision: u64,
        /// `(shard, new shard version)` per written shard; empty when the
        /// transaction turned out to be a no-op or read-only.
        versions: Vec<(u32, u64)>,
    },
    /// The global guard failed on the union snapshot: committing would
    /// have violated `α`.
    Aborted {
        /// Why (the version is the highest prepared shard version).
        reason: AbortReason,
    },
}

/// Debug crash points inside the cross-shard commit path (test hook): the
/// coordinator returns [`StoreError::DebugCrashPoint`] at the chosen
/// window, leaving exactly the state a crash there would.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossCrashPoint {
    /// No injection (the default).
    None = 0,
    /// After every shard is prepared (held), before the decision append.
    AfterPrepare = 1,
    /// After the decision record is durable, before any shard commit.
    AfterDecision = 2,
    /// After the first branch commit, before the remaining ones.
    BetweenShardCommits = 3,
}

/// One cross-shard branch, fully planned before the decision is appended.
struct PlannedBranch {
    shard: usize,
    tx: u64,
    based_on: u64,
    delta: Program,
    writes: BTreeSet<String>,
    shape: u64,
    bindings: Vec<Elem>,
    new_db: Database,
}

/// A relation-partitioned store: `N` independent shard servers, a
/// footprint router, and an inline two-phase-commit coordinator. See the
/// module docs for the architecture and the soundness argument.
pub struct ShardedStore {
    shards: Vec<StoreServer>,
    assignment: BTreeMap<String, usize>,
    schema: Schema,
    /// The *global* guard cache: classification (every submission) and
    /// cross-shard guard evaluation (rare) both go through it. Compiled
    /// over the full schema and the unpartitioned `α`.
    router: GuardCache,
    omega: Omega,
    retry: RetryPolicy,
    /// The coordinator's decision log (`None` on an in-memory store).
    decisions: Option<Mutex<WalWriter>>,
    root: Option<PathBuf>,
    next_decision: AtomicU64,
    next_cross_tx: AtomicU64,
    next_session: AtomicU64,
    registry: Arc<MetricsRegistry>,
    cross_committed: Counter,
    cross_aborted: Counter,
    cross_prepare_retries: Counter,
    cross_prepare_us: Histogram,
    cross_decide_us: Histogram,
    cross_total_us: Histogram,
    crash_point: AtomicU8,
    /// Whether a debug crash point actually fired: the store may then hold
    /// a durable-but-unapplied decision, and [`shutdown`](Self::shutdown)
    /// must refuse to advance the watermark over it.
    crash_fired: AtomicBool,
}

impl ShardedStore {
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        shards: Vec<StoreServer>,
        assignment: BTreeMap<String, usize>,
        schema: Schema,
        alpha: Formula,
        omega: Omega,
        cache_capacity: usize,
        retry: RetryPolicy,
        decisions: Option<Mutex<WalWriter>>,
        root: Option<PathBuf>,
        next_decision: u64,
        next_cross_tx: u64,
    ) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let router = GuardCache::with_metrics(
            schema.clone(),
            alpha,
            omega.clone(),
            cache_capacity,
            &registry,
        );
        ShardedStore {
            shards,
            assignment,
            schema,
            router,
            omega,
            retry,
            decisions,
            root,
            next_decision: AtomicU64::new(next_decision),
            next_cross_tx: AtomicU64::new(next_cross_tx),
            next_session: AtomicU64::new(1),
            cross_committed: registry.counter(names::CROSS_COMMITTED),
            cross_aborted: registry.counter(names::CROSS_ABORTED),
            cross_prepare_retries: registry.counter(names::CROSS_PREPARE_RETRIES),
            cross_prepare_us: registry.histogram(names::CROSS_STAGE_PREPARE),
            cross_decide_us: registry.histogram(names::CROSS_STAGE_DECIDE),
            cross_total_us: registry.histogram(names::CROSS_TOTAL),
            crash_point: AtomicU8::new(CrossCrashPoint::None as u8),
            crash_fired: AtomicBool::new(false),
            registry,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s server (sessions opened directly on it bypass the
    /// router — fine for workloads the caller knows are shard-local).
    pub fn shard(&self, i: usize) -> &StoreServer {
        &self.shards[i]
    }

    /// The relation → shard assignment.
    pub fn assignment(&self) -> &BTreeMap<String, usize> {
        &self.assignment
    }

    /// The global schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Opens a routed session: just a fresh provenance id to pass to
    /// [`submit`](Self::submit) (sessions here carry no server state).
    pub fn session(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// The coordinator's metrics (cross-shard counters and stage
    /// latencies, plus the router cache's hit/miss counters). Per-shard
    /// pipeline metrics live on each shard's own registry
    /// ([`StoreServer::metrics`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Warm-up: compiles `program`'s guard where [`submit`](Self::submit)
    /// would — the owning shard's cache for a single-shard footprint, the
    /// router's global cache for a cross-shard one — without executing
    /// anything. The sharded analogue of [`StoreServer::prepare`].
    /// (Cross-shard branch deltas are ground per-shard programs derived
    /// from the run, so they cannot be pre-warmed here.)
    pub fn prepare(&self, program: &Program) -> Result<(), StoreError> {
        match self.classify(program)? {
            Some(shard) => self.shards[shard].prepare(program),
            None => self.router.get_or_compile(program).map(|_| ()),
        }
    }

    /// Syntactic footprint routing: the single owning shard, or `None`
    /// for a cross-shard footprint. Classification never compiles a
    /// guard — it walks the program text for written and read relations.
    /// That is exact at shard granularity: the partitioner admitted only
    /// constraints whose every conjunct lives on one shard, so the
    /// compiled guard of a transaction can only read relations co-located
    /// with the relations the program itself touches.
    fn classify(&self, program: &Program) -> Result<Option<usize>, StoreError> {
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for rel in program.touched_relations().union(&program.read_relations()) {
            match self.assignment.get(rel) {
                Some(&s) => {
                    touched.insert(s);
                }
                None => {
                    return Err(StoreError::Unshardable {
                        detail: format!("relation {rel} is not assigned to any shard"),
                    })
                }
            }
        }
        Ok(if touched.len() <= 1 {
            Some(touched.into_iter().next().unwrap_or(0))
        } else {
            None
        })
    }

    /// Test hook: make the next cross-shard commit stop at `point` as if
    /// the process had crashed there (holds left held, later phases
    /// skipped). One-shot per set; `CrossCrashPoint::None` disarms. Once a
    /// point has *fired*, the store must be dropped and recovered, not
    /// [`shutdown`](Self::shutdown) — see there.
    #[doc(hidden)]
    pub fn debug_set_crash_point(&self, point: CrossCrashPoint) {
        self.crash_point.store(point as u8, Ordering::Relaxed);
    }

    fn crash_at(&self, point: CrossCrashPoint) -> bool {
        let fires = self.crash_point.load(Ordering::Relaxed) == point as u8;
        if fires {
            self.crash_fired.store(true, Ordering::Relaxed);
        }
        fires
    }

    /// Submits one program under `session` provenance: classifies its
    /// footprint (syntactically — see [`classify`](Self::classify)), then
    /// either enqueues it on its single owning shard (returning the
    /// ticket) or runs the cross-shard two-phase commit inline (returning
    /// the resolved outcome). The single-shard fast path adds no work the
    /// unsharded store doesn't do: no global guard compile, no
    /// coordinator state — the shard's own pipeline handles everything.
    /// Use [`ROUTED_SESSION`] when sessions don't matter.
    pub fn submit(&self, session: u64, program: Program) -> Result<Routed, StoreError> {
        if let Some(shard) = self.classify(&program)? {
            let ticket = self.shards[shard].enqueue(session, program);
            return Ok(Routed::Single { shard, ticket });
        }
        // Cross-shard: only now is the *global* guard needed — wpc of the
        // whole program against the whole constraint, evaluated on the
        // union snapshot during the decide phase.
        let prepared = self.router.get_or_compile(&program)?;
        let started_ns = self.registry.now_ns();
        let outcome = self.commit_cross(program, &prepared);
        match &outcome {
            Ok(CrossOutcome::Committed { .. }) => {
                self.cross_committed.inc();
                self.cross_total_us
                    .observe(self.registry.now_ns().saturating_sub(started_ns) / 1_000);
            }
            Ok(CrossOutcome::Aborted { .. }) => self.cross_aborted.inc(),
            Err(_) => {}
        }
        outcome.map(Routed::Cross)
    }

    /// The inline two-phase commit. Phases are annotated with the crash
    /// window they end (see the module docs' recovery table).
    fn commit_cross(
        &self,
        program: Program,
        prepared: &PreparedTx,
    ) -> Result<CrossOutcome, StoreError> {
        let decision = self.next_decision.fetch_add(1, Ordering::Relaxed);
        let mut footprint: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        for rel in prepared.reads().iter().chain(prepared.writes().iter()) {
            footprint
                .entry(self.assignment[rel])
                .or_default()
                .insert(rel.clone());
        }

        // Prepare: hold every shard's slice of the footprint, ascending
        // shard order, all-or-release (non-blocking holds cannot
        // deadlock; a busy footprint backs off under the retry policy).
        let prepare_started = self.registry.now_ns();
        let mut snaps: BTreeMap<usize, Snapshot> = BTreeMap::new();
        let mut retries = 0u32;
        loop {
            let mut blocked = false;
            for (&s, rels) in &footprint {
                match self.shards[s].store().prepare_hold(decision, rels) {
                    Some(snap) => {
                        snaps.insert(s, snap);
                    }
                    None => {
                        blocked = true;
                        break;
                    }
                }
            }
            if !blocked {
                break;
            }
            self.release_all(decision, &snaps);
            snaps.clear();
            self.cross_prepare_retries.inc();
            if !self.retry.may_retry(retries) {
                return Err(StoreError::RetriesExhausted {
                    retries,
                    version: 0,
                    relations: footprint.values().flatten().cloned().collect(),
                });
            }
            retries += 1;
            self.retry.backoff(retries);
            std::thread::yield_now();
        }
        if self.crash_at(CrossCrashPoint::AfterPrepare) {
            return Err(StoreError::DebugCrashPoint);
        }

        // The union snapshot: the full schema with every touched shard's
        // relation handles swapped in (untouched shards' relations stay
        // empty — the guard's reads are within the footprint by
        // construction, and its domain-independence makes the missing
        // domain elements irrelevant).
        let mut union = Database::empty(self.schema.clone());
        for (rel, &s) in &self.assignment {
            if let Some(snap) = snaps.get(&s) {
                union.set_rel_handle(rel, snap.db.rel_handle(rel));
            }
        }
        let union = normalize_domain(union);
        self.cross_prepare_us
            .observe(self.registry.now_ns().saturating_sub(prepare_started) / 1_000);

        // Decide: global guard on the union, then run, then the durable
        // decision record.
        let decide_started = self.registry.now_ns();
        let pass = match holds(&union, &self.omega, &prepared.guard) {
            Ok(p) => p,
            Err(e) => {
                self.release_all(decision, &snaps);
                return Err(StoreError::Eval(e));
            }
        };
        if !pass {
            let version = snaps.values().map(|s| s.version).max().unwrap_or(0);
            self.release_all(decision, &snaps);
            return Ok(CrossOutcome::Aborted {
                reason: AbortReason::GuardFailed {
                    version,
                    shape: prepared.shape.id,
                },
            });
        }
        let post = match program.run(&union, &self.omega).map(normalize_domain) {
            Ok(db) => db,
            Err(e) => {
                self.release_all(decision, &snaps);
                return Err(StoreError::Tx(e));
            }
        };

        // Split the post-state into per-shard ground delta programs and
        // plan every fallible step (canonicalize, compile, shape
        // declaration, branch state) *before* the decision is appended —
        // after the append there is no abort path, only roll-forward.
        let mut planned: Vec<PlannedBranch> = Vec::new();
        for (&s, snap) in &snaps {
            let mut stmts: Vec<Program> = Vec::new();
            let mut writes: BTreeSet<String> = BTreeSet::new();
            for rel in prepared.writes() {
                if self.assignment[rel] != s {
                    continue;
                }
                let pre = snap.db.rel(rel);
                let post_rel = post.rel(rel);
                for t in pre.iter() {
                    if !post_rel.contains(t) {
                        stmts.push(Program::delete_consts(rel.clone(), t.iter().map(|e| e.0)));
                        writes.insert(rel.clone());
                    }
                }
                for t in post_rel.iter() {
                    if !pre.contains(t) {
                        stmts.push(Program::insert_consts(rel.clone(), t.iter().map(|e| e.0)));
                        writes.insert(rel.clone());
                    }
                }
            }
            if stmts.is_empty() {
                continue;
            }
            let delta = if stmts.len() == 1 {
                stmts.pop().expect("len checked")
            } else {
                Program::seq(stmts)
            };
            let new_db = match delta.run(&snap.db, &self.omega).map(normalize_domain) {
                Ok(db) => db,
                Err(e) => {
                    self.release_all(decision, &snaps);
                    return Err(StoreError::Tx(e));
                }
            };
            let shard_prep = match self.shards[s].cache().get_or_compile(&delta) {
                Ok(p) => p,
                Err(e) => {
                    self.release_all(decision, &snaps);
                    return Err(e);
                }
            };
            // Durable provenance on the shard: its log must resolve the
            // Cross record's (shape, bindings) on a cold recovery.
            self.shards[s]
                .store()
                .history()
                .declare_shape(shard_prep.shape.id, &shard_prep.shape.template);
            planned.push(PlannedBranch {
                shard: s,
                tx: self.shards[s].reserve_tx(),
                based_on: snap.version,
                delta,
                writes,
                shape: shard_prep.shape.id,
                bindings: shard_prep.bindings,
                new_db,
            });
        }
        if planned.is_empty() {
            // Read-only or no-op across shards: decided trivially, nothing
            // durable to record.
            self.release_all(decision, &snaps);
            return Ok(CrossOutcome::Committed {
                decision,
                versions: Vec::new(),
            });
        }

        // The commit point: the decision record reaches stable storage.
        // Failures here are fail-stop, like any serving-path log failure.
        if let Some(log) = &self.decisions {
            let record = DecisionRecord {
                id: decision,
                tx: self.next_cross_tx.fetch_add(1, Ordering::Relaxed),
                branches: planned
                    .iter()
                    .map(|b| DecisionBranch {
                        shard: b.shard as u32,
                        tx: b.tx,
                        based_on: b.based_on,
                        program: b.delta.clone(),
                    })
                    .collect(),
            };
            let mut writer = log.lock().expect("decision log poisoned");
            writer
                .append(&Record::Decision(record))
                .expect("decision log append failed; refusing to continue non-durably");
            writer
                .sync()
                .expect("decision log fsync failed; refusing to continue non-durably");
        }
        self.cross_decide_us
            .observe(self.registry.now_ns().saturating_sub(decide_started) / 1_000);
        if self.crash_at(CrossCrashPoint::AfterDecision) {
            return Err(StoreError::DebugCrashPoint);
        }

        // Decided: read-only shards have nothing to apply — release them
        // now so their traffic resumes while the written shards commit.
        for &s in snaps.keys() {
            if !planned.iter().any(|b| b.shard == s) {
                self.shards[s].store().abort_prepared(decision);
            }
        }

        // Commit each branch: one atomic Cross record per shard, fsync'd
        // inline (Cross records bypass the group-commit watermark).
        let mut versions = Vec::with_capacity(planned.len());
        for (i, b) in planned.into_iter().enumerate() {
            let req = CommitRequest {
                tx: b.tx,
                based_on: b.based_on,
                reads: BTreeSet::new(),
                writes: b.writes,
                shape: b.shape,
                bindings: b.bindings,
                new_db: b.new_db,
                encoded: None,
            };
            let (version, _offset) = self.shards[b.shard].store().commit_prepared(decision, req);
            self.shards[b.shard]
                .sync_wal()
                .expect("shard log fsync failed after a cross-shard commit");
            versions.push((b.shard as u32, version));
            if i == 0 && self.crash_at(CrossCrashPoint::BetweenShardCommits) {
                return Err(StoreError::DebugCrashPoint);
            }
        }
        Ok(CrossOutcome::Committed { decision, versions })
    }

    fn release_all(&self, decision: u64, snaps: &BTreeMap<usize, Snapshot>) {
        for &s in snaps.keys() {
            self.shards[s].store().abort_prepared(decision);
        }
    }

    /// Shuts every shard down (drain, join, clean checkpoint) and closes
    /// the coordinator. The watermark advances *before* the shard
    /// checkpoints can GC any segment, so recovery never confuses a
    /// retired `Cross` record with a missing one. Consuming `self`
    /// guarantees no cross-shard commit is in flight.
    ///
    /// # Panics
    ///
    /// After a [`CrossCrashPoint`] has fired, the store may hold a
    /// durable decision whose branches never applied; advancing the
    /// watermark (and letting the shard checkpoints GC segments) would
    /// mark it applied forever, so this refuses. Drop the store and
    /// [`ShardedBuilder::recover`] from its root instead — exactly what a
    /// real crash requires.
    pub fn shutdown(self) -> ShardedReport {
        assert!(
            !self.crash_fired.load(Ordering::Relaxed),
            "shutdown() after a DebugCrashPoint would mark a durable-but-unapplied \
             decision as applied; drop the store and recover from its root instead"
        );
        let decisions_issued = self.next_decision.load(Ordering::Relaxed);
        if let Some(log) = &self.decisions {
            log.lock()
                .expect("decision log poisoned")
                .sync()
                .expect("decision log flush at shutdown failed");
        }
        if let (Some(root), Some(_)) = (&self.root, &self.decisions) {
            write_watermark(&root.join("decisions"), decisions_issued)
                .expect("writing the applied-through watermark failed");
        }
        let shards: Vec<ServerReport> = self.shards.into_iter().map(|s| s.shutdown()).collect();
        ShardedReport {
            shards,
            coordinator: self.registry.snapshot(),
            assignment: self.assignment,
            decisions: decisions_issued,
        }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("relations", &self.assignment.len())
            .finish_non_exhaustive()
    }
}

/// Everything a shut-down sharded store leaves behind.
#[derive(Clone, Debug)]
pub struct ShardedReport {
    /// Per-shard reports, in shard order (each is a full
    /// [`ServerReport`]: outcomes, history, final state, flush stats).
    pub shards: Vec<ServerReport>,
    /// The coordinator's metrics snapshot (cross-shard counters, stage
    /// latencies, router-cache counters).
    pub coordinator: MetricsSnapshot,
    /// The relation → shard assignment the store ran with.
    pub assignment: BTreeMap<String, usize>,
    /// Decision ids issued (committed + aborted + read-only).
    pub decisions: u64,
}

// --- recovery --------------------------------------------------------------

/// The `shard-N/` directories under a sharded persistence root, in shard
/// order. Errors when there are none (not a sharded layout).
fn shard_dirs(root: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut dirs = Vec::new();
    loop {
        let dir = root.join(format!("shard-{}", dirs.len()));
        if !dir.is_dir() {
            break;
        }
        dirs.push(dir);
    }
    if dirs.is_empty() {
        return Err(StoreError::Unshardable {
            detail: format!(
                "{} has no shard-0/ directory; not a sharded store layout",
                root.display()
            ),
        });
    }
    Ok(dirs)
}

/// Whether `root` looks like a sharded persistence root (for tools that
/// auto-detect the layout).
pub fn is_sharded_layout(root: &Path) -> bool {
    root.join("shard-0").is_dir() && root.join("decisions").is_dir()
}

/// Reads every decision record in the coordinator's log, in **append
/// order** — deliberately not id order. Ids are allocated at the top of
/// `commit_cross`, before the prepare loop, so a coordinator that waited
/// out another's holds can append a lower id *after* a higher one; the
/// log's append order is the order holds released, i.e. the true conflict
/// order, and roll-forward must replay in it. A torn decision tail is
/// simply absent — exactly presumed-abort.
fn read_decisions(dir: &Path) -> Result<Vec<DecisionRecord>, StoreError> {
    let scan = wal::scan_log(dir).map_err(StoreError::Wal)?;
    Ok(scan
        .records
        .into_iter()
        .filter_map(|r| match r.record {
            Record::Decision(d) => Some(d),
            _ => None,
        })
        .collect())
}

fn read_watermark(dir: &Path) -> u64 {
    std::fs::read_to_string(dir.join(WATERMARK_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Atomically (write + fsync + rename + dir fsync) records that every
/// decision below `through` is applied on every shard.
fn write_watermark(dir: &Path, through: u64) -> std::io::Result<()> {
    let tmp = dir.join(format!("{WATERMARK_FILE}.tmp"));
    std::fs::write(&tmp, format!("{through}\n"))?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, dir.join(WATERMARK_FILE))?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Rolls decided-but-unapplied branches forward into `shard`'s log:
/// replays the recovered state, applies each missing decision's ground
/// delta in decision-log **append order** (the order the decisions' holds
/// released — see [`read_decisions`]; id order can invert it and would
/// reconstruct a state the coordinators never decided), and appends the
/// corresponding [`Event::Cross`] (and any unseen shape declaration).
/// Appending at the tail is sound because the decision's holds blocked
/// every conflicting commit until the branch applied — a branch missing
/// from the log has no successor that contradicts it. Returns how many
/// branches were rolled forward.
fn roll_forward_shard(
    dir: &Path,
    shard: u32,
    pending: &[&DecisionRecord],
    omega: &Omega,
    wal_opts: &WalOptions,
) -> Result<usize, StoreError> {
    let rec = wal::recover(dir, omega, RecoveryOptions::default())?;
    let applied: BTreeSet<u64> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Cross { decision, .. } => Some(*decision),
            _ => None,
        })
        .collect();
    let todo: Vec<(&DecisionRecord, &DecisionBranch)> = pending
        .iter()
        .filter(|d| !applied.contains(&d.id))
        .filter_map(|d| {
            d.branches
                .iter()
                .find(|b| b.shard == shard)
                .map(|b| (*d, b))
        })
        .collect();
    if todo.is_empty() {
        return Ok(0);
    }

    let (mut writer, _logged_shapes) = WalWriter::resume(dir, wal_opts.clone())?;
    let mut shape_ids: BTreeMap<String, u64> =
        rec.templates.iter().map(|(id, t)| (t.key(), *id)).collect();
    let mut next_shape = rec.templates.len() as u64;
    let mut db = rec.db;
    let rolled = todo.len();
    for (version, (d, branch)) in (rec.version + 1..).zip(todo) {
        let (template, bindings) = canonicalize(&branch.program).map_err(StoreError::Tx)?;
        let key = template.key();
        let shape = match shape_ids.get(&key) {
            Some(&id) => id,
            None => {
                let id = next_shape;
                next_shape += 1;
                writer.append(&Record::Shape {
                    id,
                    template: template.clone(),
                })?;
                shape_ids.insert(key, id);
                id
            }
        };
        let new_db = branch
            .program
            .run(&db, omega)
            .map(normalize_domain)
            .map_err(|e| StoreError::Unshardable {
                detail: format!(
                    "decision {} branch for shard {shard} no longer applies: {e}",
                    d.id
                ),
            })?;
        let hash = root_hash(&new_db);
        writer.append(&Record::Event(Event::Cross {
            tx: branch.tx,
            decision: d.id,
            based_on: branch.based_on,
            version,
            writes: branch.program.touched_relations().into_iter().collect(),
            shape,
            bindings,
            root_hash: hash,
        }))?;
        db = new_db;
    }
    writer.sync()?;
    Ok(rolled)
}

// --- sharded cold audit ----------------------------------------------------

/// What [`cold_audit_sharded`] verified.
#[derive(Clone, Debug)]
pub struct ShardedAuditReport {
    /// Per-shard cold-audit reports (replay + hash + provenance of each
    /// shard's own log).
    pub shards: Vec<AuditReport>,
    /// Decision records read from the coordinator log.
    pub decisions: usize,
    /// `Cross` events seen across every shard's replayed tail.
    pub cross_events: usize,
    /// Cross-log consistency problems: a `Cross` event without its
    /// decision, a mismatched branch, or an unapplied decided branch.
    pub problems: Vec<String>,
}

impl ShardedAuditReport {
    /// Whether every shard audit passed and the decision cross-checks
    /// found nothing.
    pub fn ok(&self) -> bool {
        self.problems.is_empty() && self.shards.iter().all(|r| r.ok())
    }
}

/// Cold-audits a persisted sharded store: every shard's log is replayed
/// and verified on its own (the per-shard [`AuditReport`]s), then the
/// coordinator's decision log is cross-checked against the shards'
/// `Cross` records — every `Cross` must reference a durable decision
/// whose branch matches it (tx, based_on, and the delta program's
/// canonical provenance), and every decided branch at or above the
/// watermark must have applied.
pub fn cold_audit_sharded(root: &Path, omega: &Omega) -> Result<ShardedAuditReport, StoreError> {
    let dirs = shard_dirs(root)?;
    let decisions_dir = root.join("decisions");
    let decisions = read_decisions(&decisions_dir)?;
    let watermark = read_watermark(&decisions_dir);
    let by_id: BTreeMap<u64, &DecisionRecord> = decisions.iter().map(|d| (d.id, d)).collect();

    let mut problems = Vec::new();
    let mut shard_reports = Vec::with_capacity(dirs.len());
    let mut cross_events = 0usize;
    let mut applied: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
    for (s, dir) in dirs.iter().enumerate() {
        let rec = wal::recover(dir, omega, RecoveryOptions::default())?;
        shard_reports.push(cold_audit_from(
            &rec.alpha,
            omega,
            rec.base_version,
            &rec.initial,
            &rec.db,
            &rec.events,
            &rec.templates,
        ));
        for e in &rec.events {
            let Event::Cross {
                tx,
                decision,
                based_on,
                shape,
                bindings,
                ..
            } = e
            else {
                continue;
            };
            cross_events += 1;
            applied.entry(*decision).or_default().insert(s as u32);
            let Some(d) = by_id.get(decision) else {
                problems.push(format!(
                    "shard {s}: Cross record for tx {tx} references decision {decision}, \
                     which is not in the decision log"
                ));
                continue;
            };
            let Some(branch) = d.branches.iter().find(|b| b.shard == s as u32) else {
                problems.push(format!(
                    "shard {s}: decision {decision} has no branch for this shard, but a \
                     Cross record claims one"
                ));
                continue;
            };
            if branch.tx != *tx || branch.based_on != *based_on {
                problems.push(format!(
                    "shard {s}: Cross record (tx {tx}, based_on {based_on}) disagrees with \
                     decision {decision}'s branch (tx {}, based_on {})",
                    branch.tx, branch.based_on
                ));
            }
            match (canonicalize(&branch.program), rec.templates.get(shape)) {
                (Ok((template, b)), Some(logged)) => {
                    if template != *logged || b != *bindings {
                        problems.push(format!(
                            "shard {s}: decision {decision}'s branch program does not \
                             canonicalize to the Cross record's (shape {shape}, bindings)"
                        ));
                    }
                }
                (Err(e), _) => problems.push(format!(
                    "shard {s}: decision {decision}'s branch program does not canonicalize: {e}"
                )),
                (_, None) => problems.push(format!(
                    "shard {s}: Cross record references unknown shape {shape}"
                )),
            }
        }
    }
    for d in &decisions {
        if d.id < watermark {
            continue;
        }
        for b in &d.branches {
            let done = applied
                .get(&d.id)
                .map(|shards| shards.contains(&b.shard))
                .unwrap_or(false);
            if !done {
                problems.push(format!(
                    "decision {} is durable but its branch for shard {} never applied \
                     (recovery should have rolled it forward)",
                    d.id, b.shard
                ));
            }
        }
    }
    Ok(ShardedAuditReport {
        shards: shard_reports,
        decisions: decisions.len(),
        cross_events,
        problems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxOutcome;
    use vpdt_logic::parse_formula;

    fn fd2() -> (Database, Formula) {
        let initial = crate::workload::sharded_initial(7, 2, 6, 0.5);
        let alpha = crate::workload::sharded_fd_constraint(2);
        (initial, alpha)
    }

    #[test]
    fn striping_round_robins_in_schema_order() {
        let schema = crate::workload::sharded_schema(5);
        let a = stripe_assignment(&schema, 2);
        assert_eq!(a["R0"], 0);
        assert_eq!(a["R1"], 1);
        assert_eq!(a["R2"], 0);
        assert_eq!(a["R3"], 1);
        assert_eq!(a["R4"], 0);
    }

    #[test]
    fn partitioner_refuses_cross_shard_conjuncts() {
        let schema = crate::workload::sharded_schema(2);
        let assignment = stripe_assignment(&schema, 2);
        let spanning = parse_formula("forall x y. R0(x, y) -> R1(x, y)").expect("parses");
        let err = partition_constraint(&spanning, &assignment, 2).unwrap_err();
        assert!(matches!(err, StoreError::Unshardable { .. }), "{err}");
    }

    #[test]
    fn partitioner_refuses_domain_dependent_conjuncts() {
        let schema = crate::workload::sharded_schema(2);
        let assignment = stripe_assignment(&schema, 2);
        // Totality quantifies over the whole domain — including elements
        // only other shards know about.
        let total = parse_formula("forall x. exists y. R0(x, y)").expect("parses");
        let err = partition_constraint(&total, &assignment, 2).unwrap_err();
        assert!(matches!(err, StoreError::Unshardable { .. }), "{err}");
    }

    #[test]
    fn single_shard_submissions_take_the_ordinary_path() {
        let (initial, alpha) = fd2();
        let store = ShardedBuilder::new(initial, alpha, 2)
            .workers_per_shard(1)
            .build()
            .expect("builds");
        let session = store.session();
        let routed = store
            .submit(session, Program::insert_consts("R1", [100, 101]))
            .expect("routes");
        let Routed::Single { shard, ticket } = routed else {
            panic!("single-relation program must route to one shard");
        };
        assert_eq!(shard, 1, "R1 stripes to shard 1");
        assert!(matches!(ticket.wait(), TxOutcome::Committed { .. }));
        assert!(store
            .shard(1)
            .snapshot()
            .db
            .contains("R1", &[Elem(100), Elem(101)]));
        let report = store.shutdown();
        assert_eq!(report.coordinator.counter(names::CROSS_COMMITTED), 0);
        assert_eq!(report.shards[1].exec.committed, 1);
    }

    #[test]
    fn cross_shard_commit_applies_on_every_written_shard() {
        let (initial, alpha) = fd2();
        let store = ShardedBuilder::new(initial, alpha, 2)
            .workers_per_shard(1)
            .build()
            .expect("builds");
        let program = Program::seq([
            Program::insert_consts("R0", [200, 201]),
            Program::insert_consts("R1", [200, 202]),
        ]);
        let routed = store.submit(ROUTED_SESSION, program).expect("commits");
        let Routed::Cross(CrossOutcome::Committed { versions, .. }) = routed else {
            panic!("two-shard program must take the cross path: {routed:?}");
        };
        assert_eq!(versions.len(), 2, "both shards committed a branch");
        assert!(store
            .shard(0)
            .snapshot()
            .db
            .contains("R0", &[Elem(200), Elem(201)]));
        assert!(store
            .shard(1)
            .snapshot()
            .db
            .contains("R1", &[Elem(200), Elem(202)]));
        // The shard histories carry Cross events referencing one decision.
        for s in 0..2 {
            let events = store.shard(s).history_events();
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, Event::Cross { decision: 0, .. })),
                "shard {s} must log the cross commit"
            );
        }
        let report = store.shutdown();
        assert_eq!(report.coordinator.counter(names::CROSS_COMMITTED), 1);
    }

    #[test]
    fn cross_shard_guard_failure_aborts_and_releases_holds() {
        let (initial, alpha) = fd2();
        let store = ShardedBuilder::new(initial, alpha, 2)
            .workers_per_shard(1)
            .build()
            .expect("builds");
        // Seed a function value, then try to contradict it cross-shard:
        // the global guard must refuse the second mapping for 300.
        let seed = store
            .submit(ROUTED_SESSION, Program::insert_consts("R0", [300, 1]))
            .expect("routes");
        let Routed::Single { ticket, .. } = seed else {
            panic!("seed is single-shard")
        };
        assert!(matches!(ticket.wait(), TxOutcome::Committed { .. }));
        let clash = Program::seq([
            Program::insert_consts("R0", [300, 2]),
            Program::insert_consts("R1", [300, 3]),
        ]);
        let routed = store.submit(ROUTED_SESSION, clash).expect("evaluates");
        assert!(
            matches!(routed, Routed::Cross(CrossOutcome::Aborted { .. })),
            "fd violation must abort: {routed:?}"
        );
        // Holds released: the same footprint commits once it is consistent.
        let ok = Program::seq([
            Program::insert_consts("R0", [301, 2]),
            Program::insert_consts("R1", [300, 3]),
        ]);
        assert!(matches!(
            store.submit(ROUTED_SESSION, ok).expect("commits"),
            Routed::Cross(CrossOutcome::Committed { .. })
        ));
        let report = store.shutdown();
        assert_eq!(report.coordinator.counter(names::CROSS_ABORTED), 1);
        assert_eq!(report.coordinator.counter(names::CROSS_COMMITTED), 1);
    }

    #[test]
    fn cross_shard_noop_commits_trivially() {
        let (initial, alpha) = fd2();
        let store = ShardedBuilder::new(initial, alpha, 2)
            .workers_per_shard(1)
            .build()
            .expect("builds");
        // Deleting tuples that are not there changes nothing on either
        // shard: no branches, no decision record, holds released.
        let noop = Program::seq([
            Program::delete_consts("R0", [400, 401]),
            Program::delete_consts("R1", [400, 401]),
        ]);
        let routed = store.submit(ROUTED_SESSION, noop).expect("commits");
        let Routed::Cross(CrossOutcome::Committed { versions, .. }) = routed else {
            panic!("expected trivial commit: {routed:?}");
        };
        assert!(versions.is_empty());
        assert_eq!(store.shard(0).version(), 0);
        assert_eq!(store.shard(1).version(), 0);
        store.shutdown();
    }

    #[test]
    fn more_shards_than_relations_is_refused() {
        let (initial, alpha) = fd2();
        let err = ShardedBuilder::new(initial, alpha, 9).build().unwrap_err();
        assert!(matches!(err, StoreError::Unshardable { .. }), "{err}");
    }
}
