//! The keyed guard cache: compile once, evaluate everywhere.
//!
//! Guard compilation — program → prerelations → `wpc` → invariant-reduced
//! guard — is the expensive, *per-program-shape* step of the pipeline; the
//! per-transaction step is a single formula evaluation. The cache keys
//! compilations by the program's structure, so a workload of `P` prepared
//! statements pays for `P` compilations regardless of how many transactions
//! run, and worker threads share the compiled guards through `Arc`s.

use crate::StoreError;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use vpdt_core::safe::{compile_guard, GuardCompilation};
use vpdt_eval::Omega;
use vpdt_logic::{Formula, Schema};
use vpdt_tx::program::{Program, ProgramTransaction};

/// A fully prepared transaction: the compilation plus the operational
/// applier and the footprint the store validates against.
#[derive(Clone, Debug)]
pub struct PreparedTx {
    /// The guard compilation (prerelations, wpc, reduced guard, footprint).
    pub compiled: GuardCompilation,
    /// The operational applier (direct program semantics — much cheaper
    /// than applying the prerelation description tuple-by-tuple).
    pub tx: ProgramTransaction,
    /// The footprint validated at commit: the compilation's reads, widened
    /// to the whole schema when the guard could not be shown exact under
    /// disjoint interleaving (see `GuardCompilation::domain_independent`).
    pub reads: BTreeSet<String>,
}

/// A thread-safe cache of [`PreparedTx`]s for one store configuration
/// (schema, constraint `α`, Ω interpretation).
pub struct GuardCache {
    schema: Schema,
    alpha: Formula,
    omega: Omega,
    map: RwLock<HashMap<String, Arc<PreparedTx>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GuardCache {
    /// An empty cache for the given configuration.
    pub fn new(schema: Schema, alpha: Formula, omega: Omega) -> Self {
        assert!(alpha.is_sentence(), "a constraint must be a sentence");
        GuardCache {
            schema,
            alpha,
            omega,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The constraint `α` all guards protect.
    pub fn alpha(&self) -> &Formula {
        &self.alpha
    }

    /// The Ω interpretation guards are evaluated under.
    pub fn omega(&self) -> &Omega {
        &self.omega
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Returns the prepared transaction for `program`, compiling it on
    /// first sight. Concurrent first sights may compile redundantly; the
    /// cache keeps one winner.
    pub fn get_or_compile(&self, program: &Program) -> Result<Arc<PreparedTx>, StoreError> {
        let key = format!("{program:?}");
        if let Some(hit) = self.map.read().expect("guard cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        let compiled = compile_guard("store", program, &self.alpha, &self.schema, &self.omega)?;
        let reads = if compiled.domain_independent {
            compiled.reads.clone()
        } else {
            // Exactness under disjoint interleaving is not established:
            // validate against everything, i.e. serialize.
            self.schema
                .iter()
                .map(|(name, _)| name.to_string())
                .collect()
        };
        let prepared = Arc::new(PreparedTx {
            compiled,
            tx: ProgramTransaction::new("store", program.clone(), self.omega.clone()),
            reads,
        });
        let mut map = self.map.write().expect("guard cache poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(prepared)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::parse_formula;

    fn cache() -> GuardCache {
        GuardCache::new(
            Schema::graph(),
            parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").expect("parses"),
            Omega::empty(),
        )
    }

    #[test]
    fn second_lookup_hits() {
        let c = cache();
        let p = Program::insert_consts("E", [1, 4]);
        let a = c.get_or_compile(&p).expect("compiles");
        let b = c.get_or_compile(&p).expect("compiles");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn distinct_programs_compile_separately() {
        let c = cache();
        c.get_or_compile(&Program::insert_consts("E", [1, 4]))
            .expect("compiles");
        c.get_or_compile(&Program::insert_consts("E", [2, 4]))
            .expect("compiles");
        assert_eq!(c.stats(), (0, 2));
    }

    #[test]
    fn prepared_transactions_cross_threads() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<PreparedTx>();
        assert_bounds::<GuardCache>();
    }
}
