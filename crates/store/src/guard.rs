//! The shape-keyed guard cache: compile once per *statement shape*,
//! instantiate everywhere.
//!
//! Guard compilation — program → prerelations → `wpc` → invariant-reduced
//! guard → Δ — is the expensive step of the pipeline. Keying it by ground
//! program (the previous design) made the cache hold one entry per distinct
//! constant tuple: O(universe²) entries for a binary-insert workload, all
//! sharing a handful of statement shapes. This cache keys by the program's
//! canonicalized [`Template`] instead: a lookup splits the ground program
//! into `(shape, bindings)`, compiles the shape once (placeholder terms flow
//! through the whole pipeline, see `vpdt_core::safe::compile_guard_template`),
//! and instantiates the compiled guard per transaction by a cheap binding
//! substitution. Compilation cost is O(statement shapes) — independent of
//! the domain — and entries are bounded by an LRU budget with per-shape
//! hit/compile statistics.
//!
//! Shape *identities* (ids and templates) are never evicted: they are what
//! the history log records and the audit replays, so an audit must be able
//! to resolve shapes whose compilations have long been evicted.

use crate::metrics::names;
use crate::StoreError;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use vpdt_core::safe::{compile_guard_template, GuardCompilation};
use vpdt_eval::Omega;
use vpdt_logic::{Elem, Formula, Schema};
use vpdt_obs::{Counter, MetricsRegistry};
use vpdt_tx::program::Program;
use vpdt_tx::template::{canonicalize, Template};

/// Default LRU budget: comfortably above any realistic statement menu, low
/// enough that a pathological shape flood (e.g. one-off `InsertWhere`
/// conditions) cannot grow the *compiled* footprint without bound. The
/// shape registry (ids + templates, needed for audit provenance) is
/// append-only and grows with the number of distinct shapes ever seen —
/// small per entry, but a deployment fearing unbounded distinct shapes
/// should bound what it submits, not the cache.
pub const DEFAULT_CAPACITY: usize = 512;

/// One compiled statement shape, shared by every transaction that
/// instantiates it.
#[derive(Clone, Debug)]
pub struct PreparedShape {
    /// Stable shape id (assigned at first successful compile, survives
    /// eviction) — what history events record.
    pub id: u64,
    /// The canonicalized statement template.
    pub template: Template,
    /// The guard compilation over the shape's placeholder terms.
    pub compiled: GuardCompilation,
    /// The footprint validated at commit: the compilation's reads, widened
    /// to the whole schema when the guard could not be shown exact under
    /// disjoint interleaving (see `GuardCompilation::domain_independent`).
    pub reads: BTreeSet<String>,
    /// This shape's hit counter, shared with the registry so cache hits
    /// bump it through the entry they already hold — no registry lock on
    /// the hot path — and the count survives eviction.
    hits: Arc<AtomicU64>,
}

/// A fully prepared transaction: a shared compiled shape plus this
/// transaction's bindings and instantiated guard. The executor applies the
/// ground program it already holds (direct operational semantics), so a
/// cache hit allocates nothing beyond the bindings and the substituted
/// guard.
#[derive(Clone, Debug)]
pub struct PreparedTx {
    /// The compiled shape (shared across threads and transactions).
    pub shape: Arc<PreparedShape>,
    /// The constants this transaction binds the shape's placeholders to.
    pub bindings: Vec<Elem>,
    /// The cheapest sound guard, instantiated with [`bindings`](Self::bindings):
    /// what the executor evaluates per transaction.
    pub guard: Formula,
    /// Whether the shape came from the cache (`true`) or was compiled for
    /// this preparation (`false`) — recorded in the transaction's trace.
    pub cache_hit: bool,
}

impl PreparedTx {
    /// Relations the commit validation must cover.
    pub fn reads(&self) -> &BTreeSet<String> {
        &self.shape.reads
    }

    /// Relations the program may modify.
    pub fn writes(&self) -> &BTreeSet<String> {
        &self.shape.compiled.writes
    }
}

/// Aggregate cache counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served by a live entry.
    pub hits: u64,
    /// Lookups that had to compile (first sight or post-eviction).
    pub misses: u64,
    /// Entries removed by the LRU bound.
    pub evictions: u64,
    /// Live compiled entries (≤ capacity).
    pub entries: usize,
    /// Distinct statement shapes ever seen (never shrinks).
    pub shapes: usize,
}

/// Per-shape counters (survive eviction).
#[derive(Clone, Debug)]
pub struct ShapeStat {
    /// The shape id.
    pub id: u64,
    /// The shape's cache key (its debug form).
    pub key: String,
    /// Lookups of this shape served from cache.
    pub hits: u64,
    /// Times this shape was compiled (> 1 means it was evicted and came
    /// back, or raced on first sight).
    pub compiles: u64,
}

/// The permanent shape registry: ids, templates and per-shape statistics.
/// Append-only — eviction removes compilations, never identities.
#[derive(Default)]
struct Registry {
    by_key: HashMap<String, u64>,
    templates: Vec<Template>,
    /// Shared with every [`PreparedShape`] of the same id, so hits are
    /// counted without taking the registry lock.
    hits: Vec<Arc<AtomicU64>>,
    compiles: Vec<AtomicU64>,
}

struct Entry {
    shape: Arc<PreparedShape>,
    last_used: AtomicU64,
}

/// A thread-safe, LRU-bounded cache of compiled statement shapes for one
/// store configuration (schema, constraint `α`, Ω interpretation).
pub struct GuardCache {
    schema: Schema,
    alpha: Formula,
    omega: Omega,
    capacity: usize,
    map: RwLock<HashMap<String, Entry>>,
    registry: RwLock<Registry>,
    tick: AtomicU64,
    // Aggregate counters live on a MetricsRegistry (the server's, via
    // `with_metrics`, or a private one) so there is exactly one stats
    // type; `stats()`/`cache_stats()` are thin views over them.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl GuardCache {
    /// An empty cache with the [default capacity](DEFAULT_CAPACITY).
    pub fn new(schema: Schema, alpha: Formula, omega: Omega) -> Self {
        Self::with_capacity(schema, alpha, omega, DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` live compilations (≥ 1),
    /// counting on a private metrics registry.
    pub fn with_capacity(schema: Schema, alpha: Formula, omega: Omega, capacity: usize) -> Self {
        Self::with_metrics(schema, alpha, omega, capacity, &MetricsRegistry::new())
    }

    /// An empty cache whose hit/miss/eviction counters live on `metrics`
    /// (the server wires its own registry here, so `vpdtool stats` and
    /// [`CacheStats`] read the same cells).
    pub fn with_metrics(
        schema: Schema,
        alpha: Formula,
        omega: Omega,
        capacity: usize,
        metrics: &MetricsRegistry,
    ) -> Self {
        assert!(alpha.is_sentence(), "a constraint must be a sentence");
        GuardCache {
            schema,
            alpha,
            omega,
            capacity: capacity.max(1),
            map: RwLock::new(HashMap::new()),
            registry: RwLock::new(Registry::default()),
            tick: AtomicU64::new(0),
            hits: metrics.counter(names::GUARD_CACHE_HITS),
            misses: metrics.counter(names::GUARD_CACHE_MISSES),
            evictions: metrics.counter(names::GUARD_CACHE_EVICTIONS),
        }
    }

    /// The constraint `α` all guards protect.
    pub fn alpha(&self) -> &Formula {
        &self.alpha
    }

    /// The Ω interpretation guards are evaluated under.
    pub fn omega(&self) -> &Omega {
        &self.omega
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The LRU budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` so far — lifetime totals (see
    /// [`cache_stats`](Self::cache_stats)).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Aggregate counters plus current sizes. The counters are **lifetime
    /// totals** for this cache (never reset); callers measuring a window
    /// snapshot twice and subtract (or use `MetricsSnapshot::delta` when
    /// the cache counts on a server registry).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries: self.map.read().expect("guard cache poisoned").len(),
            shapes: self
                .registry
                .read()
                .expect("shape registry poisoned")
                .templates
                .len(),
        }
    }

    /// Per-shape hit/compile counters, ordered by shape id.
    pub fn per_shape_stats(&self) -> Vec<ShapeStat> {
        let reg = self.registry.read().expect("shape registry poisoned");
        reg.templates
            .iter()
            .enumerate()
            .map(|(i, t)| ShapeStat {
                id: i as u64,
                key: t.key(),
                hits: reg.hits[i].load(Ordering::Relaxed),
                compiles: reg.compiles[i].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Every statement shape ever seen, by id — what an audit needs to
    /// resolve the `(shape, bindings)` provenance recorded in history
    /// events, including shapes whose compilations were evicted.
    pub fn templates(&self) -> BTreeMap<u64, Template> {
        let reg = self.registry.read().expect("shape registry poisoned");
        reg.templates
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u64, t.clone()))
            .collect()
    }

    /// Seeds the shape registry with recovered identities, in id order —
    /// the durable-recovery path. Ids must be contiguous from the current
    /// registry size (recovered registries always are: the cache assigned
    /// them sequentially), so every shape recorded in the old log keeps its
    /// id in the resumed server and history provenance stays resolvable
    /// across restarts. Compilations are *not* rebuilt here; each shape
    /// recompiles lazily on first use.
    ///
    /// # Panics
    /// Panics on non-contiguous ids — recovery validates the id space
    /// before calling this.
    pub(crate) fn seed_registry(&self, templates: &BTreeMap<u64, Template>) {
        let mut reg = self.registry.write().expect("shape registry poisoned");
        for (id, template) in templates {
            assert_eq!(
                *id as usize,
                reg.templates.len(),
                "recovered shape ids must be contiguous"
            );
            reg.by_key.insert(template.key(), *id);
            reg.templates.push(template.clone());
            reg.hits.push(Arc::new(AtomicU64::new(0)));
            reg.compiles.push(AtomicU64::new(0));
        }
    }

    /// Prepares `program`: canonicalizes it to `(shape, bindings)`, fetches
    /// or compiles the shape, and instantiates the guard. Concurrent first
    /// sights may compile redundantly; the cache keeps one winner. The
    /// per-call cost on a hit is the canonicalization plus one guard-sized
    /// substitution — independent of the domain and of the universe.
    pub fn get_or_compile(&self, program: &Program) -> Result<PreparedTx, StoreError> {
        let (template, bindings) = canonicalize(program)?;
        let key = template.key();

        let (shape, cache_hit) = if let Some(shape) = self.lookup(&key) {
            (shape, true)
        } else {
            (self.compile_shape(&key, template)?, false)
        };

        let guard = shape.compiled.instantiate_fast(&bindings);
        Ok(PreparedTx {
            shape,
            bindings,
            guard,
            cache_hit,
        })
    }

    fn lookup(&self, key: &str) -> Option<Arc<PreparedShape>> {
        let map = self.map.read().expect("guard cache poisoned");
        let entry = map.get(key)?;
        entry.last_used.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        self.hits.inc();
        // Per-shape hit counter is shared into the entry's shape, so no
        // registry lock is needed on the hot path.
        entry.shape.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.shape))
    }

    fn compile_shape(
        &self,
        key: &str,
        template: Template,
    ) -> Result<Arc<PreparedShape>, StoreError> {
        self.misses.inc();

        // Compile first: a shape whose compilation fails is never
        // registered, so the registry only ever holds usable statements.
        let compiled =
            compile_guard_template("store", &template, &self.alpha, &self.schema, &self.omega)?;
        let (id, hits) = self.register(key, &template);
        {
            let reg = self.registry.read().expect("shape registry poisoned");
            reg.compiles[id as usize].fetch_add(1, Ordering::Relaxed);
        }
        let reads = if compiled.domain_independent {
            compiled.reads.clone()
        } else {
            // Exactness under disjoint interleaving is not established:
            // validate against everything, i.e. serialize.
            self.schema
                .iter()
                .map(|(name, _)| name.to_string())
                .collect()
        };
        let shape = Arc::new(PreparedShape {
            id,
            template,
            compiled,
            reads,
            hits,
        });

        let mut map = self.map.write().expect("guard cache poisoned");
        let winner = match map.entry(key.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(&e.get().shape),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Entry {
                    shape: Arc::clone(&shape),
                    last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
                });
                shape
            }
        };
        while map.len() > self.capacity {
            let oldest = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("map over capacity is non-empty");
            map.remove(&oldest);
            self.evictions.inc();
        }
        Ok(winner)
    }

    /// Gets or assigns the permanent id of a shape; returns the id plus the
    /// shared hit counter for the compiled shape to hold.
    fn register(&self, key: &str, template: &Template) -> (u64, Arc<AtomicU64>) {
        {
            let reg = self.registry.read().expect("shape registry poisoned");
            if let Some(&id) = reg.by_key.get(key) {
                return (id, Arc::clone(&reg.hits[id as usize]));
            }
        }
        let mut reg = self.registry.write().expect("shape registry poisoned");
        if let Some(&id) = reg.by_key.get(key) {
            return (id, Arc::clone(&reg.hits[id as usize]));
        }
        let id = reg.templates.len() as u64;
        let hits = Arc::new(AtomicU64::new(0));
        reg.by_key.insert(key.to_string(), id);
        reg.templates.push(template.clone());
        reg.hits.push(Arc::clone(&hits));
        reg.compiles.push(AtomicU64::new(0));
        (id, hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::parse_formula;

    fn cache() -> GuardCache {
        GuardCache::new(
            Schema::graph(),
            parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").expect("parses"),
            Omega::empty(),
        )
    }

    #[test]
    fn second_lookup_hits() {
        let c = cache();
        let p = Program::insert_consts("E", [1, 4]);
        let a = c.get_or_compile(&p).expect("compiles");
        let b = c.get_or_compile(&p).expect("compiles");
        assert!(Arc::ptr_eq(&a.shape, &b.shape));
        assert_eq!(a.guard, b.guard);
        assert_eq!(c.stats(), (1, 1));
    }

    /// The collapse the refactor buys: programs differing only in constants
    /// share one compiled shape — the second lookup is a hit, not a compile.
    #[test]
    fn distinct_constants_share_a_shape() {
        let c = cache();
        let a = c
            .get_or_compile(&Program::insert_consts("E", [1, 4]))
            .expect("compiles");
        let b = c
            .get_or_compile(&Program::insert_consts("E", [2, 9]))
            .expect("compiles");
        assert!(Arc::ptr_eq(&a.shape, &b.shape));
        assert_eq!(a.bindings, vec![Elem(1), Elem(4)]);
        assert_eq!(b.bindings, vec![Elem(2), Elem(9)]);
        assert_ne!(a.guard, b.guard, "guards are instantiated per binding");
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.cache_stats().shapes, 1);
        // a different statement kind is a different shape
        c.get_or_compile(&Program::delete_consts("E", [1, 4]))
            .expect("compiles");
        assert_eq!(c.cache_stats().shapes, 2);
    }

    #[test]
    fn eviction_recompiles_and_is_counted() {
        let c = GuardCache::with_capacity(
            Schema::new([("E", 2), ("F", 2)]),
            parse_formula(
                "(forall x y z. E(x, y) & E(x, z) -> y = z) \
                 & (forall x y z. F(x, y) & F(x, z) -> y = z)",
            )
            .expect("parses"),
            Omega::empty(),
            2,
        );
        // three shapes through a 2-entry cache, round-robin: every lookup
        // evicts the next victim, so the third pass recompiles everything
        let menu = [
            Program::insert_consts("E", [0, 1]),
            Program::delete_consts("E", [0, 1]),
            Program::insert_consts("F", [0, 1]),
        ];
        for p in menu.iter().cycle().take(9) {
            c.get_or_compile(p).expect("compiles");
        }
        let stats = c.cache_stats();
        assert_eq!(stats.shapes, 3, "three shapes registered");
        assert!(stats.entries <= 2, "LRU bound holds");
        assert!(stats.evictions > 0, "evictions are counted");
        assert!(
            stats.misses > 3,
            "evicted shapes recompile: {stats:?} should show more misses than shapes"
        );
        let per_shape = c.per_shape_stats();
        assert_eq!(per_shape.len(), 3);
        assert!(
            per_shape.iter().any(|s| s.compiles > 1),
            "some shape was compiled more than once: {per_shape:?}"
        );
        // identities survive eviction: every shape is still resolvable
        assert_eq!(c.templates().len(), 3);
    }

    /// A client cannot smuggle placeholder terms into a submitted program:
    /// the guard would otherwise verify a different instantiation than the
    /// program the executor runs.
    #[test]
    fn programs_with_placeholders_are_refused() {
        let c = cache();
        let p = Program::Insert {
            rel: "E".into(),
            tuple: vec![vpdt_logic::Term::param(0), vpdt_logic::Term::cst(4u64)],
        };
        assert!(matches!(c.get_or_compile(&p), Err(StoreError::Tx(_))));
    }

    #[test]
    fn prepared_transactions_cross_threads() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<PreparedTx>();
        assert_bounds::<PreparedShape>();
        assert_bounds::<GuardCache>();
    }
}
