//! The write-ahead log: the history made durable, and recovery made an
//! audit.
//!
//! The store's history events already carry everything a verifier needs —
//! per-relation commitment [root hashes](crate::history::root_hash), gapless
//! commit versions, `(shape, bindings)` prepared-statement provenance. This module gives them a crash-safe home
//! so both the *state* and the *evidence* survive a kill:
//!
//! * **Records.** Every event (and every first-use statement-shape
//!   declaration) becomes one length-prefixed, checksummed record:
//!   `[u32 payload length][u64 FNV-1a of payload][payload]`. Payloads use
//!   the deterministic binary codec of `vpdt_tx::codec`; databases and
//!   schemas ride as their stable textual encodings (the same bytes
//!   [`state_hash`](crate::history::state_hash) hashes). No serde.
//! * **Segments.** Records append to `wal-NNNNNNNN.log` files that rotate
//!   at a size budget; each segment opens with a header record carrying the
//!   format version, its sequence number, and the global offset of its
//!   first record, so a scan can detect missing or reordered files.
//! * **Two-phase durability: publish, then durable.** Commit records are
//!   *appended* inside the store's commit critical section — the
//!   **publish** phase, which fixes the serialization order on disk — but
//!   the fsync happens outside it, in the **durable** phase: workers hand
//!   their tickets (with the record's log offset) to a dedicated
//!   [`GroupCommitFlusher`], which coalesces all pending offsets into one
//!   fsync and resolves every ticket the flushed offset covers
//!   ([`GroupCommitPolicy`]). A [`TxTicket`](crate::TxTicket) therefore
//!   resolves only once its commit record is on stable storage — the
//!   durability point of `wait` is unchanged — while the disk no longer
//!   serializes the workers. `max_batch = 1` degenerates to one fsync per
//!   commit; `fsync_commits: false` skips the durable phase entirely
//!   (tickets resolve at publish; acknowledged commits then survive a
//!   process kill but not necessarily power loss).
//! * **Checkpoints.** A checkpoint file is one checksummed record holding
//!   the full database encoding, the guard cache's shape identities, the
//!   constraint, and the log offset it covers. One is written at genesis
//!   (so recovery always has a floor), on demand
//!   ([`StoreServer::checkpoint`](crate::StoreServer::checkpoint)), and at
//!   clean shutdown.
//! * **Recovery is a cold audit.** [`recover`] loads a checkpoint and
//!   replays the log tail through the *rollback* path
//!   ([`RuntimeChecked`]): every replayed commit must re-derive from its
//!   recorded provenance, pass the deferred constraint check, and
//!   reproduce its recorded root hash. A torn tail (a record the crash
//!   cut short) is detected by checksum and cleanly discarded; a corrupt
//!   *interior* record is a hard, typed [`WalError::Corrupt`] — that log
//!   was tampered with or the disk is lying, and no prefix of it should be
//!   trusted silently.

use crate::exec::TxOutcome;
use crate::history::{fnv1a_64, root_hash, state_hash, Event};
use crate::metrics::{names, StoreMetrics};
use crate::session::TicketState;
use crate::snapshot::VersionedStore;
use crate::StoreError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vpdt_core::safe::RuntimeChecked;
use vpdt_eval::Omega;
use vpdt_logic::{Elem, Formula, Schema};
use vpdt_obs::TraceStage;
use vpdt_structure::Database;
use vpdt_tx::codec::{self, CodecError, Cursor};
use vpdt_tx::program::{Program, ProgramTransaction};
use vpdt_tx::template::Template;
use vpdt_tx::traits::{Transaction, TxError};

/// On-disk format version; bumped on any incompatible change. Version 2
/// redefined the commit hash: commit records (and checkpoint anchors) now
/// carry the per-relation commitment [root hash](crate::history::root_hash)
/// instead of the monolithic full-encoding hash, so version-1 artifacts are
/// rejected with a typed [`WalError::Version`] rather than silently
/// re-interpreted.
pub const FORMAT_VERSION: u32 = 2;

/// Bytes of record framing: `u32` length + `u64` checksum.
const FRAME_HEADER: usize = 12;

const TAG_BEGIN: u8 = 1;
const TAG_GUARD_EVAL: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_SHAPE: u8 = 5;
const TAG_SEGMENT: u8 = 6;
const TAG_CHECKPOINT: u8 = 7;
const TAG_CROSS: u8 = 8;
const TAG_DECISION: u8 = 9;

// --- errors ----------------------------------------------------------------

/// A typed write-ahead-log failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An OS-level I/O failure.
    Io {
        /// The file or directory involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The directory holds no log (no `wal-*.log` segments).
    NoLog {
        /// The directory scanned.
        dir: String,
    },
    /// Refusing to create a fresh log where one already exists.
    AlreadyExists {
        /// The directory with the pre-existing log.
        dir: String,
    },
    /// The log was written by an incompatible format version.
    Version {
        /// Version found on disk.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// A record before the tail fails its checksum or does not decode — the
    /// hard case: the log is damaged where a crash cannot explain it.
    Corrupt {
        /// The segment file.
        segment: String,
        /// Byte offset of the bad record within the segment.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The directory holds no readable checkpoint.
    NoCheckpoint {
        /// The directory scanned.
        dir: String,
    },
    /// A checkpoint file fails its checksum or does not decode.
    BadCheckpoint {
        /// The checkpoint file.
        path: String,
        /// What was wrong.
        detail: String,
    },
    /// The operation needs an attached log, but the store is not persisted.
    NotDurable,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, message } => write!(f, "wal I/O on {path}: {message}"),
            WalError::NoLog { dir } => write!(f, "no write-ahead log in {dir}"),
            WalError::AlreadyExists { dir } => {
                write!(
                    f,
                    "{dir} already holds a write-ahead log; recover it instead"
                )
            }
            WalError::Version { found, expected } => write!(
                f,
                "log format version {found} is not the supported version {expected}"
            ),
            WalError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "corrupt interior record in {segment} at byte {offset}: {detail}"
            ),
            WalError::NoCheckpoint { dir } => write!(f, "no checkpoint in {dir}"),
            WalError::BadCheckpoint { path, detail } => {
                write!(f, "bad checkpoint {path}: {detail}")
            }
            WalError::NotDurable => write!(f, "store has no write-ahead log attached"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, e: std::io::Error) -> WalError {
    WalError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Why a recovery refused the on-disk state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The log itself is unreadable.
    Wal(WalError),
    /// Snapshot and log disagree: the checkpoint points past the end of the
    /// log, its recorded hash does not match the commit record it claims to
    /// cover, its own state does not hash to what it recorded, or two
    /// declarations of one shape id differ.
    Divergence {
        /// What diverged.
        detail: String,
    },
    /// A replayed event references a statement shape no checkpoint or
    /// shape record declares.
    UnknownShape {
        /// The transaction whose event referenced it.
        tx: u64,
        /// The unknown shape id.
        shape: u64,
    },
    /// A recorded `(shape, bindings)` provenance does not instantiate.
    Provenance {
        /// The transaction with bad provenance.
        tx: u64,
        /// What was wrong.
        detail: String,
    },
    /// Replaying a committed transaction produced a different root hash
    /// than the log recorded — a tampered or reordered log.
    HashMismatch {
        /// The transaction.
        tx: u64,
        /// Its commit version.
        version: u64,
        /// The hash the log recorded.
        recorded: u64,
        /// The hash the replay produced.
        computed: u64,
    },
    /// The deferred check-and-rollback path rejects a commit the log claims
    /// happened: the constraint would have been violated.
    Rejected {
        /// The transaction.
        tx: u64,
        /// Its commit version.
        version: u64,
        /// The rollback path's reason.
        reason: String,
    },
    /// A committed transaction fails to re-execute at all.
    Replay {
        /// The transaction.
        tx: u64,
        /// Its commit version.
        version: u64,
        /// The execution error.
        detail: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Wal(e) => write!(f, "{e}"),
            RecoveryError::Divergence { detail } => {
                write!(f, "snapshot/log divergence: {detail}")
            }
            RecoveryError::UnknownShape { tx, shape } => {
                write!(f, "tx {tx} references undeclared statement shape {shape}")
            }
            RecoveryError::Provenance { tx, detail } => {
                write!(f, "tx {tx} has unusable provenance: {detail}")
            }
            RecoveryError::HashMismatch {
                tx,
                version,
                recorded,
                computed,
            } => write!(
                f,
                "replaying tx {tx} at version {version} produces state hash {computed:#x}, \
                 log records {recorded:#x}"
            ),
            RecoveryError::Rejected {
                tx,
                version,
                reason,
            } => write!(
                f,
                "log commits tx {tx} at version {version}, but check-and-rollback rejects \
                 it there: {reason}"
            ),
            RecoveryError::Replay {
                tx,
                version,
                detail,
            } => write!(f, "tx {tx} fails to replay at version {version}: {detail}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Wal(e)
    }
}

// --- record payloads -------------------------------------------------------

/// One logical record of the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A history event.
    Event(Event),
    /// First durable use of a statement shape: its id and template.
    Shape {
        /// The shape id history events reference.
        id: u64,
        /// The canonicalized template.
        template: Template,
    },
    /// A cross-shard commit decision — the atom of the two-phase commit.
    /// Lives in the coordinator's decision log (a separate WAL directory);
    /// its fsync is the cross-shard commit point: once durable, recovery
    /// rolls every branch forward; a prepare with no durable decision
    /// aborts (presumed abort).
    Decision(DecisionRecord),
}

/// One branch of a cross-shard decision: which shard applies what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionBranch {
    /// Index of the shard this branch belongs to.
    pub shard: u32,
    /// The shard-local transaction id reserved for the branch's commit.
    pub tx: u64,
    /// The shard snapshot version the prepare held (the branch commit's
    /// `based_on`).
    pub based_on: u64,
    /// The ground shard-local delta program: a sequence of constant
    /// inserts/deletes reconstructing exactly this shard's slice of the
    /// global post-state. Recovery replays it like any committed program;
    /// the shard's `Cross` event records its canonicalized
    /// `(shape, bindings)` provenance.
    pub program: Program,
}

/// A durable global commit decision for one cross-shard transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Globally unique decision id (what shard `Cross` events reference).
    pub id: u64,
    /// The coordinator-level transaction id (tracing/metrics only).
    pub tx: u64,
    /// Per-shard branches, one per touched shard, ascending by shard.
    pub branches: Vec<DecisionBranch>,
}

fn encode_decision(d: &DecisionRecord) -> Vec<u8> {
    let mut out = vec![TAG_DECISION];
    codec::put_u64(&mut out, d.id);
    codec::put_u64(&mut out, d.tx);
    codec::put_u32(&mut out, d.branches.len() as u32);
    for b in &d.branches {
        codec::put_u32(&mut out, b.shard);
        codec::put_u64(&mut out, b.tx);
        codec::put_u64(&mut out, b.based_on);
        codec::encode_program(&b.program, &mut out);
    }
    out
}

fn decode_decision(bytes: &[u8]) -> Result<DecisionRecord, String> {
    let mut c = Cursor::new(&bytes[1..]);
    let id = c.u64("decision id").map_err(|e| e.to_string())?;
    let tx = c.u64("decision tx").map_err(|e| e.to_string())?;
    let n = c.count("branch count").map_err(|e| e.to_string())?;
    let mut branches = Vec::with_capacity(n);
    for _ in 0..n {
        branches.push(DecisionBranch {
            shard: c.u32("shard index").map_err(|e| e.to_string())?,
            tx: c.u64("branch tx").map_err(|e| e.to_string())?,
            based_on: c.u64("branch based_on").map_err(|e| e.to_string())?,
            program: codec::decode_program(&mut c).map_err(|e| e.to_string())?,
        });
    }
    c.finish().map_err(|e| e.to_string())?;
    Ok(DecisionRecord { id, tx, branches })
}

/// Encodes an event payload (without record framing). Deterministic:
/// re-encoding a decoded event reproduces the bytes.
pub fn encode_event(e: &Event) -> Vec<u8> {
    let mut out = Vec::new();
    match e {
        Event::Begin {
            tx,
            session,
            version,
            shape,
            bindings,
        } => {
            out.push(TAG_BEGIN);
            codec::put_u64(&mut out, *tx);
            codec::put_u64(&mut out, *session);
            codec::put_u64(&mut out, *version);
            codec::put_u64(&mut out, *shape);
            put_bindings(&mut out, bindings);
        }
        Event::GuardEval { tx, version, pass } => {
            out.push(TAG_GUARD_EVAL);
            codec::put_u64(&mut out, *tx);
            codec::put_u64(&mut out, *version);
            out.push(u8::from(*pass));
        }
        Event::Commit {
            tx,
            based_on,
            version,
            writes,
            shape,
            bindings,
            root_hash,
        } => {
            out.push(TAG_COMMIT);
            codec::put_u64(&mut out, *tx);
            codec::put_u64(&mut out, *based_on);
            codec::put_u64(&mut out, *version);
            codec::put_u64(&mut out, *shape);
            codec::put_u64(&mut out, *root_hash);
            codec::put_u32(&mut out, writes.len() as u32);
            for w in writes {
                codec::put_str(&mut out, w);
            }
            put_bindings(&mut out, bindings);
        }
        Event::Abort {
            tx,
            version,
            reason,
        } => {
            out.push(TAG_ABORT);
            codec::put_u64(&mut out, *tx);
            codec::put_u64(&mut out, *version);
            codec::put_str(&mut out, reason);
        }
        Event::Cross {
            tx,
            decision,
            based_on,
            version,
            writes,
            shape,
            bindings,
            root_hash,
        } => {
            out.push(TAG_CROSS);
            codec::put_u64(&mut out, *tx);
            codec::put_u64(&mut out, *decision);
            codec::put_u64(&mut out, *based_on);
            codec::put_u64(&mut out, *version);
            codec::put_u64(&mut out, *shape);
            codec::put_u64(&mut out, *root_hash);
            codec::put_u32(&mut out, writes.len() as u32);
            for w in writes {
                codec::put_str(&mut out, w);
            }
            put_bindings(&mut out, bindings);
        }
    }
    out
}

/// Byte offset of the `version` field inside an encoded commit payload:
/// tag (1) + tx (8) + based_on (8).
const COMMIT_VERSION_OFFSET: usize = 17;
/// Byte offset of the `root_hash` field inside an encoded commit payload:
/// [`COMMIT_VERSION_OFFSET`] + version (8) + shape (8).
const COMMIT_ROOT_HASH_OFFSET: usize = 33;

/// Stamps the two commit-time fields — `version` and `root_hash` — into a
/// commit payload that was pre-encoded *outside* the commit critical
/// section (with placeholder zeros). Every other field of a commit record
/// is known before the store's write lock is taken; these two exist only
/// once the commit wins validation, so the lock patches 16 bytes instead
/// of encoding the whole record.
///
/// # Panics
/// Panics if `payload` is not a commit payload (wrong tag or too short) —
/// that is a caller bug, not an I/O condition.
pub(crate) fn patch_commit_payload(payload: &mut [u8], version: u64, root_hash: u64) {
    assert_eq!(
        payload.first(),
        Some(&TAG_COMMIT),
        "patching a non-commit payload"
    );
    payload[COMMIT_VERSION_OFFSET..COMMIT_VERSION_OFFSET + 8]
        .copy_from_slice(&version.to_le_bytes());
    payload[COMMIT_ROOT_HASH_OFFSET..COMMIT_ROOT_HASH_OFFSET + 8]
        .copy_from_slice(&root_hash.to_le_bytes());
}

/// Decodes an event payload: the exact inverse of [`encode_event`].
pub fn decode_event(bytes: &[u8]) -> Result<Event, CodecError> {
    let mut c = Cursor::new(bytes);
    let e = decode_event_body(&mut c)?;
    c.finish()?;
    Ok(e)
}

fn put_bindings(out: &mut Vec<u8>, bindings: &[Elem]) {
    codec::put_u32(out, bindings.len() as u32);
    for b in bindings {
        codec::put_u64(out, b.0);
    }
}

fn get_bindings(c: &mut Cursor<'_>) -> Result<Vec<Elem>, CodecError> {
    let n = c.count("binding vector")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Elem(c.u64("binding")?));
    }
    Ok(out)
}

fn decode_event_body(c: &mut Cursor<'_>) -> Result<Event, CodecError> {
    let at = c.pos();
    match c.u8("event tag")? {
        TAG_BEGIN => Ok(Event::Begin {
            tx: c.u64("tx id")?,
            session: c.u64("session id")?,
            version: c.u64("version")?,
            shape: c.u64("shape id")?,
            bindings: get_bindings(c)?,
        }),
        TAG_GUARD_EVAL => Ok(Event::GuardEval {
            tx: c.u64("tx id")?,
            version: c.u64("version")?,
            pass: c.u8("pass flag")? != 0,
        }),
        TAG_COMMIT => {
            let tx = c.u64("tx id")?;
            let based_on = c.u64("based_on")?;
            let version = c.u64("version")?;
            let shape = c.u64("shape id")?;
            let root_hash = c.u64("root hash")?;
            let n = c.count("write set")?;
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                writes.push(c.str("write relation")?);
            }
            Ok(Event::Commit {
                tx,
                based_on,
                version,
                writes,
                shape,
                bindings: get_bindings(c)?,
                root_hash,
            })
        }
        TAG_ABORT => Ok(Event::Abort {
            tx: c.u64("tx id")?,
            version: c.u64("version")?,
            reason: c.str("abort reason")?,
        }),
        TAG_CROSS => {
            let tx = c.u64("tx id")?;
            let decision = c.u64("decision id")?;
            let based_on = c.u64("based_on")?;
            let version = c.u64("version")?;
            let shape = c.u64("shape id")?;
            let root_hash = c.u64("root hash")?;
            let n = c.count("write set")?;
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                writes.push(c.str("write relation")?);
            }
            Ok(Event::Cross {
                tx,
                decision,
                based_on,
                version,
                writes,
                shape,
                bindings: get_bindings(c)?,
                root_hash,
            })
        }
        tag => Err(CodecError::BadTag {
            at,
            what: "event",
            tag,
        }),
    }
}

fn encode_record(r: &Record) -> Vec<u8> {
    match r {
        Record::Event(e) => encode_event(e),
        Record::Shape { id, template } => {
            let mut out = vec![TAG_SHAPE];
            codec::put_u64(&mut out, *id);
            codec::encode_program(template.shape(), &mut out);
            out
        }
        Record::Decision(d) => encode_decision(d),
    }
}

/// Decodes a record payload (an event, a shape declaration, or a
/// cross-shard decision). Segment headers and checkpoints are handled by
/// their own readers.
fn decode_record(bytes: &[u8]) -> Result<Record, String> {
    if bytes.first() == Some(&TAG_SHAPE) {
        let mut c = Cursor::new(&bytes[1..]);
        let id = c.u64("shape id").map_err(|e| e.to_string())?;
        let shape = codec::decode_program(&mut c).map_err(|e| e.to_string())?;
        c.finish().map_err(|e| e.to_string())?;
        let template = Template::from_shape(shape).map_err(|e| e.to_string())?;
        Ok(Record::Shape { id, template })
    } else if bytes.first() == Some(&TAG_DECISION) {
        decode_decision(bytes).map(Record::Decision)
    } else {
        decode_event(bytes)
            .map(Record::Event)
            .map_err(|e| e.to_string())
    }
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    codec::put_u32(&mut out, payload.len() as u32);
    codec::put_u64(&mut out, fnv1a_64(payload));
    out.extend_from_slice(payload);
    out
}

// --- the writer ------------------------------------------------------------

/// How the group-commit flusher batches fsyncs across concurrent commits.
///
/// Workers *publish* commits (version advanced, record appended) without
/// waiting for the disk; the flusher coalesces all pending commits into
/// one fsync and resolves every covered ticket. The defaults give
/// *natural* batching: the flusher syncs as soon as anything is pending,
/// so under light load each commit is fsync'd immediately (per-commit
/// latency), while under concurrent load everything that published during
/// the previous fsync forms the next batch (per-batch throughput).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupCommitPolicy {
    /// Most commits resolved by one fsync. `1` degenerates to one fsync
    /// per commit — the pre-group-commit behavior, minus the critical
    /// section it used to run in.
    pub max_batch: usize,
    /// How long the flusher may hold an under-full batch open waiting for
    /// more commits. `Duration::ZERO` (the default) never waits: batches
    /// form only from commits that published while the previous fsync was
    /// in flight. With `target_batch > 0` this is the *ceiling* of the
    /// auto-tuned wait — the bound on durable tail latency.
    pub max_delay: Duration,
    /// Auto-tune target: `0` (the default) disables it — the flusher
    /// waits exactly `max_delay` as before. Non-zero makes the flusher
    /// adapt an *effective* delay between zero and `max_delay` toward
    /// fsync batches of about this size: each under-target batch grows
    /// the wait (more coalescing next round), each over-target batch
    /// shrinks it (the disk is the bottleneck; stop adding latency).
    /// This is what keeps N shard flushers sharing one disk fair — a
    /// lightly loaded shard converges to near-zero wait while a hot one
    /// batches aggressively, instead of every shard pessimistically
    /// holding batches open. The current effective delay is reported in
    /// [`FlushStats::effective_delay_us`].
    pub target_batch: usize,
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        GroupCommitPolicy {
            max_batch: 256,
            max_delay: Duration::ZERO,
            target_batch: 0,
        }
    }
}

/// Tunables of the durable log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Whether commit records are fsync'd before the commit is
    /// acknowledged. `true` (the default) makes
    /// [`TxTicket::wait`](crate::TxTicket::wait) a durability point that
    /// survives power loss — the fsync runs in the durable phase, batched
    /// across workers per [`GroupCommitPolicy`]; `false` trades that for
    /// speed — acknowledged commits then survive a process kill (the bytes
    /// are in the page cache) but not necessarily a machine crash.
    pub fsync_commits: bool,
    /// How the durable phase batches fsyncs (only meaningful with
    /// `fsync_commits: true`).
    pub group_commit: GroupCommitPolicy,
    /// Keep segments whose records are entirely covered by a checkpoint.
    /// `false` (the default) deletes them at checkpoint time — recovery
    /// and serving never read them again; the price is that a later cold
    /// audit replays from the oldest *surviving* checkpoint instead of
    /// genesis. Set `true` to retain the full history on disk.
    pub retain_segments: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 8 * 1024 * 1024,
            fsync_commits: true,
            group_commit: GroupCommitPolicy::default(),
            retain_segments: false,
        }
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// The append half of the log: owned by the server's
/// [`History`](crate::History) while it runs, handed back at shutdown to
/// write the clean checkpoint.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    opts: WalOptions,
    /// The current segment, shared with the group-commit flusher: appends
    /// go through the writer (under the history lock), fsyncs go through a
    /// clone of this handle (outside it), so a flush never blocks a
    /// publish.
    file: Arc<File>,
    seg_seq: u64,
    seg_len: u64,
    next_offset: u64,
}

impl WalWriter {
    /// Creates a fresh log in `dir` (creating the directory if needed).
    /// Refuses a directory that already holds *any* log artifact —
    /// segments **or** checkpoints: stale checkpoint files next to a fresh
    /// log would poison a later recovery, so the mixed state is rejected
    /// here, where it is cheap to explain. Recover existing logs instead
    /// of shadowing them.
    pub fn create(dir: impl Into<PathBuf>, opts: WalOptions) -> Result<Self, WalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let entries = std::fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let is_segment = name.starts_with("wal-") && name.ends_with(".log");
            let is_checkpoint = name.starts_with("checkpoint-") && name.ends_with(".ckpt");
            if is_segment || is_checkpoint {
                return Err(WalError::AlreadyExists {
                    dir: dir.display().to_string(),
                });
            }
        }
        let (file, seg_len) = open_segment(&dir, 0, 0)?;
        Ok(WalWriter {
            dir,
            opts,
            file: Arc::new(file),
            seg_seq: 0,
            seg_len,
            next_offset: 0,
        })
    }

    /// Reopens an existing log for appending: scans it, truncates any torn
    /// tail, and positions after the last valid record. Returns the writer
    /// plus the ids of the shapes already declared on disk (so the resumed
    /// server does not re-log them).
    pub fn resume(
        dir: impl Into<PathBuf>,
        opts: WalOptions,
    ) -> Result<(Self, BTreeSet<u64>), WalError> {
        let dir = dir.into();
        let scan = scan_log(&dir)?;
        let path = segment_path(&dir, scan.last_seg_seq);
        // Append mode: every write lands at the (post-truncation) end of
        // the file, never over the header.
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        // Physically drop the torn tail so new records append cleanly after
        // the last valid one.
        file.set_len(scan.last_seg_valid_len)
            .map_err(|e| io_err(&path, e))?;
        // A crash between segment creation and its header write leaves a
        // last segment with no valid header (valid length 0). Rewrite the
        // header before appending — otherwise the appended records would
        // start a header-less segment no later scan could read.
        let next_offset = scan.base_offset + scan.records.len() as u64;
        let seg_len = if scan.last_seg_valid_len == 0 {
            write_segment_header(&mut file, &path, scan.last_seg_seq, next_offset)?
        } else {
            scan.last_seg_valid_len
        };
        file.sync_data().map_err(|e| io_err(&path, e))?;
        let shapes = scan
            .records
            .iter()
            .filter_map(|r| match &r.record {
                Record::Shape { id, .. } => Some(*id),
                Record::Event(_) | Record::Decision(_) => None,
            })
            .collect();
        Ok((
            WalWriter {
                dir,
                opts,
                file: Arc::new(file),
                seg_seq: scan.last_seg_seq,
                seg_len,
                next_offset,
            },
            shapes,
        ))
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Global index of the next record to be appended — equivalently, how
    /// many records the log has ever held (records deleted by segment
    /// retention still count; offsets are never reused).
    pub fn offset(&self) -> u64 {
        self.next_offset
    }

    /// The options the log was opened with.
    pub fn options(&self) -> &WalOptions {
        &self.opts
    }

    /// A shared handle on the current segment file — what the flusher
    /// fsyncs without holding the history lock.
    pub(crate) fn current_file(&self) -> Arc<File> {
        Arc::clone(&self.file)
    }

    /// The current segment's path (for error reporting).
    pub(crate) fn current_path(&self) -> PathBuf {
        segment_path(&self.dir, self.seg_seq)
    }

    /// Appends one record, rotating segments at the size budget. Returns
    /// the record's global offset. Does not fsync.
    pub fn append(&mut self, record: &Record) -> Result<u64, WalError> {
        self.append_payload(&encode_record(record))
    }

    /// Appends one already-encoded record payload — the hot path, which
    /// runs inside the commit critical section and must not clone events
    /// just to wrap them.
    pub(crate) fn append_payload(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if self.seg_len >= self.opts.segment_bytes {
            self.rotate()?;
        }
        let framed = frame(payload);
        let path = segment_path(&self.dir, self.seg_seq);
        (&*self.file)
            .write_all(&framed)
            .map_err(|e| io_err(&path, e))?;
        self.seg_len += framed.len() as u64;
        let offset = self.next_offset;
        self.next_offset += 1;
        Ok(offset)
    }

    /// Flushes appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        let path = segment_path(&self.dir, self.seg_seq);
        self.file.sync_data().map_err(|e| io_err(&path, e))
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // The old segment is fully fsync'd before any record lands in the
        // new one — the flusher only ever needs to sync the *current*
        // segment to make every appended record durable.
        self.sync()?;
        self.seg_seq += 1;
        let (file, seg_len) = open_segment(&self.dir, self.seg_seq, self.next_offset)?;
        self.file = Arc::new(file);
        self.seg_len = seg_len;
        Ok(())
    }
}

/// Writes a segment header record to `file`; returns its length.
fn write_segment_header(
    file: &mut File,
    path: &Path,
    seq: u64,
    base_offset: u64,
) -> Result<u64, WalError> {
    let mut payload = vec![TAG_SEGMENT];
    codec::put_u32(&mut payload, FORMAT_VERSION);
    codec::put_u64(&mut payload, seq);
    codec::put_u64(&mut payload, base_offset);
    let framed = frame(&payload);
    file.write_all(&framed).map_err(|e| io_err(path, e))?;
    Ok(framed.len() as u64)
}

/// Creates segment `seq` and writes its header record. The file data and
/// (best-effort) the directory entry are fsync'd before any record lands
/// in the segment — a commit record fsync'd into a file whose directory
/// entry is not durable would not survive power loss.
fn open_segment(dir: &Path, seq: u64, base_offset: u64) -> Result<(File, u64), WalError> {
    let path = segment_path(dir, seq);
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| io_err(&path, e))?;
    let len = write_segment_header(&mut file, &path, seq, base_offset)?;
    file.sync_data().map_err(|e| io_err(&path, e))?;
    // Non-fatal on filesystems that cannot open directories.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok((file, len))
}

/// The durable attachment a persisted [`History`](crate::History) carries:
/// the writer plus the bookkeeping of which shapes are already declared on
/// disk and how commits reach stable storage.
#[derive(Debug)]
pub(crate) struct DurableLog {
    pub(crate) writer: WalWriter,
    logged_shapes: BTreeSet<u64>,
    fsync_commits: bool,
    /// The durable phase, when one is configured: commit appends tell the
    /// flusher how far the log has grown so its next fsync knows what it
    /// covers.
    flusher: Option<Arc<GroupCommitFlusher>>,
}

impl DurableLog {
    pub(crate) fn new(
        writer: WalWriter,
        logged_shapes: BTreeSet<u64>,
        flusher: Option<Arc<GroupCommitFlusher>>,
    ) -> Self {
        let fsync_commits = writer.opts.fsync_commits;
        DurableLog {
            writer,
            logged_shapes,
            fsync_commits,
            flusher,
        }
    }

    /// Appends an event and returns its global offset — the **publish**
    /// half of durability: this runs inside the commit critical section
    /// and never fsyncs there. A commit event instead advances the
    /// flusher's append watermark, so the durable phase knows which fsync
    /// will cover it. (Without a flusher — an embedding that attaches a
    /// log but runs no durable phase — `fsync_commits` falls back to the
    /// old inline flush so the option's contract still holds.) Encodes
    /// the borrowed event directly — no clone is taken just to wrap it in
    /// a [`Record`].
    pub(crate) fn append_event(&mut self, e: &Event) -> Result<u64, WalError> {
        let offset = self.writer.append_payload(&encode_event(e))?;
        if matches!(e, Event::Commit { .. }) {
            if let Some(flusher) = &self.flusher {
                flusher.note_append(
                    self.writer.current_file(),
                    self.writer.current_path(),
                    self.writer.offset(),
                );
            } else if self.fsync_commits {
                self.writer.sync()?;
            }
        }
        Ok(offset)
    }

    /// Appends a commit record whose payload was pre-encoded (and patched,
    /// see [`patch_commit_payload`]) outside the critical section — the
    /// same publish contract as [`DurableLog::append_event`] for a commit,
    /// minus the encoding cost under the lock.
    pub(crate) fn append_commit_payload(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        debug_assert_eq!(payload.first(), Some(&TAG_COMMIT));
        let offset = self.writer.append_payload(payload)?;
        if let Some(flusher) = &self.flusher {
            flusher.note_append(
                self.writer.current_file(),
                self.writer.current_path(),
                self.writer.offset(),
            );
        } else if self.fsync_commits {
            self.writer.sync()?;
        }
        Ok(offset)
    }

    /// Logs a shape declaration the first time the shape is used durably.
    pub(crate) fn declare_shape(&mut self, id: u64, template: &Template) -> Result<(), WalError> {
        if self.logged_shapes.insert(id) {
            let mut payload = vec![TAG_SHAPE];
            codec::put_u64(&mut payload, id);
            codec::encode_program(template.shape(), &mut payload);
            self.writer.append_payload(&payload)?;
        }
        Ok(())
    }
}

// --- the group-commit flusher ----------------------------------------------

/// Counters of the durable phase — what group commit actually bought.
///
/// Since the metrics unification this is a *view*: the counters live on
/// the server's [`MetricsRegistry`](vpdt_obs::MetricsRegistry) (names
/// `store_wal_*`), and [`GroupCommitFlusher`] reconstructs this struct
/// from them on demand. Values are lifetime totals for the owning server.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Fsyncs issued by the flusher.
    pub fsyncs: u64,
    /// Commit tickets resolved durable (across all fsyncs).
    pub flushed_commits: u64,
    /// Flushes that failed (fail-stop: at most 1, after which every
    /// covered and subsequent ticket resolves with a typed error).
    pub flush_failures: u64,
    /// How many batches resolved exactly `k` tickets, by `k` — the
    /// batch-size histogram. `flushed_commits / fsyncs` is the mean.
    pub batch_sizes: BTreeMap<usize, u64>,
    /// The auto-tuned effective batching delay, µs — what the flusher
    /// currently waits before fsyncing an under-full batch. `0` unless
    /// [`GroupCommitPolicy::target_batch`] enabled the auto-tune (and the
    /// load has pushed the wait above zero).
    pub effective_delay_us: u64,
}

/// One published commit awaiting its covering fsync.
pub(crate) struct PendingAck {
    /// The commit record's global log offset.
    pub(crate) offset: u64,
    /// The version the publish phase produced.
    pub(crate) version: u64,
    /// The ticket to resolve durable (absent on ticketless paths; the
    /// commit still counts toward the batch it is flushed with).
    pub(crate) ticket: Option<Arc<TicketState>>,
    /// The transaction id, for trace events.
    pub(crate) tx: u64,
    /// When the transaction entered the submission queue (registry ns) —
    /// end-to-end latency is observed at durable resolution.
    pub(crate) enqueued_at_ns: u64,
    /// When the publish phase completed (registry ns) — the
    /// publish→durable stage latency starts here.
    pub(crate) published_at_ns: u64,
}

struct FlushInner {
    pending: Vec<PendingAck>,
    /// When the oldest pending ack arrived (drives `max_delay`).
    first_at: Option<Instant>,
    closed: bool,
    /// The append watermark: the current segment file and the global
    /// offset the log has grown to, maintained by the publish phase
    /// ([`DurableLog::append_event`]). Fsyncing `file` makes every record
    /// below `appended` durable — earlier segments were synced at
    /// rotation.
    file: Option<(Arc<File>, PathBuf)>,
    appended: u64,
    /// Everything below this offset is on stable storage.
    durable: u64,
    /// Fail-stop state: the error every covered and subsequent ticket
    /// resolves with.
    failed: Option<WalError>,
    /// Test hook: makes the next flush fail without touching the disk.
    inject_error: bool,
}

/// The shared group-commit flusher: workers enqueue published commits
/// (ticket + log offset), a dedicated thread coalesces all pending offsets
/// into one fsync and resolves every covered ticket — the **durable**
/// phase of the commit pipeline. Owned by the
/// [`StoreServer`](crate::StoreServer), which spawns the thread at build
/// and drains it on shutdown *and* drop, so no acknowledged-or-pending
/// commit is lost even on the crash-shaped exit.
#[derive(Debug)]
pub(crate) struct GroupCommitFlusher {
    policy: GroupCommitPolicy,
    inner: Mutex<FlushInner>,
    ready: Condvar,
    /// The auto-tuned batching delay, ns (see
    /// [`GroupCommitPolicy::target_batch`]). Read by the run loop when
    /// computing its deadline, written after every flush; both off the
    /// batch lock.
    effective_delay_ns: std::sync::atomic::AtomicU64,
    /// [`names::WAL_FLUSH_EFFECTIVE_DELAY`], mirroring
    /// `effective_delay_ns` in µs for exposition.
    delay_gauge: vpdt_obs::Gauge,
    /// The server's metric handles: fsync/flush counters, the
    /// publish→durable and end-to-end histograms, and the trace ring.
    obs: StoreMetrics,
}

impl std::fmt::Debug for FlushInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushInner")
            .field("pending", &self.pending.len())
            .field("appended", &self.appended)
            .field("durable", &self.durable)
            .field("closed", &self.closed)
            .field("failed", &self.failed)
            .finish()
    }
}

impl GroupCommitFlusher {
    pub(crate) fn new(policy: GroupCommitPolicy, obs: StoreMetrics) -> Self {
        GroupCommitFlusher {
            // Auto-tune starts eager (zero wait) and grows only when
            // observed batches run under target — a lightly loaded store
            // never pays latency for throughput it is not getting.
            effective_delay_ns: std::sync::atomic::AtomicU64::new(0),
            delay_gauge: obs.registry.gauge(names::WAL_FLUSH_EFFECTIVE_DELAY),
            policy,
            inner: Mutex::new(FlushInner {
                pending: Vec::new(),
                first_at: None,
                closed: false,
                file: None,
                appended: 0,
                durable: 0,
                failed: None,
                inject_error: false,
            }),
            ready: Condvar::new(),
            obs,
        }
    }

    /// The wait the run loop grants an under-full batch: the fixed
    /// `max_delay` without auto-tune, the adapted value (capped by
    /// `max_delay`) with it.
    fn batch_delay(&self) -> Duration {
        if self.policy.target_batch == 0 {
            return self.policy.max_delay;
        }
        Duration::from_nanos(
            self.effective_delay_ns
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// One auto-tune step after a flush that resolved `resolved` tickets:
    /// under-target batches grow the wait multiplicatively (plus a 10µs
    /// floor-breaker so zero can grow at all), over-target batches shrink
    /// it — multiplicative increase *and* decrease converges near the
    /// target without oscillating to the rails, and the cap keeps
    /// `max_delay` an honest tail-latency bound.
    fn retune(&self, resolved: usize) {
        use std::sync::atomic::Ordering;
        let target = self.policy.target_batch;
        if target == 0 {
            return;
        }
        let cap = u64::try_from(self.policy.max_delay.as_nanos()).unwrap_or(u64::MAX);
        let cur = self.effective_delay_ns.load(Ordering::Relaxed);
        let next = match resolved.cmp(&target) {
            std::cmp::Ordering::Less => (cur + cur / 2 + 10_000).min(cap),
            std::cmp::Ordering::Greater => cur / 2,
            std::cmp::Ordering::Equal => cur,
        };
        if next != cur {
            self.effective_delay_ns.store(next, Ordering::Relaxed);
            self.delay_gauge.set(next / 1_000);
        }
    }

    /// Resolve one ack durable: observe the publish→durable and
    /// end-to-end stage latencies, trace the `durable` event, then
    /// resolve the ticket (if any). Callers invoke this *after* dropping
    /// the flusher's batch lock — resolution may fire a completion
    /// registered with [`TxTicket::on_resolve`](crate::TxTicket::on_resolve)
    /// on this thread, and that callback must never run under the lock
    /// that gates the next fsync batch.
    fn resolve_durable(&self, ack: PendingAck) {
        let now = self.obs.now_ns();
        self.obs
            .publish_to_durable
            .observe(now.saturating_sub(ack.published_at_ns) / 1_000);
        self.obs
            .tx_total
            .observe(now.saturating_sub(ack.enqueued_at_ns) / 1_000);
        self.obs.trace(
            ack.tx,
            TraceStage::Durable {
                version: ack.version,
            },
        );
        if let Some(ticket) = ack.ticket {
            ticket.resolve(TxOutcome::Committed {
                version: ack.version,
            });
        }
    }

    /// Resolve one ack failed (flush error, fail-stop): trace the
    /// `failed` event and resolve the ticket (if any).
    fn resolve_failed(&self, ack: PendingAck, error: &StoreError) {
        self.obs.trace(
            ack.tx,
            TraceStage::Failed {
                reason: error.code().to_string(),
            },
        );
        if let Some(ticket) = ack.ticket {
            ticket.resolve(TxOutcome::Failed {
                error: error.clone(),
            });
        }
    }

    /// Advances the append watermark — called by the publish phase, under
    /// the history lock, after every commit append. Deliberately tiny: the
    /// flush lock is only ever held for bookkeeping, never across I/O.
    pub(crate) fn note_append(&self, file: Arc<File>, path: PathBuf, appended: u64) {
        let mut g = self.inner.lock().expect("flusher lock poisoned");
        g.file = Some((file, path));
        g.appended = g.appended.max(appended);
    }

    /// Hands a published commit to the durable phase. If a covering fsync
    /// already happened (the flusher raced ahead), the ticket resolves on
    /// the spot; after a flush failure, it resolves with the typed error
    /// (fail-stop: the log can no longer promise durability).
    pub(crate) fn enqueue(&self, ack: PendingAck) {
        let mut g = self.inner.lock().expect("flusher lock poisoned");
        if let Some(err) = &g.failed {
            let error = StoreError::Wal(err.clone());
            drop(g);
            self.resolve_failed(ack, &error);
            return;
        }
        if ack.offset < g.durable {
            drop(g);
            self.obs.wal_flushed_commits.inc();
            self.resolve_durable(ack);
            return;
        }
        if g.pending.is_empty() {
            g.first_at = Some(Instant::now());
        }
        g.pending.push(ack);
        drop(g);
        self.ready.notify_all();
    }

    /// Closes the flusher: the run loop drains what is pending (one final
    /// fsync) and exits. Idempotent.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("flusher lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Point-in-time counters, reconstructed from the metrics registry
    /// (the exact per-size batch counts come back from the labeled
    /// `store_wal_flush_batches_total{size="k"}` series).
    pub(crate) fn stats(&self) -> FlushStats {
        let snap = self.obs.registry.snapshot();
        let prefix = format!("{}{{size=\"", names::WAL_FLUSH_BATCHES);
        let mut batch_sizes = BTreeMap::new();
        for (name, v) in &snap.counters {
            if let Some(k) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix("\"}"))
                .and_then(|k| k.parse::<usize>().ok())
            {
                batch_sizes.insert(k, *v);
            }
        }
        FlushStats {
            fsyncs: snap.counter(names::WAL_FSYNCS),
            flushed_commits: snap.counter(names::WAL_FLUSHED_COMMITS),
            flush_failures: snap.counter(names::WAL_FLUSH_FAILURES),
            batch_sizes,
            effective_delay_us: snap.gauge(names::WAL_FLUSH_EFFECTIVE_DELAY),
        }
    }

    /// Test hook: the next flush fails as if the disk had, exercising the
    /// fail-stop fan-out without needing a faulty device.
    pub(crate) fn inject_flush_error(&self) {
        self.inner
            .lock()
            .expect("flusher lock poisoned")
            .inject_error = true;
    }

    /// The flusher thread's loop: wait for published commits, batch them
    /// per the policy, fsync once, resolve everything covered. Returns
    /// when closed and drained.
    pub(crate) fn run(&self) {
        loop {
            let (batch, file, path, appended, inject) = {
                let mut g = self.inner.lock().expect("flusher lock poisoned");
                loop {
                    if !g.pending.is_empty() {
                        let deadline =
                            g.first_at.expect("first_at set with pending") + self.batch_delay();
                        let now = Instant::now();
                        if g.closed
                            || g.failed.is_some()
                            || g.pending.len() >= self.policy.max_batch.max(1)
                            || now >= deadline
                        {
                            break;
                        }
                        let (next, _) = self
                            .ready
                            .wait_timeout(g, deadline - now)
                            .expect("flusher lock poisoned");
                        g = next;
                    } else if g.closed {
                        return;
                    } else {
                        g = self.ready.wait(g).expect("flusher lock poisoned");
                    }
                }
                if let Some(err) = &g.failed {
                    // Fail-stop: anything that slipped in resolves with
                    // the same typed error; no further I/O is attempted.
                    let error = StoreError::Wal(err.clone());
                    let orphans: Vec<PendingAck> = g.pending.drain(..).collect();
                    drop(g);
                    for ack in orphans {
                        self.resolve_failed(ack, &error);
                    }
                    continue;
                }
                g.pending.sort_by_key(|a| a.offset);
                let take = g.pending.len().min(self.policy.max_batch.max(1));
                let batch: Vec<PendingAck> = g.pending.drain(..take).collect();
                g.first_at = if g.pending.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                let (file, path) = g
                    .file
                    .clone()
                    .expect("a commit published before any ack was enqueued");
                let inject = std::mem::take(&mut g.inject_error);
                (batch, file, path, g.appended, inject)
            };
            // The fsync — off every lock, so publishes keep flowing while
            // the disk works.
            let result = if inject {
                Err(WalError::Io {
                    path: path.display().to_string(),
                    message: "injected flush failure".to_string(),
                })
            } else {
                file.sync_data().map_err(|e| io_err(&path, e))
            };
            match result {
                Ok(()) => {
                    let mut g = self.inner.lock().expect("flusher lock poisoned");
                    g.durable = g.durable.max(appended);
                    // The fsync covers every offset below the watermark —
                    // including acks that overflowed `max_batch` and acks
                    // enqueued while the fsync was in flight. Resolve them
                    // all now rather than making already-durable commits
                    // wait for (and trigger) another flush.
                    let durable = g.durable;
                    let mut covered: Vec<PendingAck> = Vec::new();
                    g.pending.retain_mut(|ack| {
                        if ack.offset < durable {
                            covered.push(PendingAck {
                                offset: ack.offset,
                                version: ack.version,
                                ticket: ack.ticket.take(),
                                tx: ack.tx,
                                enqueued_at_ns: ack.enqueued_at_ns,
                                published_at_ns: ack.published_at_ns,
                            });
                            false
                        } else {
                            true
                        }
                    });
                    if g.pending.is_empty() {
                        g.first_at = None;
                    }
                    let resolved = batch.len() + covered.len();
                    drop(g);
                    self.retune(resolved);
                    self.obs.wal_fsyncs.inc();
                    self.obs.wal_flushed_commits.add(resolved as u64);
                    self.obs.batch_size_counter(resolved).inc();
                    for ack in batch.into_iter().chain(covered) {
                        self.resolve_durable(ack);
                    }
                }
                Err(err) => {
                    let mut g = self.inner.lock().expect("flusher lock poisoned");
                    g.failed = Some(err.clone());
                    let rest: Vec<PendingAck> = g.pending.drain(..).collect();
                    drop(g);
                    self.obs.wal_flush_failures.inc();
                    let error = StoreError::Wal(err);
                    for ack in batch.into_iter().chain(rest) {
                        self.resolve_failed(ack, &error);
                    }
                }
            }
        }
    }
}

// --- the reader ------------------------------------------------------------

/// One valid record plus its global offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// The record's global index in the log.
    pub offset: u64,
    /// The decoded record.
    pub record: Record,
}

/// Everything a scan of the log directory found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogScan {
    /// All surviving records across all segments, in log order.
    pub records: Vec<LogRecord>,
    /// Global offset of the first surviving record: 0 for a full log,
    /// larger after segment retention deleted a checkpoint-covered prefix.
    pub base_offset: u64,
    /// Bytes of torn tail discarded from the last segment (0 = clean end).
    pub torn_bytes: u64,
    /// Sequence number of the last segment.
    pub last_seg_seq: u64,
    /// Valid length of the last segment (everything after is torn).
    pub last_seg_valid_len: u64,
}

/// Scans every segment of the log in `dir`, validating checksums and
/// continuity. The segments must be contiguous; they need not start at
/// `wal-00000000.log` — segment retention deletes checkpoint-covered
/// prefixes, and the first surviving segment's header tells the scan its
/// global base offset. A torn tail in the *last* segment is discarded and
/// reported; damage anywhere else is a hard [`WalError::Corrupt`].
pub fn scan_log(dir: impl AsRef<Path>) -> Result<LogScan, WalError> {
    let dir = dir.as_ref();
    let mut seqs: Vec<u64> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    if seqs.is_empty() {
        return Err(WalError::NoLog {
            dir: dir.display().to_string(),
        });
    }
    seqs.sort_unstable();
    let first_seq = seqs[0];
    for (i, &seq) in seqs.iter().enumerate() {
        if seq != first_seq + i as u64 {
            return Err(WalError::Corrupt {
                segment: segment_path(dir, seq).display().to_string(),
                offset: 0,
                detail: format!(
                    "segment sequence gap: expected wal-{:08}.log",
                    first_seq + i as u64
                ),
            });
        }
    }

    let mut records: Vec<LogRecord> = Vec::new();
    let mut base_offset: Option<u64> = None;
    let mut torn_bytes = 0u64;
    let mut last_valid_len = 0u64;
    let last_index = seqs.len() - 1;
    for (i, &seq) in seqs.iter().enumerate() {
        let path = segment_path(dir, seq);
        let segment = path.display().to_string();
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        let is_last = i == last_index;
        let mut pos = 0usize;
        let mut first = true;
        loop {
            if pos == bytes.len() {
                break;
            }
            let remaining = bytes.len() - pos;
            // A record the crash cut short: its framing or payload runs off
            // the end of the file. Only tolerable at the very tail.
            let (len, sum) = if remaining >= FRAME_HEADER {
                let len =
                    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
                (len, sum)
            } else {
                if is_last {
                    torn_bytes = remaining as u64;
                    break;
                }
                return Err(WalError::Corrupt {
                    segment,
                    offset: pos as u64,
                    detail: "truncated record framing in interior segment".to_string(),
                });
            };
            if pos + FRAME_HEADER + len > bytes.len() {
                if is_last {
                    torn_bytes = remaining as u64;
                    break;
                }
                return Err(WalError::Corrupt {
                    segment,
                    offset: pos as u64,
                    detail: "record extends past interior segment end".to_string(),
                });
            }
            let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
            if fnv1a_64(payload) != sum {
                let extends_to_eof = pos + FRAME_HEADER + len == bytes.len();
                if is_last && extends_to_eof {
                    // The final record checksums wrong and nothing follows:
                    // a torn write. Discard it.
                    torn_bytes = remaining as u64;
                    break;
                }
                return Err(WalError::Corrupt {
                    segment,
                    offset: pos as u64,
                    detail: "checksum mismatch".to_string(),
                });
            }
            if first {
                // Every segment must open with a matching header record.
                first = false;
                let mut c = Cursor::new(payload);
                let header = (|| -> Result<(u32, u64, u64), CodecError> {
                    let at = c.pos();
                    let tag = c.u8("segment tag")?;
                    if tag != TAG_SEGMENT {
                        return Err(CodecError::BadTag {
                            at,
                            what: "segment header",
                            tag,
                        });
                    }
                    let v = c.u32("format version")?;
                    let s = c.u64("segment seq")?;
                    let b = c.u64("base offset")?;
                    c.finish()?;
                    Ok((v, s, b))
                })();
                match header {
                    Ok((v, _, _)) if v != FORMAT_VERSION => {
                        return Err(WalError::Version {
                            found: v,
                            expected: FORMAT_VERSION,
                        })
                    }
                    Ok((_, s, b)) => {
                        // The first surviving segment *defines* the global
                        // base (retention may have deleted its
                        // predecessors); every later segment must continue
                        // exactly where the scan stands.
                        let expected_base = match base_offset {
                            None => b,
                            Some(base) => base + records.len() as u64,
                        };
                        if s != seq || b != expected_base {
                            return Err(WalError::Corrupt {
                                segment,
                                offset: pos as u64,
                                detail: format!(
                                    "segment header (seq {s}, base {b}) does not match its \
                                     position (seq {seq}, base {expected_base})"
                                ),
                            });
                        }
                        base_offset.get_or_insert(b);
                    }
                    Err(e) => {
                        return Err(WalError::Corrupt {
                            segment,
                            offset: pos as u64,
                            detail: format!("bad segment header: {e}"),
                        })
                    }
                }
            } else {
                match decode_record(payload) {
                    Ok(record) => records.push(LogRecord {
                        offset: base_offset.unwrap_or(0) + records.len() as u64,
                        record,
                    }),
                    Err(detail) => {
                        // The checksum matched, so these bytes are what the
                        // writer wrote — an undecodable record is damage a
                        // torn write cannot explain.
                        return Err(WalError::Corrupt {
                            segment,
                            offset: pos as u64,
                            detail,
                        });
                    }
                }
            }
            pos += FRAME_HEADER + len;
            if is_last {
                last_valid_len = pos as u64;
            }
        }
        if is_last && torn_bytes == 0 {
            last_valid_len = bytes.len() as u64;
        }
    }
    Ok(LogScan {
        records,
        base_offset: base_offset.unwrap_or(0),
        torn_bytes,
        last_seg_seq: first_seq + last_index as u64,
        last_seg_valid_len: last_valid_len,
    })
}

// --- segment retention -----------------------------------------------------

/// Reads a segment's header and returns the global offset of its first
/// record.
fn read_segment_base(path: &Path) -> Result<u64, WalError> {
    use std::io::Read;
    let corrupt = |detail: String| WalError::Corrupt {
        segment: path.display().to_string(),
        offset: 0,
        detail,
    };
    let mut f = File::open(path).map_err(|e| io_err(path, e))?;
    let mut framing = [0u8; FRAME_HEADER];
    f.read_exact(&mut framing)
        .map_err(|_| corrupt("segment shorter than record framing".to_string()))?;
    let len = u32::from_le_bytes(framing[0..4].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(framing[4..12].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len];
    f.read_exact(&mut payload)
        .map_err(|_| corrupt("segment shorter than its header record".to_string()))?;
    if fnv1a_64(&payload) != sum {
        return Err(corrupt("header checksum mismatch".to_string()));
    }
    let mut c = Cursor::new(&payload);
    (|| -> Result<u64, CodecError> {
        let at = c.pos();
        let tag = c.u8("segment tag")?;
        if tag != TAG_SEGMENT {
            return Err(CodecError::BadTag {
                at,
                what: "segment header",
                tag,
            });
        }
        let _version = c.u32("format version")?;
        let _seq = c.u64("segment seq")?;
        let base = c.u64("base offset")?;
        c.finish()?;
        Ok(base)
    })()
    .map_err(|e| corrupt(format!("bad segment header: {e}")))
}

/// Deletes every segment whose records are *entirely* below `covered` —
/// the retention pass run after a checkpoint at offset `covered` (unless
/// [`WalOptions::retain_segments`] opts out), and by `vpdtool wal gc`.
/// A segment is deletable when its successor's base offset is at most
/// `covered` (so every record it holds is checkpoint-covered) — the last
/// segment is never deleted. Returns the deleted paths.
pub fn gc_segments(dir: impl AsRef<Path>, covered: u64) -> Result<Vec<PathBuf>, WalError> {
    let dir = dir.as_ref();
    let seqs = list_segment_seqs(dir)?;
    let mut deleted = Vec::new();
    for pair in seqs.windows(2) {
        let (seq, next) = (pair[0], pair[1]);
        let next_base = read_segment_base(&segment_path(dir, next))?;
        if next_base > covered {
            break;
        }
        let path = segment_path(dir, seq);
        std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        deleted.push(path);
    }
    if !deleted.is_empty() {
        // Make the deletions themselves durable (best-effort, as for
        // segment creation).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(deleted)
}

/// The WAL segment sequence numbers present in `dir`, sorted ascending.
fn list_segment_seqs(dir: &Path) -> Result<Vec<u64>, WalError> {
    let mut seqs: Vec<u64> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Deletes superseded `checkpoint-*.ckpt` files, keeping exactly what
/// recovery can still use:
///
/// * the **newest** checkpoint (the default recovery start), and
/// * the **floor** checkpoint — the oldest one whose offset is at or
///   beyond the first surviving segment's base offset, which
///   [`recover`] requires (and replays from under
///   [`RecoveryOptions::from_genesis`]). For an unrotated log (base
///   offset 0) the floor is the genesis checkpoint, which is therefore
///   always kept.
///
/// Run after [`gc_segments`] (segment retention moves the floor
/// forward). Returns the deleted paths; deleting nothing is not an
/// error.
pub fn gc_checkpoints(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, WalError> {
    let dir = dir.as_ref();
    let cks = list_checkpoints(dir)?;
    if cks.len() <= 1 {
        return Ok(Vec::new());
    }
    let base = match list_segment_seqs(dir)?.first() {
        Some(&seq) => read_segment_base(&segment_path(dir, seq))?,
        // No segments at all: nothing constrains the floor; keep genesis
        // semantics by treating the base as 0.
        None => 0,
    };
    let floor = cks
        .iter()
        .find(|(off, _)| *off >= base)
        .map(|(_, p)| p.clone())
        // Every checkpoint is below the surviving log (should not happen:
        // segment GC keeps a covering segment) — keep the newest only.
        .unwrap_or_else(|| cks[cks.len() - 1].1.clone());
    let newest = cks[cks.len() - 1].1.clone();
    let mut deleted = Vec::new();
    for (_, path) in &cks {
        if *path == floor || *path == newest {
            continue;
        }
        std::fs::remove_file(path).map_err(|e| io_err(path, e))?;
        deleted.push(path.clone());
    }
    if !deleted.is_empty() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(deleted)
}

// --- checkpoints -----------------------------------------------------------

/// A snapshot checkpoint: everything recovery needs to start from the
/// middle of the log instead of genesis — and everything a *cold audit*
/// needs to resolve provenance without a live server.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Log records covered: replay starts at this global offset.
    pub offset: u64,
    /// The store version at the checkpoint.
    pub version: u64,
    /// The next transaction id (so a resumed server never reuses ids).
    pub next_tx: u64,
    /// FNV-1a hash of `db`'s stable encoding — the checkpoint's
    /// *self-check*: a checkpoint carries a materialized database, so
    /// hashing its exact bytes guards against snapshot corruption.
    pub state_hash: u64,
    /// [Root hash](crate::history::root_hash) of `db` — the *anchor*: the
    /// value the last covered commit record must have recorded, linking
    /// the checkpoint to its place in the log.
    pub root_hash: u64,
    /// The constraint `α` the store guards.
    pub alpha: Formula,
    /// The schema.
    pub schema: Schema,
    /// The full state.
    pub db: Database,
    /// Every statement shape ever registered, by id.
    pub templates: BTreeMap<u64, Template>,
}

fn checkpoint_path(dir: &Path, offset: u64) -> PathBuf {
    dir.join(format!("checkpoint-{offset:020}.ckpt"))
}

/// Writes a checkpoint file atomically (temp + fsync + rename) and returns
/// its path.
pub fn write_checkpoint(dir: &Path, ck: &Checkpoint) -> Result<PathBuf, WalError> {
    let mut payload = vec![TAG_CHECKPOINT];
    codec::put_u32(&mut payload, FORMAT_VERSION);
    codec::put_u64(&mut payload, ck.offset);
    codec::put_u64(&mut payload, ck.version);
    codec::put_u64(&mut payload, ck.next_tx);
    codec::put_u64(&mut payload, ck.state_hash);
    codec::put_u64(&mut payload, ck.root_hash);
    codec::encode_formula(&ck.alpha, &mut payload);
    codec::put_str(&mut payload, &ck.schema.encode());
    codec::put_str(&mut payload, &ck.db.encode());
    codec::put_u32(&mut payload, ck.templates.len() as u32);
    for (id, t) in &ck.templates {
        codec::put_u64(&mut payload, *id);
        codec::encode_program(t.shape(), &mut payload);
    }
    let framed = frame(&payload);

    let tmp = dir.join(".checkpoint.tmp");
    let path = checkpoint_path(dir, ck.offset);
    {
        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(&framed).map_err(|e| io_err(&tmp, e))?;
        f.sync_data().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    // Durability of the rename itself; non-fatal on filesystems that do
    // not support opening directories.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// Reads and verifies one checkpoint file.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint, WalError> {
    let path = path.as_ref();
    let bad = |detail: String| WalError::BadCheckpoint {
        path: path.display().to_string(),
        detail,
    };
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < FRAME_HEADER {
        return Err(bad("file shorter than record framing".to_string()));
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    if FRAME_HEADER + len != bytes.len() {
        return Err(bad(format!(
            "framing claims {} bytes, file has {}",
            FRAME_HEADER + len,
            bytes.len()
        )));
    }
    let payload = &bytes[FRAME_HEADER..];
    if fnv1a_64(payload) != sum {
        return Err(bad("checksum mismatch".to_string()));
    }
    let mut c = Cursor::new(payload);
    let tag = c.u8("checkpoint tag").map_err(|e| bad(e.to_string()))?;
    if tag != TAG_CHECKPOINT {
        return Err(bad(format!("not a checkpoint record (tag {tag:#04x})")));
    }
    // A version mismatch is its own typed error, not a decode failure:
    // callers (and operators) must be able to tell "old format, migrate or
    // regenerate" apart from "damaged file".
    let v = c.u32("format version").map_err(|e| bad(e.to_string()))?;
    if v != FORMAT_VERSION {
        return Err(WalError::Version {
            found: v,
            expected: FORMAT_VERSION,
        });
    }
    (|| -> Result<Checkpoint, String> {
        let offset = c.u64("offset").map_err(|e| e.to_string())?;
        let version = c.u64("version").map_err(|e| e.to_string())?;
        let next_tx = c.u64("next_tx").map_err(|e| e.to_string())?;
        let state_hash = c.u64("state hash").map_err(|e| e.to_string())?;
        let root_hash = c.u64("root hash").map_err(|e| e.to_string())?;
        let alpha = codec::decode_formula(&mut c).map_err(|e| e.to_string())?;
        let schema = Schema::decode(&c.str("schema").map_err(|e| e.to_string())?)?;
        let db = Database::decode(
            schema.clone(),
            &c.str("database").map_err(|e| e.to_string())?,
        )?;
        let n = c.count("template count").map_err(|e| e.to_string())?;
        let mut templates = BTreeMap::new();
        for _ in 0..n {
            let id = c.u64("shape id").map_err(|e| e.to_string())?;
            let shape = codec::decode_program(&mut c).map_err(|e| e.to_string())?;
            let t = Template::from_shape(shape).map_err(|e: TxError| e.to_string())?;
            templates.insert(id, t);
        }
        c.finish().map_err(|e| e.to_string())?;
        Ok(Checkpoint {
            offset,
            version,
            next_tx,
            state_hash,
            root_hash,
            alpha,
            schema,
            db,
            templates,
        })
    })()
    .map_err(bad)
}

/// The checkpoints present in `dir`, as `(offset, path)` sorted by offset.
pub fn list_checkpoints(dir: impl AsRef<Path>) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let dir = dir.as_ref();
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(off) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((off, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(off, _)| *off);
    Ok(out)
}

/// Reads the genesis checkpoint (offset 0) — the initial state a cold
/// audit replays from.
pub fn read_genesis(dir: impl AsRef<Path>) -> Result<Checkpoint, WalError> {
    let dir = dir.as_ref();
    let cks = list_checkpoints(dir)?;
    match cks.first() {
        Some((0, path)) => read_checkpoint(path),
        _ => Err(WalError::NoCheckpoint {
            dir: dir.display().to_string(),
        }),
    }
}

// --- recovery --------------------------------------------------------------

/// Knobs of [`recover`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryOptions {
    /// Ignore later checkpoints and replay the entire surviving log from
    /// the *floor* checkpoint — the genesis for a full log, the oldest
    /// checkpoint that still covers the first surviving record after
    /// segment retention. Slower; used by audits and by the property test
    /// that pins `recover(checkpoint + tail)` to the full replay.
    pub from_genesis: bool,
}

/// What a successful recovery reconstructed and verified.
#[derive(Clone, Debug)]
pub struct Recovered {
    /// The recovered state.
    pub db: Database,
    /// The recovered store version.
    pub version: u64,
    /// FNV-1a hash of the recovered state's full encoding (the
    /// [`state_hash`](crate::history::state_hash) self-check value).
    pub state_hash: u64,
    /// [Root hash](crate::history::root_hash) of the recovered state —
    /// matches the last durable commit's recorded `root_hash`.
    pub root_hash: u64,
    /// The next transaction id a resumed server should assign.
    pub next_tx: u64,
    /// Every statement shape declared by checkpoint or log, by id.
    pub templates: BTreeMap<u64, Template>,
    /// The event history from the floor checkpoint onward (shape records
    /// excluded) — the full history from genesis unless segment retention
    /// deleted a covered prefix.
    pub events: Vec<Event>,
    /// The constraint recorded at the checkpoint.
    pub alpha: Formula,
    /// The schema recorded at the checkpoint.
    pub schema: Schema,
    /// The floor checkpoint's state — what a cold audit replays
    /// [`events`](Recovered::events) from (the genesis state for a full
    /// log).
    pub initial: Database,
    /// The floor checkpoint's version: `initial` is the store at this
    /// version, and the first event in [`events`](Recovered::events)
    /// commits at `base_version + 1`. Zero for a full log.
    pub base_version: u64,
    /// Each relation's last-writer version, reconstructed from the
    /// replayed commit footprints (relations not written since the floor
    /// checkpoint carry `base_version`) — what a resumed store seeds its
    /// conflict validation with, so the first post-recovery disjoint
    /// commits validate against real history instead of a coarse
    /// recovery-point stamp.
    pub rel_versions: BTreeMap<String, u64>,
    /// Commits replayed (and verified) from the log tail.
    pub commits_replayed: usize,
    /// Log offset of the checkpoint recovery started from.
    pub checkpoint_offset: u64,
    /// Torn bytes discarded from the tail (0 = the log ended cleanly).
    pub torn_bytes: u64,
}

/// Recovers the store state from `dir`: loads the newest checkpoint
/// (or genesis, under [`RecoveryOptions::from_genesis`]), then replays the
/// log tail — verifying, for every commit, that its `(shape, bindings)`
/// provenance instantiates, that the deferred check-and-rollback path
/// accepts it, and that it reproduces the recorded state hash. Recovery
/// *is* a cold audit of the tail; [`crate::audit::cold_audit`] extends the
/// same verification to the whole log.
///
/// `omega` is the Ω interpretation programs run under — interpretations
/// are code, not data, so the caller supplies the same one the original
/// server ran with.
pub fn recover(
    dir: impl AsRef<Path>,
    omega: &Omega,
    opts: RecoveryOptions,
) -> Result<Recovered, RecoveryError> {
    let dir = dir.as_ref();
    let scan = scan_log(dir)?;
    let cks = list_checkpoints(dir)?;
    let (_, latest_path) = cks.last().ok_or_else(|| WalError::NoCheckpoint {
        dir: dir.display().to_string(),
    })?;
    // The *floor* checkpoint: the oldest one that can serve as a replay
    // base for the surviving log — genesis for a full log, the oldest
    // checkpoint at or past the first surviving record after segment
    // retention.
    let (_, floor_path) = cks
        .iter()
        .find(|(off, _)| *off >= scan.base_offset)
        .ok_or_else(|| RecoveryError::Divergence {
            detail: format!(
                "the log starts at offset {} but no checkpoint covers that far",
                scan.base_offset
            ),
        })?;
    let floor = read_checkpoint(floor_path)?;
    if scan.base_offset == 0 {
        if floor.offset != 0 {
            return Err(WalError::NoCheckpoint {
                dir: dir.display().to_string(),
            }
            .into());
        }
        if floor.version != 0 {
            return Err(RecoveryError::Divergence {
                detail: "genesis checkpoint does not describe version 0 at offset 0".to_string(),
            });
        }
    }
    let ck = if opts.from_genesis || latest_path == floor_path {
        // Re-reading (and re-decoding the full database of) the same
        // checkpoint file would double recovery's startup cost.
        floor.clone()
    } else {
        read_checkpoint(latest_path)?
    };

    // Every checkpoint in play must be internally consistent: the full
    // encoding hash (snapshot integrity) and the commitment root (the
    // anchor value commits record) must both match its state.
    for c in [&floor, &ck] {
        if state_hash(&c.db) != c.state_hash {
            return Err(RecoveryError::Divergence {
                detail: format!(
                    "checkpoint at offset {} records state hash {:#x} but its state hashes \
                     to {:#x}",
                    c.offset,
                    c.state_hash,
                    state_hash(&c.db)
                ),
            });
        }
        if root_hash(&c.db) != c.root_hash {
            return Err(RecoveryError::Divergence {
                detail: format!(
                    "checkpoint at offset {} records root hash {:#x} but its state's root \
                     is {:#x}",
                    c.offset,
                    c.root_hash,
                    root_hash(&c.db)
                ),
            });
        }
    }
    // ...within the surviving log's extent...
    let log_end = scan.base_offset + scan.records.len() as u64;
    if ck.offset < scan.base_offset || ck.offset > log_end {
        return Err(RecoveryError::Divergence {
            detail: format!(
                "checkpoint covers {} records but the log holds only offsets {}..{}",
                ck.offset, scan.base_offset, log_end
            ),
        });
    }
    // ...and anchored to the commit record it claims to cover.
    let last_commit_covered = scan.records[..(ck.offset - scan.base_offset) as usize]
        .iter()
        .rev()
        .find_map(|r| match &r.record {
            Record::Event(
                Event::Commit {
                    version, root_hash, ..
                }
                | Event::Cross {
                    version, root_hash, ..
                },
            ) => Some((*version, *root_hash)),
            _ => None,
        });
    match last_commit_covered {
        Some((v, h)) => {
            if v != ck.version || h != ck.root_hash {
                return Err(RecoveryError::Divergence {
                    detail: format!(
                        "checkpoint claims version {} (root hash {:#x}) but the last covered \
                         commit is version {v} (root hash {h:#x})",
                        ck.version, ck.root_hash
                    ),
                });
            }
        }
        None => {
            // No covered commit survives. On a full log that means the
            // checkpoint must be genesis-shaped; after retention the
            // covering commits may simply have been deleted, and the
            // self-hash check above remains the anchor.
            if scan.base_offset == 0 && ck.version != 0 {
                return Err(RecoveryError::Divergence {
                    detail: format!(
                        "checkpoint claims version {} but covers no commit records",
                        ck.version
                    ),
                });
            }
        }
    }

    // Shape identities: checkpointed templates plus every declaration in
    // the log. Conflicting declarations of one id are tampering.
    let mut templates = floor.templates.clone();
    for (id, template) in &ck.templates {
        if let Some(prev) = templates.get(id) {
            if prev != template {
                return Err(RecoveryError::Divergence {
                    detail: format!("shape {id} is declared twice with different templates"),
                });
            }
        } else {
            templates.insert(*id, template.clone());
        }
    }
    for r in &scan.records {
        if let Record::Shape { id, template } = &r.record {
            if let Some(prev) = templates.get(id) {
                if prev != template {
                    return Err(RecoveryError::Divergence {
                        detail: format!("shape {id} is declared twice with different templates"),
                    });
                }
            } else {
                templates.insert(*id, template.clone());
            }
        }
    }

    // Replay the tail, verifying as we go: recovery is a cold audit.
    let mut db = ck.db.clone();
    let mut version = ck.version;
    let mut commits_replayed = 0usize;
    for r in &scan.records[(ck.offset - scan.base_offset) as usize..] {
        // A `Cross` record replays exactly like a `Commit`: its
        // `(shape, bindings)` provenance reconstructs the shard-local
        // delta program, which must re-derive, pass check-and-rollback,
        // and reproduce the recorded root — the decision id it carries is
        // cross-checked against the decision log by the sharded recovery.
        let Record::Event(
            Event::Commit {
                tx,
                version: v,
                shape,
                bindings,
                root_hash: recorded,
                ..
            }
            | Event::Cross {
                tx,
                version: v,
                shape,
                bindings,
                root_hash: recorded,
                ..
            },
        ) = &r.record
        else {
            continue;
        };
        if *v != version + 1 {
            return Err(RecoveryError::Divergence {
                detail: format!(
                    "commit of tx {tx} has version {v}, expected {} (reordered or dropped \
                     commit)",
                    version + 1
                ),
            });
        }
        let template = templates.get(shape).ok_or(RecoveryError::UnknownShape {
            tx: *tx,
            shape: *shape,
        })?;
        let program = template
            .instantiate(bindings)
            .map_err(|e| RecoveryError::Provenance {
                tx: *tx,
                detail: e.to_string(),
            })?;
        let checked = RuntimeChecked::new(
            ProgramTransaction::new("recovery", program, omega.clone()),
            ck.alpha.clone(),
            omega.clone(),
        );
        match checked.apply(&db) {
            Ok(next) => {
                let computed = root_hash(&next);
                if computed != *recorded {
                    return Err(RecoveryError::HashMismatch {
                        tx: *tx,
                        version: *v,
                        recorded: *recorded,
                        computed,
                    });
                }
                db = next;
                version = *v;
                commits_replayed += 1;
            }
            Err(TxError::Aborted(reason)) => {
                return Err(RecoveryError::Rejected {
                    tx: *tx,
                    version: *v,
                    reason,
                })
            }
            Err(e) => {
                return Err(RecoveryError::Replay {
                    tx: *tx,
                    version: *v,
                    detail: e.to_string(),
                })
            }
        }
    }

    let events: Vec<Event> = scan
        .records
        .iter()
        .filter(|r| r.offset >= floor.offset)
        .filter_map(|r| match &r.record {
            Record::Event(e) => Some(e.clone()),
            Record::Shape { .. } | Record::Decision(_) => None,
        })
        .collect();
    let max_tx = events
        .iter()
        .map(|e| match e {
            Event::Begin { tx, .. }
            | Event::GuardEval { tx, .. }
            | Event::Commit { tx, .. }
            | Event::Abort { tx, .. }
            | Event::Cross { tx, .. } => *tx,
        })
        .max();
    let next_tx = ck
        .next_tx
        .max(floor.next_tx)
        .max(max_tx.map_or(0, |t| t + 1));

    // Each relation's actual last writer, reconstructed from the commit
    // footprints since the floor — finer than stamping every relation with
    // the recovery point, so the first post-recovery disjoint commits
    // validate against real history. Relations unwritten since the floor
    // carry the floor version (their true last writer is at or below it,
    // and every post-resume snapshot is above it, so the seed can only be
    // exact-or-conservative).
    let mut rel_versions: BTreeMap<String, u64> = ck
        .schema
        .iter()
        .map(|(name, _)| (name.to_string(), floor.version))
        .collect();
    for e in &events {
        if let Event::Commit {
            version: v, writes, ..
        }
        | Event::Cross {
            version: v, writes, ..
        } = e
        {
            for w in writes {
                let slot = rel_versions.entry(w.clone()).or_insert(0);
                *slot = (*slot).max(*v);
            }
        }
    }

    Ok(Recovered {
        state_hash: state_hash(&db),
        root_hash: root_hash(&db),
        db,
        version,
        next_tx,
        templates,
        events,
        alpha: ck.alpha,
        schema: ck.schema,
        initial: floor.db,
        base_version: floor.version,
        rel_versions,
        commits_replayed,
        checkpoint_offset: ck.offset,
        torn_bytes: scan.torn_bytes,
    })
}

impl VersionedStore {
    /// Recovers a store from a persisted directory: the durable analogue of
    /// [`VersionedStore::new`] (the crate re-exports `VersionedStore` as
    /// [`Store`](crate::Store)). Replays snapshot + log tail with full
    /// hash and provenance verification — see [`recover`] — and returns
    /// the live store (history seeded with the recovered events) together
    /// with the recovery report. To resume *serving*, hand the directory to
    /// [`StoreBuilder::recover`](crate::StoreBuilder::recover) instead.
    pub fn recover(
        dir: impl AsRef<Path>,
        omega: &Omega,
    ) -> Result<(VersionedStore, Recovered), RecoveryError> {
        let r = recover(dir, omega, RecoveryOptions::default())?;
        let store = VersionedStore::resume(
            r.db.clone(),
            r.version,
            crate::history::History::with_events(r.events.clone()),
            r.rel_versions.clone(),
        );
        Ok((store, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_tx::program::Program;
    use vpdt_tx::template::canonicalize;

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vpdt-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn event_menu() -> Vec<Event> {
        vec![
            Event::Begin {
                tx: 1,
                session: 7,
                version: 0,
                shape: 3,
                bindings: vec![Elem(5), Elem(0), Elem(u64::MAX)],
            },
            Event::GuardEval {
                tx: 1,
                version: 0,
                pass: true,
            },
            Event::GuardEval {
                tx: 2,
                version: 9,
                pass: false,
            },
            Event::Commit {
                tx: 1,
                based_on: 0,
                version: 1,
                writes: vec!["R0".into(), "R1".into()],
                shape: 3,
                bindings: vec![Elem(5)],
                root_hash: 0xdead_beef_cafe_f00d,
            },
            Event::Abort {
                tx: 2,
                version: 9,
                reason: "guard failed at version 9 — with punctuation; and\nnewlines".into(),
            },
        ]
    }

    #[test]
    fn events_roundtrip_byte_for_byte() {
        for e in event_menu() {
            let bytes = encode_event(&e);
            let back = decode_event(&bytes).expect("decodes");
            assert_eq!(back, e);
            assert_eq!(encode_event(&back), bytes);
        }
    }

    /// Pre-encoding a commit with placeholder version/root-hash and
    /// patching the two fields under the lock must produce the exact bytes
    /// a direct encoding of the final event would — the off-lock encoding
    /// path changes where the work happens, never what lands on disk.
    #[test]
    fn patched_commit_payload_equals_direct_encoding() {
        let placeholder = Event::Commit {
            tx: 9,
            based_on: 4,
            version: 0,
            writes: vec!["E".into(), "R17".into()],
            shape: 2,
            bindings: vec![Elem(1), Elem(7)],
            root_hash: 0,
        };
        let direct = Event::Commit {
            tx: 9,
            based_on: 4,
            version: 5,
            writes: vec!["E".into(), "R17".into()],
            shape: 2,
            bindings: vec![Elem(1), Elem(7)],
            root_hash: 0x1234_5678_9abc_def0,
        };
        let mut pre = encode_event(&placeholder);
        patch_commit_payload(&mut pre, 5, 0x1234_5678_9abc_def0);
        assert_eq!(pre, encode_event(&direct));
    }

    #[test]
    fn writer_reader_roundtrip_across_rotation() {
        let dir = tmp_dir("rotate");
        let mut w = WalWriter::create(
            &dir,
            WalOptions {
                segment_bytes: 96, // tiny: forces several segments
                fsync_commits: false,
                ..WalOptions::default()
            },
        )
        .expect("creates");
        let (template, _) =
            canonicalize(&Program::insert_consts("E", [1, 2])).expect("canonicalizes");
        w.append(&Record::Shape { id: 0, template })
            .expect("appends");
        for e in event_menu() {
            w.append(&Record::Event(e)).expect("appends");
        }
        w.sync().expect("syncs");
        assert_eq!(w.offset(), 6);

        let scan = scan_log(&dir).expect("scans");
        assert_eq!(scan.records.len(), 6);
        assert_eq!(scan.torn_bytes, 0);
        assert!(scan.last_seg_seq > 0, "rotation produced multiple segments");
        let events: Vec<Event> = scan
            .records
            .iter()
            .filter_map(|r| match &r.record {
                Record::Event(e) => Some(e.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(events, event_menu());

        // resume continues the offsets and remembers the logged shape
        let (w2, shapes) = WalWriter::resume(
            &dir,
            WalOptions {
                segment_bytes: 96,
                fsync_commits: false,
                ..WalOptions::default()
            },
        )
        .expect("resumes");
        assert_eq!(w2.offset(), 6);
        assert_eq!(shapes, BTreeSet::from([0]));
    }

    #[test]
    fn torn_tail_is_discarded_interior_corruption_is_hard() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(
            &dir,
            WalOptions {
                segment_bytes: u64::MAX,
                fsync_commits: false,
                ..WalOptions::default()
            },
        )
        .expect("creates");
        for e in event_menu() {
            w.append(&Record::Event(e)).expect("appends");
        }
        w.sync().expect("syncs");
        let seg = segment_path(&dir, 0);
        let clean = std::fs::read(&seg).expect("reads");

        // truncating anywhere inside the final record discards it cleanly
        let full = scan_log(&dir).expect("scans").records.len();
        for cut in 1..60 {
            std::fs::write(&seg, &clean[..clean.len() - cut]).expect("writes");
            let scan = scan_log(&dir).expect("torn tail must scan");
            assert!(scan.torn_bytes > 0, "cut {cut}: tail reported");
            assert!(scan.records.len() < full, "cut {cut}: a record was dropped");
        }

        // flipping a byte in an interior record is a hard error
        let mut flipped = clean.clone();
        let mid = clean.len() / 3;
        flipped[mid] ^= 0xff;
        std::fs::write(&seg, &flipped).expect("writes");
        match scan_log(&dir) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("interior flip: expected Corrupt, got {other:?}"),
        }

        // flipping a byte in the *final* record is a torn write: discarded
        let mut tail_flip = clean.clone();
        let last = clean.len() - 3;
        tail_flip[last] ^= 0xff;
        std::fs::write(&seg, &tail_flip).expect("writes");
        let scan = scan_log(&dir).expect("tail flip must scan");
        assert_eq!(scan.records.len(), full - 1);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn checkpoints_roundtrip_and_verify() {
        let dir = tmp_dir("ckpt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let db = Database::graph([(0, 1), (1, 2)]);
        let (template, _) =
            canonicalize(&Program::insert_consts("E", [1, 2])).expect("canonicalizes");
        let ck = Checkpoint {
            offset: 42,
            version: 7,
            next_tx: 19,
            state_hash: state_hash(&db),
            root_hash: root_hash(&db),
            alpha: vpdt_logic::parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z")
                .expect("parses"),
            schema: db.schema().clone(),
            db: db.clone(),
            templates: BTreeMap::from([(0, template)]),
        };
        let path = write_checkpoint(&dir, &ck).expect("writes");
        let back = read_checkpoint(&path).expect("reads");
        assert_eq!(back.offset, 42);
        assert_eq!(back.version, 7);
        assert_eq!(back.next_tx, 19);
        assert_eq!(back.db, db);
        assert_eq!(back.alpha, ck.alpha);
        assert_eq!(back.templates, ck.templates);

        // a flipped byte is a typed checksum failure
        let mut bytes = std::fs::read(&path).expect("reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).expect("writes");
        assert!(matches!(
            read_checkpoint(&path),
            Err(WalError::BadCheckpoint { .. })
        ));
    }

    /// A checkpoint written by an older format (for instance the version-1
    /// monolithic-hash scheme) is rejected with the typed version error —
    /// not a decode failure — even when its framing checksum is intact.
    #[test]
    fn old_format_checkpoint_is_rejected_with_typed_version_error() {
        let dir = tmp_dir("ckpt-version");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let db = Database::graph([(0, 1)]);
        let ck = Checkpoint {
            offset: 0,
            version: 0,
            next_tx: 0,
            state_hash: state_hash(&db),
            root_hash: root_hash(&db),
            alpha: Formula::True,
            schema: db.schema().clone(),
            db,
            templates: BTreeMap::new(),
        };
        let path = write_checkpoint(&dir, &ck).expect("writes");
        // Rewrite the format-version field (payload bytes 1..5, after the
        // tag) to claim version 1, and re-checksum so only the version
        // check can object.
        let mut bytes = std::fs::read(&path).expect("reads");
        let v_at = FRAME_HEADER + 1;
        bytes[v_at..v_at + 4].copy_from_slice(&1u32.to_le_bytes());
        let sum = fnv1a_64(&bytes[FRAME_HEADER..]);
        bytes[4..12].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).expect("writes");
        assert!(matches!(
            read_checkpoint(&path),
            Err(WalError::Version {
                found: 1,
                expected: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn fresh_log_refuses_existing_directory_and_no_log_is_typed() {
        let dir = tmp_dir("exists");
        let _w = WalWriter::create(&dir, WalOptions::default()).expect("creates");
        assert!(matches!(
            WalWriter::create(&dir, WalOptions::default()),
            Err(WalError::AlreadyExists { .. })
        ));
        let empty = tmp_dir("empty");
        std::fs::create_dir_all(&empty).expect("mkdir");
        assert!(matches!(scan_log(&empty), Err(WalError::NoLog { .. })));
        assert!(matches!(
            read_genesis(&empty),
            Err(WalError::NoCheckpoint { .. })
        ));
        // a stale checkpoint with no segments is just as poisonous as a
        // stale segment: refused too
        let stale = tmp_dir("stale-ckpt");
        std::fs::create_dir_all(&stale).expect("mkdir");
        std::fs::write(stale.join("checkpoint-00000000000000000007.ckpt"), b"old").expect("writes");
        assert!(matches!(
            WalWriter::create(&stale, WalOptions::default()),
            Err(WalError::AlreadyExists { .. })
        ));
    }

    /// A crash between segment creation and its header write leaves a
    /// header-less (empty or torn-header) last segment. Resume must repair
    /// it — rewrite the header, keep appending — and the result must stay
    /// scannable; the old bug appended records into the header-less file,
    /// making the whole log permanently unreadable.
    #[test]
    fn resume_repairs_a_headerless_last_segment() {
        let dir = tmp_dir("headerless");
        let opts = WalOptions {
            segment_bytes: u64::MAX,
            fsync_commits: false,
            ..WalOptions::default()
        };
        let mut w = WalWriter::create(&dir, opts.clone()).expect("creates");
        for e in event_menu() {
            w.append(&Record::Event(e)).expect("appends");
        }
        w.sync().expect("syncs");
        drop(w);
        // simulate the crash: segment 1 exists but is empty (no header)
        std::fs::write(segment_path(&dir, 1), b"").expect("creates empty segment");

        let (mut w2, _) = WalWriter::resume(&dir, opts.clone()).expect("resumes");
        assert_eq!(w2.offset(), event_menu().len() as u64);
        w2.append(&Record::Event(event_menu().remove(0)))
            .expect("appends after repair");
        w2.sync().expect("syncs");
        drop(w2);

        let scan = scan_log(&dir).expect("repaired log scans");
        assert_eq!(scan.records.len(), event_menu().len() + 1);
        assert_eq!(scan.torn_bytes, 0);
        // ...and the same holds when the bogus segment holds a torn header
        std::fs::write(segment_path(&dir, 2), [0x07, 0x00]).expect("torn header bytes");
        let (w3, _) = WalWriter::resume(&dir, opts).expect("resumes over torn header");
        assert_eq!(w3.offset(), event_menu().len() as u64 + 1);
        drop(w3);
        scan_log(&dir).expect("still scannable");
    }

    #[test]
    fn version_mismatch_is_typed() {
        let dir = tmp_dir("version");
        std::fs::create_dir_all(&dir).expect("mkdir");
        // hand-craft a segment whose header claims format version 99
        let mut payload = vec![TAG_SEGMENT];
        codec::put_u32(&mut payload, 99);
        codec::put_u64(&mut payload, 0);
        codec::put_u64(&mut payload, 0);
        std::fs::write(segment_path(&dir, 0), frame(&payload)).expect("writes");
        assert_eq!(
            scan_log(&dir),
            Err(WalError::Version {
                found: 99,
                expected: FORMAT_VERSION
            })
        );
    }
}
