//! The execution pipeline: submit, guard, commit — across worker threads.
//!
//! [`Submitter`] assigns transaction ids; [`run_jobs`] fans the jobs out
//! over `threads` workers. Each worker, per transaction:
//!
//! 1. pulls a fresh [`Snapshot`](crate::Snapshot) (lock-free reads of an
//!    `Arc`),
//! 2. evaluates its prepared guard against it — `if wpc(T, α) then T else
//!    abort`, with the guard compiled once *per statement shape* in the
//!    [`GuardCache`] down to its cheapest sound form (the Δ of Section 6
//!    where derivable) and instantiated with the transaction's bindings,
//! 3. on pass, applies the program operationally and offers the result to
//!    [`VersionedStore::try_commit`]; a relation-footprint conflict loops
//!    back to step 1 (the guard re-evaluates in tens of microseconds; the
//!    compilation never re-runs).
//!
//! [`run_serial_rollback`] is the baseline the paper's programme displaces:
//! one thread, no guard — run the transaction, test `α` on the result, roll
//! back on violation.

use crate::guard::GuardCache;
use crate::history::Event;
use crate::snapshot::{CommitOutcome, CommitRequest, VersionedStore};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use vpdt_core::safe::RuntimeChecked;
use vpdt_eval::{holds, Omega};
use vpdt_logic::Formula;
use vpdt_structure::Database;
use vpdt_tx::program::{Program, ProgramTransaction};
use vpdt_tx::traits::{normalize_domain, Transaction, TxError};

/// A transaction queued for execution.
#[derive(Clone, Debug)]
pub struct Job {
    /// Unique transaction id (assigned by [`Submitter`]).
    pub id: u64,
    /// The update program to run.
    pub program: Program,
}

/// Assigns transaction ids and accumulates a batch of jobs.
#[derive(Debug, Default)]
pub struct Submitter {
    jobs: Vec<Job>,
}

impl Submitter {
    /// An empty batch.
    pub fn new() -> Self {
        Submitter::default()
    }

    /// Queues a program; returns its transaction id.
    pub fn submit(&mut self, program: Program) -> u64 {
        let id = self.jobs.len() as u64;
        self.jobs.push(Job { id, program });
        id
    }

    /// The queued jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }
}

/// How one transaction ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxStatus {
    /// Committed at this store version.
    Committed {
        /// The version the commit produced.
        version: u64,
    },
    /// The guard failed: the transaction would have violated `α`.
    Aborted {
        /// Why.
        reason: String,
    },
    /// An execution error (not a deliberate abort).
    Failed {
        /// The error text.
        error: String,
    },
}

/// Per-transaction outcomes plus pipeline counters.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Outcome per transaction, indexed by job id.
    pub outcomes: Vec<(u64, TxStatus)>,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions the guard aborted.
    pub aborted: usize,
    /// Transactions that failed with an error.
    pub failed: usize,
    /// Commit offers rejected by footprint validation (each one cost a
    /// guard re-evaluation).
    pub conflicts: u64,
    /// Guard-cache hits.
    pub guard_hits: u64,
    /// Guard-cache misses (compilations).
    pub guard_misses: u64,
}

/// Runs the batch across `threads` workers against the store. Outcomes are
/// returned in job order; counters aggregate the whole run.
///
/// The guards are only sound on states satisfying `α` (that is the whole
/// point of the Section 6 reduction), so the base case is established
/// here: if the store's current state violates `α` — or `α` fails to
/// evaluate — every job fails fast and nothing commits.
pub fn run_jobs(
    store: &VersionedStore,
    cache: &GuardCache,
    jobs: &[Job],
    threads: usize,
) -> ExecReport {
    let entry = store.snapshot();
    match holds(&entry.db, cache.omega(), cache.alpha()) {
        Ok(true) => {}
        verdict => {
            let error = match verdict {
                Ok(false) => format!(
                    "store state at version {} violates the constraint; guards would be unsound",
                    entry.version
                ),
                Err(e) => format!("constraint does not evaluate on the store state: {e}"),
                Ok(true) => unreachable!(),
            };
            let outcomes: Vec<(u64, TxStatus)> = jobs
                .iter()
                .map(|j| {
                    (
                        j.id,
                        TxStatus::Failed {
                            error: error.clone(),
                        },
                    )
                })
                .collect();
            let failed = outcomes.len();
            return ExecReport {
                outcomes,
                committed: 0,
                aborted: 0,
                failed,
                conflicts: 0,
                guard_hits: 0,
                guard_misses: 0,
            };
        }
    }

    let next = AtomicUsize::new(0);
    let conflicts = AtomicU64::new(0);
    let outcomes: Mutex<Vec<(u64, TxStatus)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let workers = threads.clamp(1, jobs.len().max(1));
    let (hits0, misses0) = cache.stats();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let status = run_one(store, cache, job, &conflicts);
                    local.push((job.id, status));
                }
                outcomes
                    .lock()
                    .expect("outcome lock poisoned")
                    .extend(local);
            });
        }
    });

    let mut outcomes = outcomes.into_inner().expect("outcome lock poisoned");
    outcomes.sort_by_key(|(id, _)| *id);
    let committed = outcomes
        .iter()
        .filter(|(_, s)| matches!(s, TxStatus::Committed { .. }))
        .count();
    let aborted = outcomes
        .iter()
        .filter(|(_, s)| matches!(s, TxStatus::Aborted { .. }))
        .count();
    let failed = outcomes.len() - committed - aborted;
    let (hits1, misses1) = cache.stats();
    ExecReport {
        outcomes,
        committed,
        aborted,
        failed,
        conflicts: conflicts.load(Ordering::Relaxed),
        guard_hits: hits1 - hits0,
        guard_misses: misses1 - misses0,
    }
}

fn run_one(
    store: &VersionedStore,
    cache: &GuardCache,
    job: &Job,
    conflicts: &AtomicU64,
) -> TxStatus {
    // Canonicalize → fetch-or-compile the shape → instantiate the guard.
    // The compilation is shared per statement shape; the per-transaction
    // work from here on is one binding substitution plus evaluations.
    let prepared = match cache.get_or_compile(&job.program) {
        Ok(p) => p,
        Err(e) => {
            return TxStatus::Failed {
                error: e.to_string(),
            }
        }
    };
    let history = store.history();
    let mut first = true;
    loop {
        let snap = store.snapshot();
        if first {
            history.record(Event::Begin {
                tx: job.id,
                version: snap.version,
                shape: prepared.shape.id,
                bindings: prepared.bindings.clone(),
            });
            first = false;
        }
        let pass = match holds(&snap.db, cache.omega(), &prepared.guard) {
            Ok(p) => p,
            Err(e) => {
                return TxStatus::Failed {
                    error: e.to_string(),
                }
            }
        };
        history.record(Event::GuardEval {
            tx: job.id,
            version: snap.version,
            pass,
        });
        if !pass {
            let reason = format!("guard failed at version {}", snap.version);
            history.record(Event::Abort {
                tx: job.id,
                version: snap.version,
                reason: reason.clone(),
            });
            return TxStatus::Aborted { reason };
        }
        // Direct operational semantics on the ground program the job
        // already owns — no per-transaction applier is allocated.
        let new_db = match job
            .program
            .run(&snap.db, cache.omega())
            .map(normalize_domain)
        {
            Ok(db) => db,
            Err(e) => {
                return TxStatus::Failed {
                    error: e.to_string(),
                }
            }
        };
        let req = CommitRequest {
            tx: job.id,
            based_on: snap.version,
            reads: prepared.reads().clone(),
            writes: prepared.writes().clone(),
            shape: prepared.shape.id,
            bindings: prepared.bindings.clone(),
            new_db,
        };
        match store.try_commit(req) {
            CommitOutcome::Committed { version } => return TxStatus::Committed { version },
            CommitOutcome::Conflict { .. } => {
                conflicts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The deferred-checking baseline: one thread applies each job in order via
/// [`RuntimeChecked`] (run, test `α` on the result, roll back on violation).
/// Returns the final state and the per-job outcomes, shaped like
/// [`run_jobs`]'s report for direct comparison.
pub fn run_serial_rollback(
    initial: Database,
    jobs: &[Job],
    alpha: &Formula,
    omega: &Omega,
) -> (Database, ExecReport) {
    let mut state = initial;
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut committed = 0;
    let mut aborted = 0;
    let mut failed = 0;
    for (i, job) in jobs.iter().enumerate() {
        let tx = ProgramTransaction::new("serial", job.program.clone(), omega.clone());
        let checked = RuntimeChecked::new(tx, alpha.clone(), omega.clone());
        match checked.apply(&state) {
            Ok(next) => {
                state = next;
                committed += 1;
                outcomes.push((
                    job.id,
                    TxStatus::Committed {
                        version: i as u64 + 1,
                    },
                ));
            }
            Err(TxError::Aborted(reason)) => {
                aborted += 1;
                outcomes.push((job.id, TxStatus::Aborted { reason }));
            }
            Err(e) => {
                failed += 1;
                outcomes.push((
                    job.id,
                    TxStatus::Failed {
                        error: e.to_string(),
                    },
                ));
            }
        }
    }
    let report = ExecReport {
        outcomes,
        committed,
        aborted,
        failed,
        conflicts: 0,
        guard_hits: 0,
        guard_misses: 0,
    };
    (state, report)
}
