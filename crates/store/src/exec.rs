//! The execution core: submit, guard, commit — one worker loop, two front
//! doors.
//!
//! The resident [`StoreServer`](crate::StoreServer) worker pool and the
//! batch-compatibility wrapper [`run_jobs`] drive the *same* internal loop
//! ([`worker_loop`]): work items arrive over an MPMC submission queue and
//! each worker, per transaction:
//!
//! 1. pulls a fresh [`Snapshot`](crate::Snapshot) (lock-free reads of an
//!    `Arc`),
//! 2. evaluates its prepared guard against it — `if wpc(T, α) then T else
//!    abort`, with the guard compiled once *per statement shape* in the
//!    [`GuardCache`] down to its cheapest sound form (the Δ of Section 6
//!    where derivable) and instantiated with the transaction's bindings,
//! 3. on pass, applies the program operationally and offers the result to
//!    [`VersionedStore::try_commit`]; a relation-footprint conflict loops
//!    back to step 1 under the server's
//!    [`RetryPolicy`](crate::RetryPolicy) (the guard re-evaluates in tens
//!    of microseconds; the compilation never re-runs).
//!
//! `try_commit` returns the **publish**-phase outcome: on a durable server
//! that fsyncs commits, the worker does *not* resolve the ticket — it
//! marks it applied and hands it, with the commit record's log offset, to
//! the group-commit flusher, which fsyncs once for every pending commit
//! and resolves all the tickets the flush covers (the **durable** phase).
//! Aborts, failures, and in-memory servers have no durable phase: the
//! worker resolves those tickets on the spot, exactly as before.
//!
//! Every one of these resolution paths — worker, flusher, and the
//! drop-guard on a dying work item — funnels through the ticket's
//! completion slot, so a callback registered with
//! [`TxTicket::on_resolve`](crate::TxTicket::on_resolve) fires no matter
//! which path resolves the ticket. The callback runs on the resolving
//! thread *after* the ticket lock is dropped: the off-lock discipline of
//! the commit critical section is untouched (no user code ever runs
//! inside `try_commit` or under the flusher's batch lock).
//!
//! [`run_serial_rollback`] is the baseline the paper's programme displaces:
//! one thread, no guard — run the transaction, test `α` on the result, roll
//! back on violation.

use crate::guard::GuardCache;
use crate::history::Event;
use crate::metrics::StoreMetrics;
use crate::server::RetryPolicy;
use crate::session::TicketState;
use crate::snapshot::{CommitOutcome, CommitRequest, VersionedStore};
use crate::wal::{GroupCommitFlusher, PendingAck};
use crate::{AbortReason, StoreError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use vpdt_core::safe::RuntimeChecked;
use vpdt_eval::{holds, Omega};
use vpdt_logic::Formula;
use vpdt_obs::TraceStage;
use vpdt_structure::Database;
use vpdt_tx::program::{Program, ProgramTransaction};
use vpdt_tx::traits::{normalize_domain, Transaction, TxError};

/// The session id recorded for transactions that did not come through a
/// [`Session`](crate::Session) — the batch-compatibility path.
pub const BATCH_SESSION: u64 = 0;

/// A transaction queued for execution.
#[derive(Clone, Debug)]
pub struct Job {
    /// Unique transaction id (assigned by [`Submitter`]).
    pub id: u64,
    /// The update program to run.
    pub program: Program,
}

/// Assigns transaction ids and accumulates a batch of jobs — the legacy
/// closed-batch front door, kept for the benches' batch comparison. New
/// code should hold a [`Session`](crate::Session) on a
/// [`StoreServer`](crate::StoreServer) instead.
#[derive(Debug, Default)]
pub struct Submitter {
    jobs: Vec<Job>,
}

impl Submitter {
    /// An empty batch.
    pub fn new() -> Self {
        Submitter::default()
    }

    /// Queues a program; returns its transaction id.
    pub fn submit(&mut self, program: Program) -> u64 {
        let id = self.jobs.len() as u64;
        self.jobs.push(Job { id, program });
        id
    }

    /// The queued jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }
}

/// How one transaction ended — fully typed: aborts carry an
/// [`AbortReason`], failures a [`StoreError`], so clients branch on the
/// cause instead of parsing message strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// Committed at this store version.
    Committed {
        /// The version the commit produced.
        version: u64,
    },
    /// The guard (or the rollback baseline) aborted the transaction: it
    /// would have violated `α`.
    Aborted {
        /// Why, with the version and shape the decision observed.
        reason: AbortReason,
    },
    /// An execution error (not a deliberate abort).
    Failed {
        /// The typed error.
        error: StoreError,
    },
}

/// The historical name of [`TxOutcome`], kept as an alias so batch-era
/// call sites read unchanged.
pub type TxStatus = TxOutcome;

/// Per-transaction outcomes plus pipeline counters.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Outcome per transaction, ordered by transaction id.
    pub outcomes: Vec<(u64, TxOutcome)>,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions the guard aborted.
    pub aborted: usize,
    /// Transactions that failed with an error.
    pub failed: usize,
    /// Commit offers rejected by footprint validation (each one cost a
    /// guard re-evaluation).
    pub conflicts: u64,
    /// Guard-cache hits.
    pub guard_hits: u64,
    /// Guard-cache misses (compilations).
    pub guard_misses: u64,
}

impl ExecReport {
    /// Builds a report from raw outcomes (sorted by id here) and counters.
    pub(crate) fn from_outcomes(
        mut outcomes: Vec<(u64, TxOutcome)>,
        conflicts: u64,
        guard_hits: u64,
        guard_misses: u64,
    ) -> Self {
        outcomes.sort_by_key(|(id, _)| *id);
        let committed = outcomes
            .iter()
            .filter(|(_, s)| matches!(s, TxOutcome::Committed { .. }))
            .count();
        let aborted = outcomes
            .iter()
            .filter(|(_, s)| matches!(s, TxOutcome::Aborted { .. }))
            .count();
        let failed = outcomes.len() - committed - aborted;
        ExecReport {
            outcomes,
            committed,
            aborted,
            failed,
            conflicts,
            guard_hits,
            guard_misses,
        }
    }
}

/// One unit of work on the submission queue: a transaction plus the ticket
/// (if any) to resolve with its outcome.
pub(crate) struct WorkItem {
    pub tx: u64,
    pub session: u64,
    pub program: Program,
    /// `None` on the batch path — outcomes are only collected in the report.
    pub ticket: Option<Arc<TicketState>>,
    /// When the item entered the queue (registry ns) — the birth stamp
    /// queue-wait and end-to-end latency measure from.
    pub enqueued_at_ns: u64,
}

/// The no-hang guarantee: however a work item dies — a worker panicking
/// mid-transaction (the item unwinds), or a queue torn down with items
/// still inside — its ticket resolves. Normal completion resolves with the
/// real outcome first, making this a no-op.
impl Drop for WorkItem {
    fn drop(&mut self) {
        if let Some(ticket) = &self.ticket {
            ticket.resolve_if_unresolved(TxOutcome::Failed {
                error: StoreError::WorkerLost,
            });
        }
    }
}

struct QueueState {
    items: VecDeque<WorkItem>,
    closed: bool,
}

/// The multi-producer/multi-consumer submission queue. A deliberately
/// simple Mutex + Condvar design rather than `std::sync::mpsc`: every
/// worker pops directly (an idle worker parks *inside* the condvar wait,
/// releasing the lock, so one empty-queue sleeper never serializes its
/// siblings the way a shared blocking `Receiver` behind a mutex would),
/// and closing is explicit, which is what gives shutdown its
/// drain-then-stop semantics.
pub(crate) struct WorkQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl WorkQueue {
    pub(crate) fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one item. A closed queue refuses and hands the item back,
    /// so the caller decides how its ticket resolves (dropping it would
    /// resolve as `WorkerLost`, which is not what a refused submission
    /// means).
    // The large Err is the point: the refused item must come back whole,
    // and refusal is the cold path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push(&self, item: WorkItem) -> Result<(), WorkItem> {
        let mut state = self.state.lock().expect("work queue poisoned");
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Closes the queue: no further pushes are accepted, and pops drain
    /// what remains, then return `None`.
    pub(crate) fn close(&self) {
        self.state.lock().expect("work queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained.
    pub(crate) fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("work queue poisoned");
        }
    }
}

/// Where worker outcomes land: always the aggregate counters; the
/// per-transaction list only when `retain` is set. A resident server
/// serving unbounded traffic can turn retention off
/// ([`StoreBuilder::retain_outcomes`](crate::StoreBuilder::retain_outcomes))
/// — clients already get each outcome through their ticket, so the list is
/// pure duplication held until shutdown.
pub(crate) struct OutcomeSink {
    retain: bool,
    outcomes: Mutex<Vec<(u64, TxOutcome)>>,
    committed: AtomicU64,
    aborted: AtomicU64,
    failed: AtomicU64,
}

impl OutcomeSink {
    pub(crate) fn new(retain: bool, capacity: usize) -> Self {
        OutcomeSink {
            retain,
            outcomes: Mutex::new(Vec::with_capacity(if retain { capacity } else { 0 })),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    fn record(&self, tx: u64, outcome: TxOutcome) {
        match &outcome {
            TxOutcome::Committed { .. } => &self.committed,
            TxOutcome::Aborted { .. } => &self.aborted,
            TxOutcome::Failed { .. } => &self.failed,
        }
        .fetch_add(1, Ordering::Relaxed);
        if self.retain {
            self.outcomes
                .lock()
                .expect("outcome sink poisoned")
                .push((tx, outcome));
        }
    }

    /// Drains the sink into a report (outcomes sorted by id; empty when
    /// retention was off — the counters are authoritative either way).
    pub(crate) fn into_report(
        self,
        conflicts: u64,
        guard_hits: u64,
        guard_misses: u64,
    ) -> ExecReport {
        let mut outcomes = self.outcomes.into_inner().expect("outcome sink poisoned");
        outcomes.sort_by_key(|(id, _)| *id);
        ExecReport {
            outcomes,
            committed: self.committed.load(Ordering::Relaxed) as usize,
            aborted: self.aborted.load(Ordering::Relaxed) as usize,
            failed: self.failed.load(Ordering::Relaxed) as usize,
            conflicts,
            guard_hits,
            guard_misses,
        }
    }
}

/// The worker loop both front doors run: drain the queue, execute each
/// item, settle its ticket, record its outcome. Returns when the queue is
/// closed and empty (server shutdown, or the batch fully drained).
///
/// Ticket settlement is two-phased where durability demands it: a commit
/// on a server with a `group` flusher is only *published* here — the
/// ticket is marked applied and enqueued (with its log offset) for the
/// flusher to resolve after the covering fsync. Everything else resolves
/// immediately. Outcome counters record at publish time: a published
/// commit is in the serialization order regardless of when its fsync
/// lands (and a flush failure is fail-stop, reported through every
/// covered ticket).
pub(crate) fn worker_loop(
    store: &VersionedStore,
    cache: &GuardCache,
    retry: &RetryPolicy,
    queue: &WorkQueue,
    sink: &OutcomeSink,
    obs: &StoreMetrics,
    group: Option<&GroupCommitFlusher>,
) {
    while let Some(mut item) = queue.pop() {
        let dequeued_at_ns = obs.now_ns();
        obs.queue_wait
            .observe(dequeued_at_ns.saturating_sub(item.enqueued_at_ns) / 1_000);
        obs.trace(item.tx, TraceStage::Dequeued);
        let (outcome, wal_offset) = execute_one(store, cache, retry, &item, obs);
        match &outcome {
            TxOutcome::Committed { .. } => obs.committed.inc(),
            TxOutcome::Aborted { .. } => obs.aborted.inc(),
            TxOutcome::Failed { .. } => obs.failed.inc(),
        }
        match (&outcome, wal_offset, group) {
            (TxOutcome::Committed { version }, Some(offset), Some(flusher)) => {
                // Take the ticket out of the item so the item's drop guard
                // cannot mistake the durability wait for a lost worker.
                let ticket = item.ticket.take();
                if let Some(ticket) = &ticket {
                    ticket.mark_applied(*version);
                }
                // End-to-end latency for the durable path is observed by
                // the flusher when the covering fsync resolves the ticket.
                flusher.enqueue(PendingAck {
                    offset,
                    version: *version,
                    ticket,
                    tx: item.tx,
                    enqueued_at_ns: item.enqueued_at_ns,
                    published_at_ns: obs.now_ns(),
                });
            }
            _ => {
                if let TxOutcome::Failed { error } = &outcome {
                    obs.trace(
                        item.tx,
                        TraceStage::Failed {
                            reason: error.code().to_string(),
                        },
                    );
                }
                obs.tx_total.observe(obs.us_since(item.enqueued_at_ns));
                if let Some(ticket) = item.ticket.take() {
                    ticket.resolve(outcome.clone());
                }
            }
        }
        sink.record(item.tx, outcome);
    }
}

/// Executes one transaction: prepare (fetch-or-compile the statement
/// shape), guard, apply, offer to commit; on footprint conflict, retry
/// under the policy. The compilation is shared per statement shape; the
/// per-transaction work is one binding substitution plus evaluations.
/// Returns the publish-phase outcome plus, for a commit on a persisted
/// store, the commit record's log offset — what the durable phase needs.
pub(crate) fn execute_one(
    store: &VersionedStore,
    cache: &GuardCache,
    retry: &RetryPolicy,
    item: &WorkItem,
    obs: &StoreMetrics,
) -> (TxOutcome, Option<u64>) {
    let prepared = match cache.get_or_compile(&item.program) {
        Ok(p) => p,
        Err(error) => return (TxOutcome::Failed { error }, None),
    };
    let history = store.history();
    // Durable provenance: the statement shape is declared to the log before
    // any event references its id, so a cold recovery can resolve every
    // (shape, bindings) pair it replays. No-op for in-memory histories and
    // for shapes already on disk.
    history.declare_shape(prepared.shape.id, &prepared.shape.template);
    let mut first = true;
    let mut retries = 0u32;
    loop {
        let snap = store.snapshot();
        if first {
            history.record(Event::Begin {
                tx: item.tx,
                session: item.session,
                version: snap.version,
                shape: prepared.shape.id,
                bindings: prepared.bindings.clone(),
            });
            first = false;
        }
        let guard_started_ns = obs.now_ns();
        let pass = match holds(&snap.db, cache.omega(), &prepared.guard) {
            Ok(p) => p,
            Err(e) => {
                return (
                    TxOutcome::Failed {
                        error: StoreError::Eval(e),
                    },
                    None,
                )
            }
        };
        obs.guard_eval.observe(obs.us_since(guard_started_ns));
        obs.trace(
            item.tx,
            TraceStage::GuardEvaluated {
                version: snap.version,
                pass,
                cache_hit: prepared.cache_hit,
            },
        );
        history.record(Event::GuardEval {
            tx: item.tx,
            version: snap.version,
            pass,
        });
        if !pass {
            let reason = AbortReason::GuardFailed {
                version: snap.version,
                shape: prepared.shape.id,
            };
            history.record(Event::Abort {
                tx: item.tx,
                version: snap.version,
                reason: reason.to_string(),
            });
            obs.trace(
                item.tx,
                TraceStage::Aborted {
                    reason: reason.to_string(),
                },
            );
            return (TxOutcome::Aborted { reason }, None);
        }
        // Direct operational semantics on the ground program the item
        // already owns — no per-transaction applier is allocated.
        let new_db = match item
            .program
            .run(&snap.db, cache.omega())
            .map(normalize_domain)
        {
            Ok(db) => db,
            Err(e) => {
                return (
                    TxOutcome::Failed {
                        error: StoreError::Tx(e),
                    },
                    None,
                )
            }
        };
        // Pre-encode the commit's WAL payload here, outside the store's
        // write lock: every field except the assigned version and the root
        // hash is already known, and those two are 16 fixed bytes the lock
        // patches in place. Re-encoded per attempt (based_on changes on
        // retry); skipped entirely for in-memory stores.
        let encoded = history.is_durable().then(|| {
            crate::wal::encode_event(&Event::Commit {
                tx: item.tx,
                based_on: snap.version,
                version: 0,
                writes: prepared.writes().iter().cloned().collect(),
                shape: prepared.shape.id,
                bindings: prepared.bindings.clone(),
                root_hash: 0,
            })
        });
        let req = CommitRequest {
            tx: item.tx,
            based_on: snap.version,
            reads: prepared.reads().clone(),
            writes: prepared.writes().clone(),
            shape: prepared.shape.id,
            bindings: prepared.bindings.clone(),
            new_db,
            encoded,
        };
        let publish_started_ns = obs.now_ns();
        let (outcome, lock_held) = store.try_commit_timed(req);
        obs.publish_lock.observe(lock_held.as_micros() as u64);
        match outcome {
            CommitOutcome::Committed {
                version,
                wal_offset,
            } => {
                obs.publish.observe(obs.us_since(publish_started_ns));
                obs.trace(item.tx, TraceStage::Published { version });
                return (TxOutcome::Committed { version }, wal_offset);
            }
            CommitOutcome::Conflict { version } => {
                obs.conflicts.inc();
                obs.trace(item.tx, TraceStage::ConflictRetried { version });
                if !retry.may_retry(retries) {
                    return (
                        TxOutcome::Failed {
                            error: StoreError::RetriesExhausted {
                                retries,
                                version,
                                relations: prepared
                                    .reads()
                                    .union(prepared.writes())
                                    .cloned()
                                    .collect(),
                            },
                        },
                        None,
                    );
                }
                retries += 1;
                retry.backoff(retries);
            }
        }
    }
}

/// Fails every job with the same error — the fail-fast path when the
/// soundness base case cannot be established.
pub(crate) fn fail_all(jobs: &[Job], error: StoreError) -> ExecReport {
    let outcomes = jobs
        .iter()
        .map(|j| {
            (
                j.id,
                TxOutcome::Failed {
                    error: error.clone(),
                },
            )
        })
        .collect();
    ExecReport::from_outcomes(outcomes, 0, 0, 0)
}

/// Checks the guard-soundness base case: `α` must hold on the store's
/// current state (the Section 6 guards are only sound on consistent
/// states).
pub(crate) fn check_base_case(
    store: &VersionedStore,
    cache: &GuardCache,
) -> Result<(), StoreError> {
    let entry = store.snapshot();
    match holds(&entry.db, cache.omega(), cache.alpha()) {
        Ok(true) => Ok(()),
        Ok(false) => Err(StoreError::GuardUnsound {
            version: entry.version,
        }),
        Err(error) => Err(StoreError::ConstraintUnevaluable {
            version: entry.version,
            error,
        }),
    }
}

/// Runs a closed batch across `threads` workers against the store — the
/// legacy front door, now a thin wrapper over the same worker loop the
/// resident [`StoreServer`](crate::StoreServer) pool runs: the jobs are
/// enqueued on a temporary submission queue, scoped workers drain it, and
/// the report is assembled exactly as
/// [`StoreServer::shutdown`](crate::StoreServer::shutdown) would.
/// Outcomes are returned in job order; counters aggregate the whole run.
///
/// The guards are only sound on states satisfying `α` (that is the whole
/// point of the Section 6 reduction), so the base case is established
/// here: if the store's current state violates `α` — or `α` fails to
/// evaluate — every job fails fast and nothing commits. (A resident
/// server establishes the same base case once, in
/// [`StoreBuilder::build`](crate::StoreBuilder::build).)
pub fn run_jobs(
    store: &VersionedStore,
    cache: &GuardCache,
    jobs: &[Job],
    threads: usize,
) -> ExecReport {
    if let Err(error) = check_base_case(store, cache) {
        return fail_all(jobs, error);
    }

    let retry = RetryPolicy::unbounded();
    // A batch run is ephemeral: it gets its own registry (no tracing) so
    // its counters don't leak into any resident server's.
    let obs = StoreMetrics::new(0);
    let sink = OutcomeSink::new(true, jobs.len());
    let workers = threads.clamp(1, jobs.len().max(1));
    let (hits0, misses0) = cache.stats();

    let queue = WorkQueue::new();
    for job in jobs {
        queue
            .push(WorkItem {
                tx: job.id,
                session: BATCH_SESSION,
                program: job.program.clone(),
                ticket: None,
                enqueued_at_ns: obs.now_ns(),
            })
            .unwrap_or_else(|_| unreachable!("queue not yet closed"));
    }
    // The whole batch is enqueued: closing turns the queue into a drain,
    // so the workers exit when it is empty.
    queue.close();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(store, cache, &retry, &queue, &sink, &obs, None));
        }
    });

    let (hits1, misses1) = cache.stats();
    sink.into_report(obs.conflicts.get(), hits1 - hits0, misses1 - misses0)
}

/// The deferred-checking baseline: one thread applies each job in order via
/// [`RuntimeChecked`] (run, test `α` on the result, roll back on violation).
/// Returns the final state and the per-job outcomes, shaped like
/// [`run_jobs`]'s report for direct comparison.
pub fn run_serial_rollback(
    initial: Database,
    jobs: &[Job],
    alpha: &Formula,
    omega: &Omega,
) -> (Database, ExecReport) {
    let mut state = initial;
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let tx = ProgramTransaction::new("serial", job.program.clone(), omega.clone());
        let checked = RuntimeChecked::new(tx, alpha.clone(), omega.clone());
        match checked.apply(&state) {
            Ok(next) => {
                state = next;
                outcomes.push((
                    job.id,
                    TxOutcome::Committed {
                        version: i as u64 + 1,
                    },
                ));
            }
            Err(TxError::Aborted(reason)) => {
                outcomes.push((
                    job.id,
                    TxOutcome::Aborted {
                        reason: AbortReason::RolledBack { reason },
                    },
                ));
            }
            Err(e) => {
                outcomes.push((
                    job.id,
                    TxOutcome::Failed {
                        error: StoreError::Tx(e),
                    },
                ));
            }
        }
    }
    let report = ExecReport::from_outcomes(outcomes, 0, 0, 0);
    (state, report)
}
