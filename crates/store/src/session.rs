//! Per-client sessions and transaction tickets.
//!
//! A [`Session`] is a client's handle onto a running
//! [`StoreServer`](crate::StoreServer): it stamps each submission with the
//! session's id (recorded as provenance on the history's `Begin` events)
//! and hands back a [`TxTicket`] immediately. The ticket is the client's
//! half of a one-shot completion slot the executing worker resolves with
//! the typed [`TxOutcome`] — so a session can pipeline many submissions and
//! collect outcomes later, or use [`Session::submit_sync`] for the
//! one-call path.
//!
//! Ownership is deliberately asymmetric: a ticket owns its completion slot
//! independently of the session *and* of the server's queue, so dropping a
//! `Session` mid-flight loses nothing (its transactions are already queued
//! and keep their tickets), and tickets taken before
//! [`StoreServer::shutdown`](crate::StoreServer::shutdown) still resolve
//! after it — shutdown drains the queue before the workers exit.

use crate::exec::TxOutcome;
use crate::server::StoreServer;
use std::sync::{Arc, Condvar, Mutex};
use vpdt_tx::program::Program;

/// The shared one-shot completion slot behind a [`TxTicket`].
#[derive(Debug, Default)]
pub(crate) struct TicketState {
    slot: Mutex<Option<TxOutcome>>,
    done: Condvar,
}

impl TicketState {
    /// Resolves the ticket (called exactly once, by the executing worker —
    /// or by the submission path itself when the server is shut down).
    pub(crate) fn resolve(&self, outcome: TxOutcome) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        debug_assert!(slot.is_none(), "a ticket resolves exactly once");
        *slot = Some(outcome);
        self.done.notify_all();
    }

    /// Resolves the ticket only if nothing resolved it yet — the
    /// last-resort path (`WorkItem::drop`) that guarantees no client ever
    /// hangs on a ticket whose work item died without an outcome (worker
    /// panic mid-transaction, or a queue dropped with items still in it).
    /// Runs during unwinding, so it tolerates a poisoned lock instead of
    /// double-panicking.
    pub(crate) fn resolve_if_unresolved(&self, outcome: TxOutcome) {
        let mut slot = match self.slot.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.is_none() {
            *slot = Some(outcome);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> TxOutcome {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.done.wait(slot).expect("ticket lock poisoned");
        }
    }

    fn peek(&self) -> Option<TxOutcome> {
        self.slot.lock().expect("ticket lock poisoned").clone()
    }
}

/// A claim on one submitted transaction's outcome.
///
/// Returned immediately by [`Session::submit`]; [`TxTicket::wait`] blocks
/// until a worker resolves it. Tickets are independent of the session and
/// the server's lifetime — they resolve even if the session is dropped or
/// the server is shut down after submission.
#[derive(Debug)]
pub struct TxTicket {
    id: u64,
    session: u64,
    state: Arc<TicketState>,
}

impl TxTicket {
    pub(crate) fn new(id: u64, session: u64, state: Arc<TicketState>) -> Self {
        TxTicket { id, session, state }
    }

    /// The transaction id the server assigned (history events and
    /// [`ExecReport`](crate::ExecReport) outcomes are keyed by it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the session that submitted it.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Blocks until the transaction's typed outcome is known.
    pub fn wait(&self) -> TxOutcome {
        self.state.wait()
    }

    /// The outcome, if already resolved (never blocks).
    pub fn try_outcome(&self) -> Option<TxOutcome> {
        self.state.peek()
    }
}

/// A client's handle onto a running [`StoreServer`].
///
/// Sessions are cheap (an id plus a reference) and independent: many
/// sessions submit concurrently, and transactions from all sessions share
/// the server's guard cache — two sessions submitting the same statement
/// shape share one compilation.
#[derive(Debug)]
pub struct Session<'a> {
    server: &'a StoreServer,
    id: u64,
}

impl<'a> Session<'a> {
    pub(crate) fn new(server: &'a StoreServer, id: u64) -> Self {
        Session { server, id }
    }

    /// This session's id (recorded on its transactions' `Begin` events).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Enqueues a program for execution and returns its ticket immediately.
    /// The transaction id is assigned here, in submission order.
    pub fn submit(&self, program: Program) -> TxTicket {
        self.server.enqueue(self.id, program)
    }

    /// The one-call convenience path: submit, then block for the outcome.
    pub fn submit_sync(&self, program: Program) -> TxOutcome {
        self.submit(program).wait()
    }
}
