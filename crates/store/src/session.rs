//! Per-client sessions and transaction tickets.
//!
//! A [`Session`] is a client's handle onto a running
//! [`StoreServer`](crate::StoreServer): it stamps each submission with the
//! session's id (recorded as provenance on the history's `Begin` events)
//! and hands back a [`TxTicket`] immediately. The ticket is the client's
//! half of a one-shot completion slot that resolves with the typed
//! [`TxOutcome`] — so a session can pipeline many submissions and collect
//! outcomes later (blocking via [`TxTicket::wait`], or push-style via
//! [`TxTicket::on_resolve`]), or use [`Session::submit_sync`] for the
//! one-call path.
//!
//! On a durable server the ticket's life has **two phases**. A commit is
//! first *published* — its version advanced and its log record appended,
//! inside the commit critical section — and only later *durable*, when the
//! group-commit flusher has fsync'd the record
//! ([`GroupCommitPolicy`](crate::wal::GroupCommitPolicy)). The ticket
//! tracks both: [`TxTicket::applied`] observes the publish phase,
//! [`TxTicket::wait`] blocks for the durable resolution. In-memory
//! servers (and aborts and failures everywhere) have no durable phase:
//! publishing and resolving coincide.
//!
//! Ownership is deliberately asymmetric: a ticket owns its completion slot
//! independently of the session *and* of the server's queue, so dropping a
//! `Session` mid-flight loses nothing (its transactions are already queued
//! and keep their tickets), and tickets taken before
//! [`StoreServer::shutdown`](crate::StoreServer::shutdown) still resolve
//! after it — shutdown drains the queue **and** the flusher before the
//! workers exit.

use crate::exec::TxOutcome;
use crate::server::StoreServer;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use vpdt_tx::program::Program;

/// Where a ticket is in the two-phase commit pipeline.
#[derive(Debug, Default)]
enum Phase {
    /// Not yet executed (or still retrying).
    #[default]
    Pending,
    /// Published: the commit's version is advanced and its log record
    /// appended, but the covering fsync has not happened yet — the
    /// durable acknowledgment is still owed.
    Applied {
        /// The version the publish phase produced.
        version: u64,
    },
    /// Resolved with its final outcome (for commits: durable).
    Done(TxOutcome),
}

/// A registered completion callback, invoked exactly once with the final
/// outcome. Boxed because registration is the rare path — most tickets
/// are waited on, not subscribed to.
type Completion = Box<dyn FnOnce(TxOutcome) + Send>;

/// The phase slot plus the (at most one) registered completion.
#[derive(Default)]
struct SlotState {
    phase: Phase,
    completion: Option<Completion>,
}

impl fmt::Debug for SlotState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotState")
            .field("phase", &self.phase)
            .field("completion", &self.completion.is_some())
            .finish()
    }
}

/// The shared completion slot behind a [`TxTicket`].
#[derive(Debug, Default)]
pub(crate) struct TicketState {
    slot: Mutex<SlotState>,
    done: Condvar,
}

impl TicketState {
    /// Resolves the ticket (called exactly once — by the executing worker
    /// for aborts, failures and in-memory commits; by the group-commit
    /// flusher for durable commits; or by the submission path itself when
    /// the server is shut down). Any registered completion fires here,
    /// after the slot lock is released — a completion may take arbitrary
    /// downstream locks (an outbox, a writer-pool queue) without ever
    /// nesting them under the ticket's own lock.
    pub(crate) fn resolve(&self, outcome: TxOutcome) {
        let completion = {
            let mut slot = self.slot.lock().expect("ticket lock poisoned");
            debug_assert!(
                !matches!(slot.phase, Phase::Done(_)),
                "a ticket resolves exactly once"
            );
            slot.phase = Phase::Done(outcome.clone());
            self.done.notify_all();
            slot.completion.take()
        };
        if let Some(completion) = completion {
            completion(outcome);
        }
    }

    /// Marks the publish phase: the commit is applied at `version` and its
    /// log record appended, durability pending. The ticket stays
    /// unresolved — [`wait`](TicketState::wait) keeps blocking until the
    /// flusher resolves it, and any registered completion keeps waiting
    /// for the durable outcome.
    pub(crate) fn mark_applied(&self, version: u64) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        debug_assert!(
            matches!(slot.phase, Phase::Pending),
            "publish happens once, before resolution"
        );
        slot.phase = Phase::Applied { version };
        // No completion notification: nothing an outcome-waiter can use yet.
    }

    /// Resolves the ticket only if nothing resolved it yet — the
    /// last-resort path (`WorkItem::drop`) that guarantees no client ever
    /// hangs on a ticket whose work item died without an outcome (worker
    /// panic mid-transaction, or a queue dropped with items still in it).
    /// Runs during unwinding, so it tolerates a poisoned lock instead of
    /// double-panicking, and shields itself from a panicking completion.
    pub(crate) fn resolve_if_unresolved(&self, outcome: TxOutcome) {
        let completion = {
            let mut slot = match self.slot.lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            if matches!(slot.phase, Phase::Done(_)) {
                return;
            }
            slot.phase = Phase::Done(outcome.clone());
            self.done.notify_all();
            slot.completion.take()
        };
        if let Some(completion) = completion {
            let _ = catch_unwind(AssertUnwindSafe(move || completion(outcome)));
        }
    }

    /// Registers `completion` to fire with the final outcome. If the
    /// ticket already resolved, fires immediately (on the caller's
    /// thread); otherwise it runs on whichever thread resolves the ticket.
    /// At most one completion is held: registering again replaces the
    /// previous callback, which is dropped unfired.
    fn on_resolve(&self, completion: Completion) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        if let Phase::Done(outcome) = &slot.phase {
            let outcome = outcome.clone();
            drop(slot);
            completion(outcome);
        } else {
            slot.completion = Some(completion);
        }
    }

    fn wait(&self) -> TxOutcome {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Phase::Done(outcome) = &slot.phase {
                return outcome.clone();
            }
            slot = self.done.wait(slot).expect("ticket lock poisoned");
        }
    }

    fn peek(&self) -> Option<TxOutcome> {
        match &self.slot.lock().expect("ticket lock poisoned").phase {
            Phase::Done(outcome) => Some(outcome.clone()),
            _ => None,
        }
    }

    fn applied_version(&self) -> Option<u64> {
        match &self.slot.lock().expect("ticket lock poisoned").phase {
            Phase::Pending => None,
            Phase::Applied { version } => Some(*version),
            Phase::Done(TxOutcome::Committed { version }) => Some(*version),
            Phase::Done(_) => None,
        }
    }
}

/// A claim on one submitted transaction's outcome.
///
/// Returned immediately by [`Session::submit`]; [`TxTicket::wait`] blocks
/// until the transaction's *final* outcome is known — for a commit on a
/// durable server, until the covering group fsync has made it durable.
/// [`TxTicket::on_resolve`] is the non-blocking dual: a completion
/// callback fired at the same resolution point, for callers that
/// multiplex many tickets.
/// Tickets are independent of the session and the server's lifetime — they
/// resolve even if the session is dropped or the server is shut down after
/// submission.
#[derive(Debug)]
pub struct TxTicket {
    id: u64,
    session: u64,
    state: Arc<TicketState>,
}

impl TxTicket {
    pub(crate) fn new(id: u64, session: u64, state: Arc<TicketState>) -> Self {
        TxTicket { id, session, state }
    }

    /// The transaction id the server assigned (history events and
    /// [`ExecReport`](crate::ExecReport) outcomes are keyed by it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the session that submitted it.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Blocks until the transaction's typed outcome is known. On a durable
    /// server a `Committed` outcome returned here is **durable**: its log
    /// record was fsync'd (by the group-commit flusher, or inline under
    /// `max_batch = 1`) before the ticket resolved.
    pub fn wait(&self) -> TxOutcome {
        self.state.wait()
    }

    /// The outcome, if already resolved (never blocks).
    pub fn try_outcome(&self) -> Option<TxOutcome> {
        self.state.peek()
    }

    /// Registers a completion to fire exactly once with the final outcome
    /// — the push-style dual of [`wait`](TxTicket::wait), for callers
    /// multiplexing many tickets without parking a thread per ticket
    /// (e.g. a network front door stamping outcomes into per-connection
    /// outboxes).
    ///
    /// Delivery guarantees:
    ///
    /// * If the ticket is already resolved, the completion fires
    ///   immediately on the calling thread. Otherwise it fires on
    ///   whichever thread resolves the ticket — an executing worker, the
    ///   group-commit flusher, or the drop-guard of a dying work item —
    ///   so it must be quick and must not block on store progress.
    /// * The completion is invoked *after* the ticket's internal lock is
    ///   released: it may take its own locks freely, and
    ///   [`wait`](TxTicket::wait)/[`try_outcome`](TxTicket::try_outcome)
    ///   already observe the outcome when it runs.
    /// * For a durable commit the completion fires at the *durable*
    ///   resolution (after the covering fsync), not at publish — the same
    ///   point `wait` unblocks.
    /// * At most one completion is held per ticket: registering a second
    ///   replaces the first, which is dropped unfired.
    pub fn on_resolve(&self, completion: impl FnOnce(TxOutcome) + Send + 'static) {
        self.state.on_resolve(Box::new(completion));
    }

    /// The version at which the commit was *published*, if it has been —
    /// visible as soon as the publish phase completes, possibly before the
    /// durable acknowledgment. `None` while pending, and for transactions
    /// that aborted or failed. An applied-but-unresolved commit is already
    /// in the serialization order; only its fsync is still owed.
    pub fn applied(&self) -> Option<u64> {
        self.state.applied_version()
    }
}

/// A client's handle onto a running [`StoreServer`].
///
/// Sessions are cheap (an id plus a reference) and independent: many
/// sessions submit concurrently, and transactions from all sessions share
/// the server's guard cache — two sessions submitting the same statement
/// shape share one compilation.
#[derive(Debug)]
pub struct Session<'a> {
    server: &'a StoreServer,
    id: u64,
}

impl<'a> Session<'a> {
    pub(crate) fn new(server: &'a StoreServer, id: u64) -> Self {
        Session { server, id }
    }

    /// This session's id (recorded on its transactions' `Begin` events).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Enqueues a program for execution and returns its ticket immediately.
    /// The transaction id is assigned here, in submission order.
    pub fn submit(&self, program: Program) -> TxTicket {
        self.server.enqueue(self.id, program)
    }

    /// The one-call convenience path: submit, then block for the outcome.
    pub fn submit_sync(&self, program: Program) -> TxOutcome {
        self.submit(program).wait()
    }
}
