//! The history log: what the store did, in enough detail to re-verify it.
//!
//! Every pipeline step appends an [`Event`]. Commit events are appended
//! *inside* the store's commit critical section, so their order in the log
//! is the serialization order (and their `version`s are gapless); the other
//! events interleave freely. Each commit records a [root hash](root_hash)
//! of the post-state — an FNV-1a combine over per-relation content
//! commitments — which is what lets the audit detect a tampered or
//! reordered log without re-encoding the whole database on every commit.
//!
//! A history can be made *durable* by attaching a write-ahead log
//! ([`History::attach_wal`], done by
//! [`StoreBuilder::persist`](crate::StoreBuilder::persist)): every event is
//! then appended to disk inside the same critical section that appends it
//! to memory, so the on-disk order equals the in-memory order equals (for
//! commits) the serialization order. That append is the **publish** phase
//! of the two-phase commit pipeline: `record` returns the record's log
//! offset and does **not** fsync — the **durable** phase (the fsync, and
//! only then the ticket resolution) belongs to the group-commit flusher
//! ([`crate::wal::GroupCommitFlusher`]), which coalesces the fsyncs of all
//! concurrently published commits into one. A failed log write is
//! fail-stop: a store that can no longer write its log must not keep
//! acknowledging, so `record` panics (poisoning the store) rather than
//! dropping events silently; a failed *flush* is reported to every covered
//! ticket as a typed [`StoreError::Wal`](crate::StoreError::Wal) instead.

use crate::wal::DurableLog;
use std::sync::Mutex;
use vpdt_logic::Elem;
use vpdt_structure::Database;
use vpdt_tx::template::Template;

/// One entry in the history log.
///
/// `Begin` and `Commit` record the transaction's prepared-statement
/// provenance — the id of its canonicalized shape plus the binding vector —
/// so an audit can re-derive the ground program from the statement the
/// executor actually instantiated (and reject a log whose recorded
/// provenance does not match the submitted program).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A transaction entered the pipeline; `version` is the snapshot it
    /// first observed.
    Begin {
        /// Transaction id.
        tx: u64,
        /// Id of the client session that submitted it
        /// (`exec::BATCH_SESSION` = 0 for the legacy batch path).
        session: u64,
        /// Snapshot version first observed.
        version: u64,
        /// Id of the canonicalized statement shape (see `GuardCache`).
        shape: u64,
        /// The constants bound to the shape's placeholders.
        bindings: Vec<Elem>,
    },
    /// The cached guard was evaluated against snapshot `version`.
    GuardEval {
        /// Transaction id.
        tx: u64,
        /// Snapshot version the guard ran against.
        version: u64,
        /// Whether the guard held.
        pass: bool,
    },
    /// The transaction committed, moving the store from `based_on`'s
    /// validated footprint to `version`.
    Commit {
        /// Transaction id.
        tx: u64,
        /// Snapshot version the guard and the application ran against.
        based_on: u64,
        /// The new store version (always the previous version + 1).
        version: u64,
        /// Relations the commit wrote.
        writes: Vec<String>,
        /// Id of the canonicalized statement shape.
        shape: u64,
        /// The constants bound to the shape's placeholders.
        bindings: Vec<Elem>,
        /// [Root hash](root_hash) of the committed state: the
        /// domain-separated combine over per-relation content commitments.
        root_hash: u64,
    },
    /// The transaction aborted (guard failed) at snapshot `version`.
    Abort {
        /// Transaction id.
        tx: u64,
        /// Snapshot version the failing guard ran against.
        version: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// A cross-shard transaction's commit on *this* shard: the shard-local
    /// delta of a two-phase commit whose global guard evaluation and
    /// decision live in the coordinator's decision log, referenced by
    /// `decision`. One atomic record — the decision reference and the
    /// commit are never split across frames, so a torn tail can never
    /// leave a shard half-knowing whether it applied a decision. Replays
    /// exactly like [`Event::Commit`] (the `(shape, bindings)` provenance
    /// reconstructs the shard-local delta program); the audit skips the
    /// guard-evidence pairing, which the decision log carries instead.
    Cross {
        /// Shard-local transaction id.
        tx: u64,
        /// Id of the decision record in the coordinator's decision log.
        decision: u64,
        /// Snapshot version the prepare held (and validated against).
        based_on: u64,
        /// The new store version (always the previous version + 1).
        version: u64,
        /// Relations the shard-local delta wrote.
        writes: Vec<String>,
        /// Id of the canonicalized shape of the shard-local delta program.
        shape: u64,
        /// The constants bound to the shape's placeholders.
        bindings: Vec<Elem>,
        /// [Root hash](root_hash) of the committed shard state.
        root_hash: u64,
    },
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    durable: Option<DurableLog>,
    /// Commit root hashes by version: `roots[i]` is the root hash recorded
    /// at version `root_base + 1 + i`. Commit versions are gapless, so a
    /// flat vector indexes them O(1) — what lets a networked outcome carry
    /// its state commitment without scanning the event log per commit.
    roots: Vec<u64>,
    /// The version just before the first indexed root (non-zero on a
    /// server recovered from a retention-truncated log).
    root_base: u64,
}

impl Inner {
    /// Index a commit's root hash for O(1) lookup by version. Commit
    /// versions are assigned gaplessly under the exec lock, so each new
    /// commit lands exactly one past the end of the index.
    fn index_root(&mut self, e: &Event) {
        if let Event::Commit {
            version, root_hash, ..
        }
        | Event::Cross {
            version, root_hash, ..
        } = e
        {
            if self.roots.is_empty() {
                self.root_base = version - 1;
            }
            debug_assert_eq!(*version, self.root_base + self.roots.len() as u64 + 1);
            self.roots.push(*root_hash);
        }
    }
}

/// An append-only, thread-safe event log, optionally backed by a
/// write-ahead log on disk (see the module docs for the ordering and
/// durability contract).
#[derive(Debug, Default)]
pub struct History {
    inner: Mutex<Inner>,
}

impl History {
    /// An empty log.
    pub fn new() -> Self {
        History::default()
    }

    /// A log seeded with recovered events (the durable-recovery path: the
    /// resumed server's history continues where the on-disk log ends).
    pub(crate) fn with_events(events: Vec<Event>) -> Self {
        let mut roots = Vec::new();
        let mut root_base = 0;
        for e in &events {
            if let Event::Commit {
                version, root_hash, ..
            }
            | Event::Cross {
                version, root_hash, ..
            } = e
            {
                if roots.is_empty() {
                    root_base = version - 1;
                }
                roots.push(*root_hash);
            }
        }
        History {
            inner: Mutex::new(Inner {
                events,
                durable: None,
                roots,
                root_base,
            }),
        }
    }

    /// Attaches a write-ahead log: every subsequent [`History::record`]
    /// appends to disk before it returns.
    pub(crate) fn attach_wal(&self, log: DurableLog) {
        let mut inner = self.inner.lock().expect("history lock poisoned");
        debug_assert!(inner.durable.is_none(), "a history has at most one log");
        inner.durable = Some(log);
    }

    /// Detaches and returns the write-ahead log (shutdown takes it back to
    /// write the clean checkpoint).
    pub(crate) fn detach_wal(&self) -> Option<DurableLog> {
        self.inner
            .lock()
            .expect("history lock poisoned")
            .durable
            .take()
    }

    /// Runs `f` with exclusive access to the attached log, if any — the
    /// mid-run checkpoint path. While `f` runs no event can be recorded,
    /// so the log offset it observes is exact.
    pub(crate) fn with_wal<R>(&self, f: impl FnOnce(&mut DurableLog) -> R) -> Option<R> {
        let mut inner = self.inner.lock().expect("history lock poisoned");
        inner.durable.as_mut().map(f)
    }

    /// Appends an event — durably first, when a log is attached. Returns
    /// the record's global log offset (`None` for in-memory histories):
    /// the handle the durable phase needs to know which fsync covers it.
    ///
    /// # Panics
    /// Panics if the attached log fails to append (fail-stop: see the
    /// module docs).
    pub fn record(&self, e: Event) -> Option<u64> {
        let mut inner = self.inner.lock().expect("history lock poisoned");
        let offset = inner.durable.as_mut().map(|log| {
            log.append_event(&e)
                .expect("write-ahead log append failed; refusing to continue non-durably")
        });
        inner.index_root(&e);
        inner.events.push(e);
        offset
    }

    /// Appends a commit event whose WAL payload was already encoded
    /// *outside* the commit critical section. When a log is attached and
    /// `encoded` is present, the pre-built payload is framed and appended
    /// as-is — the lock never pays the encoding cost; the caller must have
    /// patched the payload's version and root-hash fields to match `e`
    /// (see [`crate::wal::patch_commit_payload`]). Falls back to
    /// [`History::record`] semantics otherwise.
    ///
    /// # Panics
    /// Panics if the attached log fails to append (fail-stop: see the
    /// module docs).
    pub fn record_commit(&self, e: Event, encoded: Option<Vec<u8>>) -> Option<u64> {
        debug_assert!(matches!(e, Event::Commit { .. } | Event::Cross { .. }));
        let mut inner = self.inner.lock().expect("history lock poisoned");
        let offset = inner.durable.as_mut().map(|log| {
            match &encoded {
                Some(payload) => log.append_commit_payload(payload),
                None => log.append_event(&e),
            }
            .expect("write-ahead log append failed; refusing to continue non-durably")
        });
        inner.index_root(&e);
        inner.events.push(e);
        offset
    }

    /// The [root hash](root_hash) the commit at `version` recorded — the
    /// per-relation state commitment of the post-state. `None` for version
    /// 0 (genesis has no commit event), for versions not yet committed,
    /// and for versions retired by segment retention on a recovered
    /// server. O(1): commit versions are gapless, so the index is a flat
    /// vector.
    pub fn commit_root(&self, version: u64) -> Option<u64> {
        let inner = self.inner.lock().expect("history lock poisoned");
        let idx = version.checked_sub(inner.root_base + 1)?;
        inner.roots.get(idx as usize).copied()
    }

    /// Whether a write-ahead log is attached — commits then benefit from
    /// pre-encoding their WAL payload before entering the critical section.
    pub fn is_durable(&self) -> bool {
        self.inner
            .lock()
            .expect("history lock poisoned")
            .durable
            .is_some()
    }

    /// Declares a statement shape ahead of its first durable use, so a cold
    /// recovery can resolve the `(shape, bindings)` provenance of every
    /// event that follows. A no-op without an attached log, or when the
    /// shape is already on disk.
    ///
    /// # Panics
    /// Panics if the attached log fails to append (fail-stop).
    pub(crate) fn declare_shape(&self, id: u64, template: &Template) {
        let mut inner = self.inner.lock().expect("history lock poisoned");
        if let Some(log) = inner.durable.as_mut() {
            log.declare_shape(id, template)
                .expect("write-ahead log append failed; refusing to continue non-durably");
        }
    }

    /// A point-in-time copy of the log.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("history lock poisoned")
            .events
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("history lock poisoned")
            .events
            .len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// A streaming FNV-1a hasher: fold bytes in as they are produced instead
/// of materializing the full input first. Implements [`std::fmt::Write`]
/// so any `Display`-style encoder can stream straight into it.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The hash of everything folded in so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl std::fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// The legacy full-state hash: FNV-1a of the stable encoding, streamed
/// through the hasher without allocating the encoding. Retained as the
/// checkpoint self-check (a checkpoint carries a materialized database, so
/// hashing its exact encoding guards against snapshot corruption) and as
/// the from-scratch oracle the incremental [`root_hash`] is tested against.
pub fn state_hash(db: &Database) -> u64 {
    let mut h = Fnv64::new();
    db.encode_to(&mut h)
        .expect("hashing an encoding cannot fail");
    h.finish()
}

/// Domain separator for the commit root hash. Bumped together with the WAL
/// format version whenever the combine below changes shape.
const ROOT_DOMAIN_SEP: &[u8] = b"vpdt-root-v2";

/// The root hash recorded by commits: a deterministic FNV-1a combine over
/// the per-relation content commitments that
/// [`Relation`](vpdt_structure::Relation) maintains incrementally, plus
/// the domain elements not implied by any tuple.
///
/// Per relation in schema order the combine folds in the name, a `0`
/// separator byte, and the arity, tuple count, and cached
/// [`content_hash`](vpdt_structure::Relation::content_hash) as
/// little-endian `u64`s; then the count and sorted values of
/// [`domain_excess`](Database::domain_excess). Every input the encoding
/// exposes is committed (names, arities, cardinalities, tuples, isolated
/// domain elements), so two databases with equal root hashes encode
/// identically modulo FNV collisions — but unlike [`state_hash`] the cost
/// is O(#relations), not O(#tuples), because the per-tuple work already
/// happened incrementally at mutation time.
pub fn root_hash(db: &Database) -> u64 {
    let mut h = Fnv64::new();
    h.update(ROOT_DOMAIN_SEP);
    for (name, _) in db.schema().iter() {
        let rel = db.rel(name);
        h.update(name.as_bytes());
        h.update(&[0u8]);
        h.update(&(rel.arity() as u64).to_le_bytes());
        h.update(&(rel.len() as u64).to_le_bytes());
        h.update(&rel.content_hash().to_le_bytes());
    }
    let excess = db.domain_excess();
    h.update(&(excess.len() as u64).to_le_bytes());
    for e in &excess {
        h.update(&e.0.to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_order() {
        let h = History::new();
        h.record(Event::Begin {
            tx: 1,
            session: 1,
            version: 0,
            shape: 0,
            bindings: vec![vpdt_logic::Elem(3)],
        });
        h.record(Event::GuardEval {
            tx: 1,
            version: 0,
            pass: true,
        });
        assert_eq!(h.len(), 2);
        assert!(matches!(h.events()[0], Event::Begin { tx: 1, .. }));
    }

    #[test]
    fn state_hash_distinguishes_states() {
        let a = Database::graph([(0, 1)]);
        let b = Database::graph([(1, 0)]);
        assert_ne!(state_hash(&a), state_hash(&b));
        assert_eq!(state_hash(&a), state_hash(&a.clone()));
        // streaming must agree with hashing the materialized encoding
        assert_eq!(state_hash(&a), fnv1a_64(a.encode().as_bytes()));
    }

    #[test]
    fn root_hash_commits_to_every_encoded_input() {
        use vpdt_logic::Elem;
        let a = Database::graph([(0, 1)]);
        let b = Database::graph([(1, 0)]);
        assert_ne!(root_hash(&a), root_hash(&b));
        assert_eq!(root_hash(&a), root_hash(&a.clone()));
        // isolated domain elements are part of the commitment
        let c = Database::graph_with_domain([7], [(0, 1)]);
        assert_ne!(root_hash(&a), root_hash(&c));
        // representation independence: materializing the domain view or
        // shrinking it back must not move the hash
        let mut d = a.clone();
        let _ = d.domain();
        assert_eq!(root_hash(&a), root_hash(&d));
        d.shrink_domain_to_active();
        assert_eq!(root_hash(&a), root_hash(&d));
        // a removal that pins an element in the domain moves the hash
        let mut e = a.clone();
        e.remove("E", &[Elem(0), Elem(1)]);
        assert_ne!(root_hash(&a), root_hash(&e));
        assert_ne!(root_hash(&Database::graph([])), root_hash(&e));
    }
}
