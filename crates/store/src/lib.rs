//! # vpdt-store
//!
//! A concurrent, guard-verified transaction store: the paper's
//! integrity-maintenance programme (Section 6) turned into a server-shaped
//! subsystem.
//!
//! The introduction of *Verifiable Properties of Database Transactions*
//! contrasts two ways to keep a constraint `α` invariant: run every
//! transaction `T` and roll back when the result violates `α`, or — given
//! computable weakest preconditions (Theorem 8) — replace `T` by the
//! statically verified `if wpc(T, α) then T else abort`, which never needs
//! a rollback. This crate serves that second strategy to many long-lived
//! concurrent clients.
//!
//! ## The front door: a server with sessions
//!
//! ```no_run
//! use vpdt_store::{StoreBuilder, TxOutcome};
//! use vpdt_logic::parse_formula;
//! use vpdt_structure::Database;
//! use vpdt_tx::program::Program;
//!
//! let alpha = parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").unwrap();
//! let server = StoreBuilder::new(Database::graph([(0, 1)]), alpha)
//!     .workers(4)
//!     .build()
//!     .expect("initial state satisfies the constraint");
//!
//! let session = server.session();
//! // async submission: get a ticket now, the outcome later
//! let ticket = session.submit(Program::insert_consts("E", [1, 4]));
//! match ticket.wait() {
//!     TxOutcome::Committed { version } => println!("committed at v{version}"),
//!     TxOutcome::Aborted { reason } => println!("guard aborted: {reason}"),
//!     TxOutcome::Failed { error } => println!("failed: {error}"),
//! }
//! // ...or the one-call path
//! let outcome = session.submit_sync(Program::delete_consts("E", [0, 1]));
//! drop(session);
//! let report = server.shutdown(); // drains in-flight work
//! assert_eq!(report.exec.failed, 0);
//! ```
//!
//! * [`StoreBuilder`] configures the constraint `α`, the Ω interpretation,
//!   the guard-cache capacity, the worker-pool size, and the
//!   [`RetryPolicy`], then spawns a resident [`StoreServer`]. The guard
//!   soundness base case — `α` holds at admission — is established once per
//!   server, in `build()`;
//! * [`Session`]s are per-client handles. [`Session::submit`] enqueues a
//!   program on the server's submission queue and returns a [`TxTicket`]
//!   immediately; [`TxTicket::wait`] blocks for the typed [`TxOutcome`].
//!   Tickets outlive their session — dropping a session mid-flight loses
//!   nothing;
//! * [`StoreServer::shutdown`] closes the queue, drains every in-flight
//!   transaction (all outstanding tickets still resolve), joins the
//!   workers, and returns a [`ServerReport`] — the final [`ExecReport`],
//!   the history, the final state, and the statement templates an audit
//!   needs.
//!
//! ## Underneath
//!
//! * [`snapshot::VersionedStore`] — a versioned, copy-on-write in-memory
//!   store. Readers share immutable [`Snapshot`]s behind `Arc`; commits are
//!   validated optimistically at *relation granularity*, so transactions
//!   with disjoint footprints commit concurrently without interfering;
//! * [`guard::GuardCache`] — canonicalizes each program into a prepared
//!   statement (`vpdt_tx::template`: a constant-free *shape* plus bindings),
//!   compiles each distinct **shape** once into a
//!   [`vpdt_core::safe::GuardCompilation`] (prerelations + `wpc` + the
//!   invariant-reduced guard Δ of Section 6), instantiates guards per
//!   transaction by binding substitution, and bounds live compilations with
//!   LRU eviction — so compilation cost is O(statement shapes), independent
//!   of the universe. Two sessions submitting the same statement shape share
//!   one compilation;
//! * [`exec`] — the internal worker loop both front doors drive (the
//!   resident server pool, and the [`run_jobs`] batch-compatibility
//!   wrapper), plus the serial check-and-rollback baseline it displaces;
//! * [`history`] — a begin/guard-eval/commit/abort event log with snapshot
//!   versions, per-relation commitment root hashes, and per-transaction
//!   session provenance;
//! * [`wal`] — the write-ahead log that makes history and state durable.
//!   Commits run in two phases: **publish** (version advanced, record
//!   appended — inside the commit critical section) and **durable** (the
//!   record fsync'd by a shared group-commit flusher, which batches all
//!   concurrently published commits into one fsync and only then resolves
//!   their tickets — see [`GroupCommitPolicy`]);
//! * [`audit`] — replays a history through the *rollback* path
//!   ([`vpdt_core::safe::RuntimeChecked`]), checking that the commit order
//!   is a gapless serialization, that `α` holds at every committed version,
//!   and that the guard path and the check-and-rollback path agreed on
//!   every decision;
//! * [`workload`] — deterministic (caller-seeded) multi-relation workloads
//!   for the benches and tests.
//!
//! The concurrency argument, in one paragraph: every commit is validated
//! against the relation-versions of its read-and-write footprint, so the
//! committed history is equivalent to the serial execution in commit-version
//! order — which is exactly what the audit replays. Guards evaluated on a
//! snapshot that is stale only *outside* the footprint are still exact
//! because `wpc` is exact and the kept constraint conjuncts are
//! domain-independent (see [`vpdt_core::safe::compile_guard`]); guards that
//! cannot establish that property fall back to whole-store footprints and
//! hence serial validation.

pub mod audit;
pub mod exec;
pub mod guard;
pub mod history;
pub mod metrics;
pub mod server;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod wal;
pub mod workload;

pub use audit::{audit, audit_from, cold_audit, cold_audit_from, AuditReport};
pub use exec::{run_jobs, run_serial_rollback, ExecReport, Job, Submitter, TxOutcome, TxStatus};
pub use guard::{CacheStats, GuardCache, PreparedShape, PreparedTx, ShapeStat};
pub use history::{Event, History};
pub use metrics::StoreMetrics;
pub use server::{RetryPolicy, ServerReport, StoreBuilder, StoreServer};
pub use session::{Session, TxTicket};
pub use shard::{
    cold_audit_sharded, is_sharded_layout, CrossOutcome, Routed, ShardedAuditReport,
    ShardedBuilder, ShardedReport, ShardedStore,
};
pub use snapshot::{CommitOutcome, CommitRequest, Snapshot, VersionedStore};
pub use vpdt_obs::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, TraceEvent, TraceStage, TxTimeline,
    TxTrace,
};
pub use wal::{
    FlushStats, GroupCommitPolicy, Recovered, RecoveryError, RecoveryOptions, WalError, WalOptions,
};

/// The durable name of the versioned store: `Store::recover(dir, &omega)`
/// rebuilds one from a persisted directory, replaying snapshot + log tail
/// with full hash and provenance verification (see [`wal`]).
pub type Store = VersionedStore;

use vpdt_core::safe::GuardError;
use vpdt_eval::EvalError;
use vpdt_tx::traits::TxError;

/// Errors surfaced by the store pipeline — fully typed, so clients can
/// branch on the cause (and servers can carry the version, shape, and
/// footprint that produced it) without parsing message strings. `Display`
/// renders the exact text the previous stringly-typed API produced, so log
/// output is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Guard compilation failed (program does not admit prerelations, or
    /// the constraint uses counting constructs).
    Guard(GuardError),
    /// A transaction failed while executing (not a deliberate abort).
    Tx(TxError),
    /// A formula failed to evaluate.
    Eval(EvalError),
    /// The store's state at `version` violates `α`: the Section 6 guards
    /// are only sound on consistent states, so nothing may run.
    GuardUnsound {
        /// The store version whose state violates the constraint.
        version: u64,
    },
    /// The constraint itself failed to evaluate on the store's state, so
    /// soundness of the guards cannot be established.
    ConstraintUnevaluable {
        /// The store version the constraint was evaluated against.
        version: u64,
        /// The evaluation error.
        error: EvalError,
    },
    /// The transaction kept losing footprint validation and exhausted its
    /// [`RetryPolicy`](crate::RetryPolicy) conflict budget.
    RetriesExhausted {
        /// Conflict retries performed before giving up.
        retries: u32,
        /// The store version at the final rejection.
        version: u64,
        /// The footprint relations that kept conflicting (reads ∪ writes).
        relations: Vec<String>,
    },
    /// The server is shut down; the submission was not accepted.
    ShutDown,
    /// The work item died without producing an outcome — its executing
    /// worker panicked mid-transaction, or the queue was torn down around
    /// it. Delivered by the ticket's last-resort resolution so a waiting
    /// client fails instead of hanging.
    WorkerLost,
    /// The write-ahead log failed (I/O, damaged files, format mismatch) —
    /// surfaced when persistence is being established or checkpointed; a
    /// failure while *serving* is fail-stop instead (see
    /// [`history`](crate::history)).
    Wal(WalError),
    /// Recovery refused the on-disk state (divergence, bad provenance, a
    /// hash mismatch) — surfaced by
    /// [`StoreBuilder::recover`](crate::StoreBuilder::recover).
    Recovery(RecoveryError),
    /// The configuration cannot be sharded: a constraint conjunct spans
    /// shards or is not domain-independent, the shard count exceeds the
    /// relation count, or a persisted directory is not a sharded layout.
    /// Surfaced by [`ShardedBuilder::build`](crate::ShardedBuilder::build).
    Unshardable {
        /// What exactly was refused.
        detail: String,
    },
    /// A debug crash point fired inside the cross-shard commit path (see
    /// `ShardedStore::debug_set_crash_point`): the store stopped exactly
    /// where a crash would have, so recovery tests can exercise each 2PC
    /// window deterministically. Never produced outside tests.
    #[doc(hidden)]
    DebugCrashPoint,
}

impl StoreError {
    /// A short stable code naming the error kind — what trace events and
    /// metric labels record, so dashboards don't depend on `Display` text.
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::Guard(_) => "guard",
            StoreError::Tx(_) => "tx",
            StoreError::Eval(_) => "eval",
            StoreError::GuardUnsound { .. } => "guard_unsound",
            StoreError::ConstraintUnevaluable { .. } => "constraint_unevaluable",
            StoreError::RetriesExhausted { .. } => "retries_exhausted",
            StoreError::ShutDown => "shutdown",
            StoreError::WorkerLost => "worker_lost",
            StoreError::Wal(_) => "wal",
            StoreError::Recovery(_) => "recovery",
            StoreError::Unshardable { .. } => "unshardable",
            StoreError::DebugCrashPoint => "debug_crash_point",
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Guard(e) => write!(f, "guard compilation: {e}"),
            StoreError::Tx(e) => write!(f, "transaction: {e}"),
            // the raw message, not EvalError's own Display — this is the
            // exact text the stringly-typed API produced
            StoreError::Eval(e) => write!(f, "evaluation: {}", e.0),
            StoreError::GuardUnsound { version } => write!(
                f,
                "store state at version {version} violates the constraint; \
                 guards would be unsound"
            ),
            StoreError::ConstraintUnevaluable { error, .. } => {
                write!(
                    f,
                    "constraint does not evaluate on the store state: {error}"
                )
            }
            StoreError::RetriesExhausted {
                retries,
                version,
                relations,
            } => write!(
                f,
                "commit conflicted {retries} times on {relations:?} \
                 (last at version {version}); retry budget exhausted"
            ),
            StoreError::ShutDown => write!(f, "store server is shut down"),
            StoreError::WorkerLost => {
                write!(f, "transaction abandoned: its executing worker terminated")
            }
            StoreError::Wal(e) => write!(f, "write-ahead log: {e}"),
            StoreError::Recovery(e) => write!(f, "recovery: {e}"),
            StoreError::Unshardable { detail } => {
                write!(f, "configuration cannot be sharded: {detail}")
            }
            StoreError::DebugCrashPoint => write!(f, "debug crash point fired"),
        }
    }
}

impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        StoreError::Wal(e)
    }
}

impl From<RecoveryError> for StoreError {
    fn from(e: RecoveryError) -> Self {
        StoreError::Recovery(e)
    }
}

impl std::error::Error for StoreError {}

impl From<GuardError> for StoreError {
    fn from(e: GuardError) -> Self {
        StoreError::Guard(e)
    }
}

impl From<TxError> for StoreError {
    fn from(e: TxError) -> Self {
        StoreError::Tx(e)
    }
}

impl From<EvalError> for StoreError {
    fn from(e: EvalError) -> Self {
        StoreError::Eval(e)
    }
}

/// Why a transaction was deliberately aborted — typed, with the snapshot
/// version and statement shape the decision was made against. `Display`
/// matches the strings the previous API logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// The instantiated guard failed: committing would have violated `α`.
    GuardFailed {
        /// The snapshot version the failing guard evaluated against.
        version: u64,
        /// The transaction's statement-shape id (see `GuardCache`).
        shape: u64,
    },
    /// The deferred check-and-rollback baseline ran the transaction, found
    /// the constraint violated, and rolled the state back.
    RolledBack {
        /// The rollback path's own message.
        reason: String,
    },
}

impl AbortReason {
    /// The snapshot version the abort decision observed, where known.
    pub fn version(&self) -> Option<u64> {
        match self {
            AbortReason::GuardFailed { version, .. } => Some(*version),
            AbortReason::RolledBack { .. } => None,
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::GuardFailed { version, .. } => {
                write!(f, "guard failed at version {version}")
            }
            AbortReason::RolledBack { reason } => write!(f, "{reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The typed variants must render exactly the strings the old API
    /// produced, so existing logs and log-scraping keep working.
    #[test]
    fn typed_errors_display_legacy_text() {
        assert_eq!(
            StoreError::GuardUnsound { version: 7 }.to_string(),
            "store state at version 7 violates the constraint; guards would be unsound"
        );
        assert_eq!(
            StoreError::ConstraintUnevaluable {
                version: 3,
                error: EvalError("unknown relation Q".into()),
            }
            .to_string(),
            "constraint does not evaluate on the store state: \
             evaluation error: unknown relation Q"
        );
        assert_eq!(
            AbortReason::GuardFailed {
                version: 12,
                shape: 4
            }
            .to_string(),
            "guard failed at version 12"
        );
        assert_eq!(
            StoreError::Tx(TxError::Aborted("x".into())).to_string(),
            "transaction: transaction aborted: x"
        );
    }
}
