//! # vpdt-store
//!
//! A concurrent, guard-verified transaction store: the paper's
//! integrity-maintenance programme (Section 6) turned into a server-shaped
//! subsystem.
//!
//! The introduction of *Verifiable Properties of Database Transactions*
//! contrasts two ways to keep a constraint `α` invariant: run every
//! transaction `T` and roll back when the result violates `α`, or — given
//! computable weakest preconditions (Theorem 8) — replace `T` by the
//! statically verified `if wpc(T, α) then T else abort`, which never needs
//! a rollback. This crate scales the second strategy to many concurrent
//! clients:
//!
//! * [`snapshot::VersionedStore`] — a versioned, copy-on-write in-memory
//!   store. Readers share immutable [`Snapshot`]s behind `Arc`; commits are
//!   validated optimistically at *relation granularity*, so transactions
//!   with disjoint footprints commit concurrently without interfering;
//! * [`guard::GuardCache`] — canonicalizes each program into a prepared
//!   statement (`vpdt_tx::template`: a constant-free *shape* plus bindings),
//!   compiles each distinct **shape** once into a
//!   [`vpdt_core::safe::GuardCompilation`] (prerelations + `wpc` + the
//!   invariant-reduced guard Δ of Section 6), instantiates guards per
//!   transaction by binding substitution, and bounds live compilations with
//!   LRU eviction — so compilation cost is O(statement shapes), independent
//!   of the universe;
//! * [`exec`] — a [`Submitter`]/[`Executor`](exec) pipeline batching guarded
//!   transactions across worker threads, plus the serial check-and-rollback
//!   baseline it displaces;
//! * [`history`] — a begin/guard-eval/commit/abort event log with snapshot
//!   versions and state hashes;
//! * [`audit`] — replays a history through the *rollback* path
//!   ([`vpdt_core::safe::RuntimeChecked`]), checking that the commit order
//!   is a gapless serialization, that `α` holds at every committed version,
//!   and that the guard path and the check-and-rollback path agreed on
//!   every decision;
//! * [`workload`] — deterministic (caller-seeded) multi-relation workloads
//!   for the benches and tests.
//!
//! The concurrency argument, in one paragraph: every commit is validated
//! against the relation-versions of its read-and-write footprint, so the
//! committed history is equivalent to the serial execution in commit-version
//! order — which is exactly what the audit replays. Guards evaluated on a
//! snapshot that is stale only *outside* the footprint are still exact
//! because `wpc` is exact and the kept constraint conjuncts are
//! domain-independent (see [`vpdt_core::safe::compile_guard`]); guards that
//! cannot establish that property fall back to whole-store footprints and
//! hence serial validation.

pub mod audit;
pub mod exec;
pub mod guard;
pub mod history;
pub mod snapshot;
pub mod workload;

pub use audit::{audit, AuditReport};
pub use exec::{run_jobs, run_serial_rollback, ExecReport, Job, Submitter, TxStatus};
pub use guard::{CacheStats, GuardCache, PreparedShape, PreparedTx, ShapeStat};
pub use history::{Event, History};
pub use snapshot::{CommitOutcome, CommitRequest, Snapshot, VersionedStore};

use vpdt_core::safe::GuardError;
use vpdt_tx::traits::TxError;

/// Errors surfaced by the store pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Guard compilation failed (program does not admit prerelations, or
    /// the constraint uses counting constructs).
    Guard(String),
    /// A transaction failed while executing (not a deliberate abort).
    Tx(String),
    /// A formula failed to evaluate.
    Eval(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Guard(m) => write!(f, "guard compilation: {m}"),
            StoreError::Tx(m) => write!(f, "transaction: {m}"),
            StoreError::Eval(m) => write!(f, "evaluation: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<GuardError> for StoreError {
    fn from(e: GuardError) -> Self {
        StoreError::Guard(e.to_string())
    }
}

impl From<TxError> for StoreError {
    fn from(e: TxError) -> Self {
        StoreError::Tx(e.to_string())
    }
}

impl From<vpdt_eval::EvalError> for StoreError {
    fn from(e: vpdt_eval::EvalError) -> Self {
        StoreError::Eval(e.0)
    }
}
