//! The versioned store: copy-on-write snapshots with relation-granular
//! optimistic commit validation.
//!
//! The store keeps one immutable [`Database`] per version behind an `Arc`;
//! readers clone the `Arc` and never block writers. A commit declares the
//! relations it read and wrote; validation compares those relations'
//! last-writer versions against the snapshot the transaction ran on. Two
//! consequences:
//!
//! * transactions whose footprints are disjoint commit concurrently even
//!   when they interleave — the committed state keeps its written relations
//!   and takes every unwritten relation from the current state by `Arc`
//!   pointer swap (relations are individually shared, see
//!   `vpdt_structure::Database::rel_handle`), so a disjoint merge costs
//!   O(relations), not O(tuples);
//! * transactions that raced on a common relation are rejected with
//!   [`CommitOutcome::Conflict`] and re-validate on a fresh snapshot.
//!
//! Commit events are appended to the store's [`History`] inside the commit
//! critical section, so log order = serialization order. That append is
//! where [`VersionedStore::try_commit`]'s responsibility ends: it returns
//! the **publish**-phase outcome — the new version plus the commit
//! record's log offset — and the **durable** phase (the fsync, batched
//! across workers by the [`GroupCommitFlusher`](crate::wal), and only then
//! the ticket resolution) happens outside the critical section.

use crate::history::{root_hash, state_hash, Event, History};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};
use vpdt_logic::Schema;
use vpdt_structure::Database;
use vpdt_tx::traits::normalize_domain;

/// An immutable view of the store at one version.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The version number (0 is the ingested initial state).
    pub version: u64,
    /// The database at that version.
    pub db: Arc<Database>,
}

/// A commit offer: the transaction's footprint plus the state it computed.
#[derive(Clone, Debug)]
pub struct CommitRequest {
    /// Transaction id (for the history log).
    pub tx: u64,
    /// The snapshot version the guard and the application ran against.
    pub based_on: u64,
    /// Relations whose old contents the guard or the program consulted.
    pub reads: BTreeSet<String>,
    /// Relations the program wrote.
    pub writes: BTreeSet<String>,
    /// Id of the transaction's canonicalized statement shape (recorded in
    /// the commit event for audit provenance).
    pub shape: u64,
    /// The constants bound to the shape's placeholders.
    pub bindings: Vec<vpdt_logic::Elem>,
    /// The computed post-state (its `writes` relations are authoritative).
    pub new_db: Database,
    /// The commit's WAL payload, pre-encoded *outside* the critical
    /// section with placeholder `version`/`root_hash` fields (zeros);
    /// the store patches those 16 bytes under the lock and appends the
    /// payload as-is. `None` makes the append encode under the lock — the
    /// correct-but-slower path for in-memory stores and embeddings that
    /// do not pre-encode.
    pub encoded: Option<Vec<u8>>,
}

/// The store's answer to a commit offer — the *publish*-phase outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Validation passed; the store now holds the new state at `version`
    /// and (on a persisted store) the commit record is appended at
    /// `wal_offset`. **Published is not yet durable**: when the store
    /// fsyncs commits, the caller owes the ticket to the group-commit
    /// flusher, which resolves it once an fsync covers that offset.
    Committed {
        /// The version assigned to the commit.
        version: u64,
        /// The commit record's global log offset (`None` on an in-memory
        /// store, where publishing is the whole story).
        wal_offset: Option<u64>,
    },
    /// Some footprint relation changed after `based_on`; re-validate
    /// against the current version.
    Conflict {
        /// The store version at rejection time.
        version: u64,
    },
}

struct State {
    version: u64,
    db: Arc<Database>,
    /// Last version that wrote each relation.
    rel_versions: BTreeMap<String, u64>,
    /// Relations held by in-flight cross-shard prepares, by decision id.
    /// A held relation blocks every ordinary commit that touches it
    /// (reported as a [`CommitOutcome::Conflict`], so the worker's retry
    /// loop re-validates after the hold releases) and blocks a second
    /// prepare from holding it. Holds are in-memory only: a crash drops
    /// them, which is exactly presumed-abort — an undecided prepare must
    /// leak nothing durable.
    held: BTreeMap<String, u64>,
}

/// A thread-safe, versioned, in-memory store.
pub struct VersionedStore {
    schema: Schema,
    state: RwLock<State>,
    history: History,
}

impl VersionedStore {
    /// Ingests an initial state as version 0.
    pub fn new(initial: Database) -> Self {
        let schema = initial.schema().clone();
        let rel_versions = schema
            .iter()
            .map(|(name, _)| (name.to_string(), 0))
            .collect();
        VersionedStore {
            schema,
            state: RwLock::new(State {
                version: 0,
                db: Arc::new(initial),
                rel_versions,
                held: BTreeMap::new(),
            }),
            history: History::new(),
        }
    }

    /// Resumes a store at a recovered state and version, with a pre-seeded
    /// history — the durable-recovery path. Each relation's last-writer
    /// version comes from `rel_seed` — recovery reconstructs it from the
    /// replayed commit footprints, so post-recovery validation sees real
    /// history instead of a coarse recovery-point stamp. Relations the
    /// seed does not name fall back to `version` (conservative: that can
    /// only *reject* commits a finer record would have accepted, never
    /// accept one it would have rejected).
    pub(crate) fn resume(
        db: Database,
        version: u64,
        history: History,
        rel_seed: BTreeMap<String, u64>,
    ) -> Self {
        let schema = db.schema().clone();
        let rel_versions = schema
            .iter()
            .map(|(name, _)| {
                let seeded = rel_seed.get(name).copied().unwrap_or(version);
                (name.to_string(), seeded.min(version))
            })
            .collect();
        VersionedStore {
            schema,
            state: RwLock::new(State {
                version,
                db: Arc::new(db),
                rel_versions,
                held: BTreeMap::new(),
            }),
            history,
        }
    }

    /// The store's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared history log.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The current version and state (cheap: clones an `Arc`).
    pub fn snapshot(&self) -> Snapshot {
        let s = self.state.read().expect("store lock poisoned");
        Snapshot {
            version: s.version,
            db: Arc::clone(&s.db),
        }
    }

    /// The current version.
    pub fn version(&self) -> u64 {
        self.state.read().expect("store lock poisoned").version
    }

    /// Offers a commit. Validation: every relation in the request's
    /// read-and-write footprint must be unwritten since `based_on`. On
    /// success the written relations are merged into the current state
    /// (other relations keep their latest contents) and a commit event is
    /// logged — the **publish** phase, whose outcome (version + log
    /// offset) this returns; making the record durable and resolving the
    /// ticket is the durable phase's job, outside this critical section.
    /// On conflict nothing changes.
    pub fn try_commit(&self, req: CommitRequest) -> CommitOutcome {
        self.try_commit_timed(req).0
    }

    /// [`try_commit`](Self::try_commit), also reporting how long the
    /// store's write lock was **held** (not how long the caller waited to
    /// acquire it) — the commit critical section the
    /// `store_publish_critical_section_us` histogram tracks.
    pub fn try_commit_timed(&self, req: CommitRequest) -> (CommitOutcome, std::time::Duration) {
        let CommitRequest {
            tx,
            based_on,
            reads,
            writes,
            shape,
            bindings,
            new_db,
            mut encoded,
        } = req;
        let mut s = self.state.write().expect("store lock poisoned");
        let held = std::time::Instant::now();
        // A relation held by an in-flight cross-shard prepare conflicts
        // like a concurrent writer: the worker re-validates after the
        // 2PC decision releases the hold. The `is_empty` guard keeps the
        // common (no cross traffic) case at one branch.
        let blocked = !s.held.is_empty()
            && reads
                .iter()
                .chain(writes.iter())
                .any(|rel| s.held.contains_key(rel));
        let stale = blocked
            || reads
                .iter()
                .chain(writes.iter())
                .any(|rel| s.rel_versions.get(rel).copied().unwrap_or(0) > based_on);
        if stale {
            let outcome = CommitOutcome::Conflict { version: s.version };
            return (outcome, held.elapsed());
        }

        let merged = if s.version == based_on {
            // Fast path: nothing moved at all; the computed state is the
            // next state verbatim.
            new_db
        } else {
            // Disjoint interleaving: keep the current contents of
            // unwritten relations, take the written ones from the
            // transaction's output. Relations live behind individual
            // `Arc`s, so this is a pointer swap per unwritten relation —
            // no tuple is copied — and the domain re-normalization is O(1):
            // it only marks the domain as the deferred active-domain view,
            // which materializes lazily from the relations' cached domains
            // if some later reader (a guard quantifier, an audit) asks.
            let mut out = new_db;
            for (rel, _) in self.schema.iter() {
                if !writes.contains(rel) {
                    out.set_rel_handle(rel, s.db.rel_handle(rel));
                }
            }
            normalize_domain(out)
        };

        s.version += 1;
        let version = s.version;
        for rel in &writes {
            s.rel_versions.insert(rel.clone(), version);
        }
        // The commitment root: an O(#relations) combine over the cached
        // per-relation content hashes. Unwritten relations arrived by
        // pointer swap carrying their hash with them, so nothing here
        // rehashes a tuple — the per-tuple work happened incrementally at
        // mutation time, outside this lock.
        let hash = root_hash(&merged);
        s.db = Arc::new(merged);
        // With a pre-encoded payload the append is a 16-byte patch plus a
        // buffered write; otherwise the history encodes under the lock.
        if let Some(payload) = encoded.as_mut() {
            crate::wal::patch_commit_payload(payload, version, hash);
        }
        let wal_offset = self.history.record_commit(
            Event::Commit {
                tx,
                based_on,
                version,
                writes: writes.into_iter().collect(),
                shape,
                bindings,
                root_hash: hash,
            },
            encoded,
        );
        let outcome = CommitOutcome::Committed {
            version,
            wal_offset,
        };
        (outcome, held.elapsed())
    }

    /// Phase one of a cross-shard two-phase commit: atomically checks that
    /// none of `rels` is already held by another prepare, records them as
    /// held by `decision`, and returns the current snapshot — the shard's
    /// contribution to the coordinator's union snapshot. Because the hold
    /// is taken under the same write lock that assigns commit versions,
    /// the returned snapshot *is* the prepare's `based_on`: no commit can
    /// touch a held relation until the decision releases it, so the
    /// coordinator never validates against a stale read. Returns `None`
    /// (try again) when any relation is already held. Non-blocking by
    /// design — the caller backs off and retries, so two coordinators
    /// can never deadlock on overlapping footprints.
    pub(crate) fn prepare_hold(&self, decision: u64, rels: &BTreeSet<String>) -> Option<Snapshot> {
        let mut s = self.state.write().expect("store lock poisoned");
        if rels.iter().any(|rel| s.held.contains_key(rel)) {
            return None;
        }
        for rel in rels {
            s.held.insert(rel.clone(), decision);
        }
        Some(Snapshot {
            version: s.version,
            db: Arc::clone(&s.db),
        })
    }

    /// Phase two, commit side: applies a decided cross-shard delta. The
    /// footprint is held by `decision` (taken by
    /// [`prepare_hold`](Self::prepare_hold)), so validation cannot fail —
    /// holds blocked every conflicting commit since `based_on` — and the
    /// merge is the same disjoint pointer-swap as
    /// [`try_commit`](Self::try_commit). Records an [`Event::Cross`]
    /// carrying the decision id (one atomic record: commit and decision
    /// reference can never be torn apart), then releases every relation
    /// the decision held. Returns the new version plus the record's log
    /// offset.
    pub(crate) fn commit_prepared(&self, decision: u64, req: CommitRequest) -> (u64, Option<u64>) {
        let CommitRequest {
            tx,
            based_on,
            reads: _,
            writes,
            shape,
            bindings,
            new_db,
            encoded,
        } = req;
        let mut s = self.state.write().expect("store lock poisoned");
        debug_assert!(
            writes.iter().all(|rel| s.held.get(rel) == Some(&decision)),
            "commit_prepared without holding the write footprint"
        );
        debug_assert!(
            writes
                .iter()
                .all(|rel| s.rel_versions.get(rel).copied().unwrap_or(0) <= based_on),
            "a held relation moved between prepare and commit"
        );
        let merged = if s.version == based_on {
            new_db
        } else {
            let mut out = new_db;
            for (rel, _) in self.schema.iter() {
                if !writes.contains(rel) {
                    out.set_rel_handle(rel, s.db.rel_handle(rel));
                }
            }
            normalize_domain(out)
        };
        s.version += 1;
        let version = s.version;
        for rel in &writes {
            s.rel_versions.insert(rel.clone(), version);
        }
        let hash = root_hash(&merged);
        s.db = Arc::new(merged);
        let wal_offset = self.history.record_commit(
            Event::Cross {
                tx,
                decision,
                based_on,
                version,
                writes: writes.into_iter().collect(),
                shape,
                bindings,
                root_hash: hash,
            },
            encoded,
        );
        s.held.retain(|_, d| *d != decision);
        (version, wal_offset)
    }

    /// Phase two, abort side: releases every relation held by `decision`
    /// without touching the state. Idempotent.
    pub(crate) fn abort_prepared(&self, decision: u64) {
        let mut s = self.state.write().expect("store lock poisoned");
        s.held.retain(|_, d| *d != decision);
    }

    /// Writes a snapshot checkpoint of the *current* state to the attached
    /// write-ahead log's directory, returning the log offset it covers
    /// plus how many superseded segments and checkpoint files the
    /// retention pass deleted (so the caller can count them). Holding the
    /// state read lock across the write keeps the triple (state, version,
    /// log offset) consistent: commits append their log record inside the
    /// state *write* lock, so none can land in between. Returns
    /// `Err(WalError::NotDurable)` when no log is attached.
    pub(crate) fn checkpoint_now(
        &self,
        templates: std::collections::BTreeMap<u64, vpdt_tx::template::Template>,
        next_tx: u64,
        alpha: &vpdt_logic::Formula,
    ) -> Result<CheckpointGc, crate::wal::WalError> {
        let s = self.state.read().expect("store lock poisoned");
        self.history
            .with_wal(|log| {
                log.writer.sync()?;
                let offset = log.writer.offset();
                crate::wal::write_checkpoint(
                    log.writer.dir(),
                    &crate::wal::Checkpoint {
                        offset,
                        version: s.version,
                        next_tx,
                        state_hash: state_hash(&s.db),
                        root_hash: root_hash(&s.db),
                        alpha: alpha.clone(),
                        schema: self.schema.clone(),
                        db: (*s.db).clone(),
                        templates,
                    },
                )?;
                // Retention: segments the fresh checkpoint fully covers are
                // dead weight — recovery will never read them again — and
                // so are the checkpoint files the new one supersedes.
                // Best-effort: the checkpoint itself succeeded, and a file
                // that survives a failed unlink only costs disk until the
                // next pass retries.
                let mut segments_deleted = 0;
                let mut checkpoints_deleted = 0;
                if !log.writer.options().retain_segments {
                    segments_deleted = crate::wal::gc_segments(log.writer.dir(), offset)
                        .map(|d| d.len())
                        .unwrap_or(0);
                    checkpoints_deleted = crate::wal::gc_checkpoints(log.writer.dir())
                        .map(|d| d.len())
                        .unwrap_or(0);
                }
                Ok(CheckpointGc {
                    offset,
                    segments_deleted,
                    checkpoints_deleted,
                })
            })
            .unwrap_or(Err(crate::wal::WalError::NotDurable))
    }
}

/// What [`VersionedStore::checkpoint_now`] did: the covered offset plus
/// the retention pass's deletions (for the server's GC counters).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CheckpointGc {
    /// The log offset the checkpoint covers.
    pub(crate) offset: u64,
    /// WAL segments the retention pass deleted.
    pub(crate) segments_deleted: usize,
    /// Superseded checkpoint files the retention pass deleted.
    pub(crate) checkpoints_deleted: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::Elem;

    fn store2() -> VersionedStore {
        let schema = Schema::new([("R0", 2), ("R1", 2)]);
        VersionedStore::new(Database::empty(schema))
    }

    fn with_edge(schema: &Schema, rel: &str, a: u64, b: u64) -> Database {
        let mut db = Database::empty(schema.clone());
        db.insert(rel, vec![Elem(a), Elem(b)]);
        db
    }

    #[test]
    fn disjoint_footprints_merge() {
        let store = store2();
        let schema = store.schema().clone();
        // both transactions ran against version 0
        let a = CommitRequest {
            tx: 1,
            based_on: 0,
            reads: BTreeSet::from(["R0".to_string()]),
            writes: BTreeSet::from(["R0".to_string()]),
            shape: 0,
            bindings: vec![],
            new_db: with_edge(&schema, "R0", 1, 2),
            encoded: None,
        };
        let b = CommitRequest {
            tx: 2,
            based_on: 0,
            reads: BTreeSet::from(["R1".to_string()]),
            writes: BTreeSet::from(["R1".to_string()]),
            shape: 1,
            bindings: vec![],
            new_db: with_edge(&schema, "R1", 7, 8),
            encoded: None,
        };
        assert!(matches!(
            store.try_commit(a),
            CommitOutcome::Committed {
                version: 1,
                wal_offset: None
            }
        ));
        let v1 = store.snapshot();
        // b is stale (based_on 0 < version 1) but its footprint is untouched
        assert!(matches!(
            store.try_commit(b),
            CommitOutcome::Committed {
                version: 2,
                wal_offset: None
            }
        ));
        let snap = store.snapshot();
        assert!(snap.db.contains("R0", &[Elem(1), Elem(2)]));
        assert!(snap.db.contains("R1", &[Elem(7), Elem(8)]));
        // the disjoint merge took the unwritten R0 from version 1 by
        // pointer swap, not by re-inserting its tuples
        assert!(snap.db.shares_rel(&v1.db, "R0"));
    }

    #[test]
    fn overlapping_footprints_conflict() {
        let store = store2();
        let schema = store.schema().clone();
        let mk = |tx, new_db| CommitRequest {
            tx,
            based_on: 0,
            reads: BTreeSet::from(["R0".to_string()]),
            writes: BTreeSet::from(["R0".to_string()]),
            shape: 0,
            bindings: vec![],
            new_db,
            encoded: None,
        };
        assert!(matches!(
            store.try_commit(mk(1, with_edge(&schema, "R0", 1, 2))),
            CommitOutcome::Committed { version: 1, .. }
        ));
        assert_eq!(
            store.try_commit(mk(2, with_edge(&schema, "R0", 3, 4))),
            CommitOutcome::Conflict { version: 1 }
        );
        // nothing changed on conflict
        assert_eq!(store.version(), 1);
        assert!(store.snapshot().db.contains("R0", &[Elem(1), Elem(2)]));
    }

    #[test]
    fn commit_events_are_gapless_and_ordered() {
        let store = store2();
        let schema = store.schema().clone();
        for i in 0..4u64 {
            let v = store.version();
            let req = CommitRequest {
                tx: i,
                based_on: v,
                reads: BTreeSet::from(["R0".to_string()]),
                writes: BTreeSet::from(["R0".to_string()]),
                shape: 0,
                bindings: vec![],
                new_db: with_edge(&schema, "R0", i, i + 1),
                encoded: None,
            };
            assert!(matches!(
                store.try_commit(req),
                CommitOutcome::Committed { .. }
            ));
        }
        let versions: Vec<u64> = store
            .history()
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Commit { version, .. } => Some(*version),
                _ => None,
            })
            .collect();
        assert_eq!(versions, vec![1, 2, 3, 4]);
    }
}
