//! Deterministic store workloads: sharded schemas, per-relation functional
//! dependencies, and prepared-statement job mixes.
//!
//! Everything is a pure function of caller-provided seeds — there is no
//! ambient randomness anywhere in the store, so every benchmark run and
//! every audited history is reproducible bit-for-bit.

use crate::exec::{Job, Submitter};
use crate::server::StoreServer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Mutex;
use vpdt_logic::{parse_formula, Formula, Schema};
use vpdt_structure::Database;
use vpdt_tx::program::Program;

/// An independent seed for one client, derived from a base seed (splitmix
/// of the pair, so clients never share streams).
pub fn client_seed(base: u64, client: u64) -> u64 {
    let mut z = base ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A schema of `k` binary relations `R0..R{k-1}` — the sharded analogue of
/// the paper's graph schema.
pub fn sharded_schema(k: usize) -> Schema {
    assert!(k > 0, "need at least one relation");
    Schema::new((0..k).map(|i| (format!("R{i}"), 2)))
}

/// The conjunction of per-relation functional dependencies
/// `∀x∀y∀z. Rᵢ(x,y) ∧ Rᵢ(x,z) → y = z` — one domain-independent conjunct
/// per relation, so guards for single-relation transactions reduce to one
/// conjunct and disjoint transactions validate independently.
pub fn sharded_fd_constraint(k: usize) -> Formula {
    let conjuncts: Vec<Formula> = (0..k)
        .map(|i| {
            parse_formula(&format!("forall x y z. R{i}(x, y) & R{i}(x, z) -> y = z"))
                .expect("constant formula parses")
        })
        .collect();
    Formula::and(conjuncts)
}

/// The menu of prepared statements for one configuration: inserts and
/// deletes of every tuple over `0..universe`, per relation. Real clients
/// reuse statements, which is what makes a guard cache earn its keep.
pub fn statement_menu(rels: usize, universe: u64) -> Vec<Program> {
    let mut menu = Vec::new();
    for r in 0..rels {
        let rel = format!("R{r}");
        for a in 0..universe {
            for b in 0..universe {
                menu.push(Program::insert_consts(rel.clone(), [a, b]));
                menu.push(Program::delete_consts(rel.clone(), [a, b]));
            }
        }
    }
    menu
}

/// A deterministic batch: `clients × per_client` jobs, each client drawing
/// from the statement menu with its own derived seed.
pub fn sharded_jobs(
    base_seed: u64,
    clients: u64,
    per_client: usize,
    rels: usize,
    universe: u64,
) -> Vec<Job> {
    let menu = statement_menu(rels, universe);
    let mut submitter = Submitter::new();
    for client in 0..clients {
        let mut rng = StdRng::seed_from_u64(client_seed(base_seed, client));
        for _ in 0..per_client {
            let pick = rng.gen_range(0..menu.len());
            submitter.submit(menu[pick].clone());
        }
    }
    submitter.into_jobs()
}

/// A deterministic batch for **large** configurations: `clients ×
/// per_client` jobs sampled directly (relation, pair, insert-or-delete)
/// from each client's derived stream, without materializing the
/// `2 · rels · universe²` statement menu [`sharded_jobs`] picks from. The
/// distribution is the same uniform one; only the generation cost changes
/// — O(jobs) instead of O(rels · universe²) — which is what makes
/// `--scale` bench configurations (universe ≥ 64, ≥ 32 relations)
/// practical to set up.
pub fn scaled_jobs(
    base_seed: u64,
    clients: u64,
    per_client: usize,
    rels: usize,
    universe: u64,
) -> Vec<Job> {
    let mut submitter = Submitter::new();
    for client in 0..clients {
        let mut rng = StdRng::seed_from_u64(client_seed(base_seed, client));
        for _ in 0..per_client {
            let rel = format!("R{}", rng.gen_range(0..rels));
            let a = rng.gen_range(0..universe);
            let b = rng.gen_range(0..universe);
            let program = if rng.gen_bool(0.5) {
                Program::insert_consts(rel, [a, b])
            } else {
                Program::delete_consts(rel, [a, b])
            };
            submitter.submit(program);
        }
    }
    submitter.into_jobs()
}

/// The canonical way to drive a job list through a running server: one
/// session per `per_client`-sized chunk, each submitting from its own
/// thread (pipelined — every ticket first, then every wait, so the worker
/// pool really interleaves sessions). Returns the tx-id → program map a
/// later [`audit`](crate::audit::audit) needs; per-transaction outcomes
/// are in the eventual
/// [`ServerReport`](crate::ServerReport) (and each ticket, which this
/// helper drains). Benches wanting latency numbers or custom windowing
/// drive sessions by hand instead.
pub fn serve_chunked(
    server: &StoreServer,
    jobs: &[Job],
    per_client: usize,
) -> BTreeMap<u64, Program> {
    let programs = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for chunk in jobs.chunks(per_client.max(1)) {
            let session = server.session();
            let programs = &programs;
            scope.spawn(move || {
                let tickets: Vec<_> = chunk
                    .iter()
                    .map(|job| session.submit(job.program.clone()))
                    .collect();
                {
                    let mut map = programs.lock().expect("programs lock poisoned");
                    for (ticket, job) in tickets.iter().zip(chunk) {
                        map.insert(ticket.id(), job.program.clone());
                    }
                }
                for ticket in &tickets {
                    ticket.wait();
                }
            });
        }
    });
    programs.into_inner().expect("programs lock poisoned")
}

/// A deterministic batch with a controlled **cross-shard fraction**: like
/// [`scaled_jobs`], each client samples single-relation inserts/deletes
/// from its own stream, but with probability `cross_fraction` it emits a
/// two-relation sequence over two *distinct* relations instead. Under
/// round-robin striping, two distinct relations land on distinct shards
/// whenever `rels` is a multiple of the shard count and the pair differs
/// mod shards — the generator picks the second relation at a stride of 1,
/// so with ≥ 2 shards every pair really is cross-shard.
pub fn cross_mix_jobs(
    base_seed: u64,
    clients: u64,
    per_client: usize,
    rels: usize,
    universe: u64,
    cross_fraction: f64,
) -> Vec<Job> {
    assert!(rels >= 2, "a cross mix needs at least two relations");
    let mut submitter = Submitter::new();
    for client in 0..clients {
        let mut rng = StdRng::seed_from_u64(client_seed(base_seed, client));
        for _ in 0..per_client {
            let r = rng.gen_range(0..rels);
            let a = rng.gen_range(0..universe);
            let b = rng.gen_range(0..universe);
            let program = if rng.gen_bool(cross_fraction) {
                let r2 = (r + 1) % rels;
                let c = rng.gen_range(0..universe);
                let d = rng.gen_range(0..universe);
                let first = if rng.gen_bool(0.5) {
                    Program::insert_consts(format!("R{r}"), [a, b])
                } else {
                    Program::delete_consts(format!("R{r}"), [a, b])
                };
                let second = if rng.gen_bool(0.5) {
                    Program::insert_consts(format!("R{r2}"), [c, d])
                } else {
                    Program::delete_consts(format!("R{r2}"), [c, d])
                };
                Program::seq([first, second])
            } else if rng.gen_bool(0.5) {
                Program::insert_consts(format!("R{r}"), [a, b])
            } else {
                Program::delete_consts(format!("R{r}"), [a, b])
            };
            submitter.submit(program);
        }
    }
    submitter.into_jobs()
}

/// How a [`serve_sharded_chunked`] run split between the two paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedDrive {
    /// Jobs routed to a single shard's ordinary pipeline.
    pub single: u64,
    /// Jobs that took the cross-shard two-phase-commit path.
    pub cross: u64,
    /// Submissions refused by the router or coordinator with an error.
    pub errors: u64,
}

/// The sharded analogue of [`serve_chunked`]: drives a job list through
/// the router, one session per `per_client`-sized chunk on its own thread,
/// pipelining single-shard tickets (submit everything, then wait) while
/// cross-shard jobs resolve inline. Outcome totals land in the per-shard
/// [`ServerReport`](crate::ServerReport)s and the coordinator's metrics;
/// this returns just the routing split.
pub fn serve_sharded_chunked(
    store: &crate::ShardedStore,
    jobs: &[Job],
    per_client: usize,
) -> ShardedDrive {
    use crate::Routed;
    let totals = Mutex::new(ShardedDrive::default());
    std::thread::scope(|scope| {
        for chunk in jobs.chunks(per_client.max(1)) {
            let session = store.session();
            let totals = &totals;
            scope.spawn(move || {
                let mut local = ShardedDrive::default();
                let mut tickets = Vec::new();
                for job in chunk {
                    match store.submit(session, job.program.clone()) {
                        Ok(Routed::Single { ticket, .. }) => {
                            local.single += 1;
                            tickets.push(ticket);
                        }
                        Ok(Routed::Cross(_)) => local.cross += 1,
                        Err(_) => local.errors += 1,
                    }
                }
                for ticket in &tickets {
                    ticket.wait();
                }
                let mut t = totals.lock().expect("totals lock poisoned");
                t.single += local.single;
                t.cross += local.cross;
                t.errors += local.errors;
            });
        }
    });
    totals.into_inner().expect("totals lock poisoned")
}

/// A consistent initial state for the sharded schema: each relation gets a
/// deterministic partial function on `0..universe` (so the per-relation fd
/// holds by construction).
pub fn sharded_initial(seed: u64, rels: usize, universe: u64, p: f64) -> Database {
    let schema = sharded_schema(rels);
    let mut db = Database::empty(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for r in 0..rels {
        let rel = format!("R{r}");
        for a in 0..universe {
            if rng.gen_bool(p) {
                let b = rng.gen_range(0..universe);
                db.insert(&rel, vec![vpdt_logic::Elem(a), vpdt_logic::Elem(b)]);
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_eval::holds_pure;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(client_seed(1, 2), client_seed(1, 2));
        assert_ne!(client_seed(1, 2), client_seed(1, 3));
        assert_ne!(client_seed(1, 2), client_seed(2, 2));
    }

    #[test]
    fn jobs_are_reproducible() {
        let a = sharded_jobs(42, 3, 5, 4, 3);
        let b = sharded_jobs(42, 3, 5, 4, 3);
        assert_eq!(a.len(), 15);
        assert!(a.iter().zip(&b).all(|(x, y)| x.program == y.program));
        let c = sharded_jobs(43, 3, 5, 4, 3);
        assert!(a.iter().zip(&c).any(|(x, y)| x.program != y.program));
    }

    #[test]
    fn initial_states_satisfy_the_constraint() {
        let alpha = sharded_fd_constraint(4);
        for seed in 0..5 {
            let db = sharded_initial(seed, 4, 6, 0.6);
            assert!(holds_pure(&db, &alpha).expect("evaluates"), "seed {seed}");
        }
    }

    #[test]
    fn cross_mix_is_reproducible_with_the_requested_fraction() {
        let a = cross_mix_jobs(7, 4, 50, 4, 8, 0.25);
        let b = cross_mix_jobs(7, 4, 50, 4, 8, 0.25);
        assert_eq!(a.len(), 200);
        assert!(a.iter().zip(&b).all(|(x, y)| x.program == y.program));
        let crosses = a
            .iter()
            .filter(|j| j.program.touched_relations().len() == 2)
            .count();
        assert!(
            (20..=80).contains(&crosses),
            "~25% of 200 jobs should span two relations, got {crosses}"
        );
        let none = cross_mix_jobs(7, 4, 50, 4, 8, 0.0);
        assert!(none
            .iter()
            .all(|j| j.program.touched_relations().len() == 1));
    }

    #[test]
    fn constraint_splits_into_per_relation_conjuncts() {
        let alpha = sharded_fd_constraint(3);
        let parts = alpha.conjuncts();
        assert_eq!(parts.len(), 3);
        for p in parts {
            assert_eq!(p.relations_used().len(), 1);
            assert!(vpdt_logic::domain::is_domain_independent(p));
        }
    }
}
