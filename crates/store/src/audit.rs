//! History audit: replay what the store committed and re-verify it on the
//! *other* side of the paper's comparison.
//!
//! The executor commits through the statically guarded path
//! (`if wpc(T, α) then T else abort`); the audit replays the committed
//! history through the run-time check-and-rollback path
//! ([`RuntimeChecked`]) and demands that the two agree everywhere:
//!
//! * commit versions are gapless and in log order — the log order *is* a
//!   serialization, and replaying it must reproduce every recorded root
//!   hash and the final state;
//! * every replayed commit passes the deferred `α` check (so `α` holds at
//!   every committed version — zero constraint violations);
//! * every commit's write set matches its program's declared writes;
//! * every commit's recorded prepared-statement provenance — the shape id
//!   and binding vector threaded through the pipeline — instantiates back
//!   to exactly the program the client submitted;
//! * every commit was preceded by a passing guard evaluation at the
//!   version it validated against, and every abort's failing guard agrees
//!   with check-and-rollback at the version it observed.
//!
//! A tampered history — a reordered commit, a forged hash, a commit the
//! guard never passed, a forged binding — is rejected with a concrete
//! complaint.

use crate::history::{root_hash, Event};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use vpdt_core::safe::RuntimeChecked;
use vpdt_eval::{holds, Omega};
use vpdt_logic::Formula;
use vpdt_structure::Database;
use vpdt_tx::program::{Program, ProgramTransaction};
use vpdt_tx::template::Template;
use vpdt_tx::traits::{Transaction, TxError};

/// What the audit found.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Complaints; empty means the history verified.
    pub problems: Vec<String>,
    /// Commits replayed.
    pub commits_checked: usize,
    /// Aborts cross-checked against the rollback path.
    pub aborts_checked: usize,
}

impl AuditReport {
    /// Whether the history verified.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(
                f,
                "audit OK: {} commits replayed, {} aborts cross-checked",
                self.commits_checked, self.aborts_checked
            )
        } else {
            writeln!(
                f,
                "audit FAILED ({} problems over {} commits):",
                self.problems.len(),
                self.commits_checked
            )?;
            for p in &self.problems {
                writeln!(f, "  - {p}")?;
            }
            Ok(())
        }
    }
}

/// Replays `events` from `initial` (version 0) and verifies the run.
///
/// `programs` maps transaction ids to the programs the clients submitted;
/// `templates` maps statement-shape ids (as recorded in `Begin`/`Commit`
/// events) to their canonicalized templates — `GuardCache::templates`
/// provides it, including shapes whose compiled guards were since evicted;
/// `final_db` is the store's state at the end of the run.
pub fn audit(
    alpha: &Formula,
    omega: &Omega,
    initial: &Database,
    final_db: &Database,
    events: &[Event],
    programs: &BTreeMap<u64, Program>,
    templates: &BTreeMap<u64, Template>,
) -> AuditReport {
    audit_from(
        alpha, omega, 0, initial, final_db, events, programs, templates,
    )
}

/// [`audit`] with an explicit base: `initial` is the store at
/// `base_version` and `events` start there — what auditing a
/// retention-truncated log needs, where the history before the floor
/// checkpoint no longer exists on disk. The first replayed commit is
/// expected at `base_version + 1`; guard/abort cross-checks that would
/// need a pre-floor snapshot are skipped (their evidence was legitimately
/// deleted), while everything replay-based — hashes, serialization order,
/// `α` at every surviving version — is verified in full.
#[allow(clippy::too_many_arguments)]
pub fn audit_from(
    alpha: &Formula,
    omega: &Omega,
    base_version: u64,
    initial: &Database,
    final_db: &Database,
    events: &[Event],
    programs: &BTreeMap<u64, Program>,
    templates: &BTreeMap<u64, Template>,
) -> AuditReport {
    let mut problems = Vec::new();
    let mut commits_checked = 0;
    let mut aborts_checked = 0;

    match holds(initial, omega, alpha) {
        Ok(true) => {}
        Ok(false) => problems.push("initial state violates the constraint".to_string()),
        Err(e) => problems.push(format!(
            "constraint does not evaluate on the initial state: {e}"
        )),
    }

    // Replay commits in log order; remember every version's state so abort
    // events can be cross-checked against the snapshot they observed.
    let mut states: Vec<Database> = vec![initial.clone()];
    let mut passed_guards: BTreeSet<(u64, u64)> = BTreeSet::new();

    for event in events {
        match event {
            Event::GuardEval { tx, version, pass } => {
                if *pass {
                    passed_guards.insert((*tx, *version));
                }
            }
            Event::Commit {
                tx,
                based_on,
                version,
                writes,
                shape,
                bindings,
                root_hash: recorded_hash,
            } => {
                commits_checked += 1;
                let expected = base_version + states.len() as u64;
                if *version != expected {
                    problems.push(format!(
                        "commit of tx {tx} has version {version}, expected {expected} \
                         (reordered or dropped commit)"
                    ));
                    continue;
                }
                let Some(program) = programs.get(tx) else {
                    problems.push(format!("commit of unknown tx {tx}"));
                    continue;
                };
                // Provenance: the submitted program must canonicalize to
                // exactly the recorded (shape, bindings), so a log with
                // forged bindings or a swapped statement shape cannot
                // masquerade as the original run.
                check_provenance(
                    &mut problems,
                    programs,
                    templates,
                    "commit",
                    *tx,
                    *shape,
                    bindings,
                );
                // A commit based at or below the floor may have recorded
                // its guard evaluation before the floor offset (guard
                // events are written outside the commit critical section)
                // — evidence the retention pass legitimately deleted. Only
                // demand the pairing when nothing was retired
                // (`base_version == 0`: the full log) or the evaluation
                // must postdate the floor.
                let evidence_retired = base_version > 0 && *based_on <= base_version;
                if !passed_guards.contains(&(*tx, *based_on)) && !evidence_retired {
                    problems.push(format!(
                        "tx {tx} committed at version {version} without a passing guard \
                         evaluation at its base version {based_on}"
                    ));
                }
                if program
                    .touched_relations()
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
                    != *writes
                {
                    problems.push(format!(
                        "tx {tx} recorded writes {writes:?} but its program touches {:?}",
                        program.touched_relations()
                    ));
                }
                // The cross-check: the deferred check-and-rollback path
                // must accept the same transaction at the same point.
                replay_one(
                    &mut problems,
                    &mut states,
                    alpha,
                    omega,
                    *tx,
                    *version,
                    program,
                    *recorded_hash,
                );
            }
            Event::Cross {
                tx,
                version,
                writes,
                shape,
                bindings,
                root_hash: recorded_hash,
                ..
            } => {
                // A cross-shard branch commit replays like any commit: its
                // recorded `(shape, bindings)` provenance reconstructs the
                // shard-local delta program, which must re-derive the
                // recorded root and pass the deferred constraint check.
                // What it does *not* need is a paired `GuardEval` — the
                // global guard ran on the coordinator's union snapshot, and
                // its evidence lives in the decision log, cross-checked by
                // the sharded audit (`shard::cold_audit_sharded`).
                commits_checked += 1;
                let expected = base_version + states.len() as u64;
                if *version != expected {
                    problems.push(format!(
                        "cross commit of tx {tx} has version {version}, expected {expected} \
                         (reordered or dropped commit)"
                    ));
                    continue;
                }
                let Some(template) = templates.get(shape) else {
                    problems.push(format!(
                        "cross commit of tx {tx} references unknown statement shape {shape}"
                    ));
                    continue;
                };
                let program = match template.instantiate(bindings) {
                    Ok(p) => p,
                    Err(e) => {
                        problems.push(format!(
                            "cross commit of tx {tx}: bindings do not fit shape {shape}: {e}"
                        ));
                        continue;
                    }
                };
                if program
                    .touched_relations()
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
                    != *writes
                {
                    problems.push(format!(
                        "cross tx {tx} recorded writes {writes:?} but its delta touches {:?}",
                        program.touched_relations()
                    ));
                }
                replay_one(
                    &mut problems,
                    &mut states,
                    alpha,
                    omega,
                    *tx,
                    *version,
                    &program,
                    *recorded_hash,
                );
            }
            Event::Abort { tx, version, .. } => {
                // The guard said "would violate α". If we know the state it
                // observed (versions below the floor are gone), the
                // check-and-rollback path must agree.
                let state = version
                    .checked_sub(base_version)
                    .and_then(|i| states.get(i as usize));
                if let (Some(program), Some(state)) = (programs.get(tx), state) {
                    aborts_checked += 1;
                    let checked = RuntimeChecked::new(
                        ProgramTransaction::new("audit", program.clone(), omega.clone()),
                        alpha.clone(),
                        omega.clone(),
                    );
                    match checked.apply(state) {
                        Err(TxError::Aborted(_)) => {}
                        Ok(_) => problems.push(format!(
                            "tx {tx} aborted at version {version}, but check-and-rollback \
                             accepts it there (guard and rollback paths disagree)"
                        )),
                        Err(e) => problems.push(format!(
                            "tx {tx} fails to replay its abort at version {version}: {e}"
                        )),
                    }
                }
            }
            Event::Begin {
                tx,
                shape,
                bindings,
                ..
            } => {
                // Begin provenance is checked too, so a forged binding on a
                // transaction that went on to *abort* is also caught.
                check_provenance(
                    &mut problems,
                    programs,
                    templates,
                    "begin",
                    *tx,
                    *shape,
                    bindings,
                );
            }
        }
    }

    if states.last().expect("states never empty") != final_db {
        problems.push("replayed final state differs from the store's final state".to_string());
    }

    AuditReport {
        problems,
        commits_checked,
        aborts_checked,
    }
}

/// Audits a *cold* history — one read back from a persisted log, with no
/// live clients to supply the tx-id → program map. The map is derived from
/// the events' own `(shape, bindings)` provenance instead (two events of
/// one transaction that derive different programs draw a complaint), then
/// the full [`audit`] replay runs: gapless serialization, `α` at every
/// version, root hashes, write sets, guard/rollback agreement. The
/// derived programs make the *provenance* sub-check tautological — what
/// still bites is everything replay-based, which is exactly what a cold
/// log can prove.
///
/// `initial` is the genesis state (offset-0 checkpoint) and `final_db` the
/// recovered state; [`wal::recover`](crate::wal::recover) supplies both.
pub fn cold_audit(
    alpha: &Formula,
    omega: &Omega,
    initial: &Database,
    final_db: &Database,
    events: &[Event],
    templates: &BTreeMap<u64, Template>,
) -> AuditReport {
    cold_audit_from(alpha, omega, 0, initial, final_db, events, templates)
}

/// [`cold_audit`] with an explicit base: `initial` is the floor
/// checkpoint's state at `base_version` and `events` start there — the
/// form [`wal::recover`](crate::wal::recover) hands back
/// (`Recovered::{initial, base_version, events}`), correct whether or not
/// segment retention has deleted a covered prefix of the log.
#[allow(clippy::too_many_arguments)]
pub fn cold_audit_from(
    alpha: &Formula,
    omega: &Omega,
    base_version: u64,
    initial: &Database,
    final_db: &Database,
    events: &[Event],
    templates: &BTreeMap<u64, Template>,
) -> AuditReport {
    let mut problems = Vec::new();
    let mut programs: BTreeMap<u64, Program> = BTreeMap::new();
    for event in events {
        let (tx, shape, bindings) = match event {
            Event::Begin {
                tx,
                shape,
                bindings,
                ..
            }
            | Event::Commit {
                tx,
                shape,
                bindings,
                ..
            }
            | Event::Cross {
                tx,
                shape,
                bindings,
                ..
            } => (*tx, *shape, bindings),
            Event::GuardEval { .. } | Event::Abort { .. } => continue,
        };
        let Some(template) = templates.get(&shape) else {
            problems.push(format!(
                "tx {tx} references statement shape {shape}, which no checkpoint or shape \
                 record declares"
            ));
            continue;
        };
        match template.instantiate(bindings) {
            Ok(ground) => {
                if let Some(prev) = programs.get(&tx) {
                    if prev != &ground {
                        problems.push(format!(
                            "tx {tx}'s events derive two different programs from their \
                             recorded provenance"
                        ));
                    }
                } else {
                    programs.insert(tx, ground);
                }
            }
            Err(e) => problems.push(format!("tx {tx}'s bindings do not fit shape {shape}: {e}")),
        }
    }
    let mut report = audit_from(
        alpha,
        omega,
        base_version,
        initial,
        final_db,
        events,
        &programs,
        templates,
    );
    report.problems.splice(0..0, problems);
    report
}

/// Replays one committed program at `version` through the deferred
/// check-and-rollback path, verifying acceptance and the recorded root
/// hash, and advancing `states` (a rejected or unreplayable commit keeps
/// the previous state so later versions still line up).
#[allow(clippy::too_many_arguments)]
fn replay_one(
    problems: &mut Vec<String>,
    states: &mut Vec<Database>,
    alpha: &Formula,
    omega: &Omega,
    tx: u64,
    version: u64,
    program: &Program,
    recorded_hash: u64,
) {
    let prev = states.last().expect("states never empty");
    let checked = RuntimeChecked::new(
        ProgramTransaction::new("audit", program.clone(), omega.clone()),
        alpha.clone(),
        omega.clone(),
    );
    match checked.apply(prev) {
        Ok(next) => {
            if root_hash(&next) != recorded_hash {
                problems.push(format!(
                    "replaying tx {tx} at version {version} produces root hash \
                     {:#x}, history records {recorded_hash:#x} (reordered or \
                     tampered history)",
                    root_hash(&next)
                ));
            }
            states.push(next);
        }
        Err(TxError::Aborted(reason)) => {
            problems.push(format!(
                "tx {tx} committed at version {version}, but check-and-rollback \
                 aborts it there: {reason}"
            ));
            states.push(prev.clone());
        }
        Err(e) => {
            problems.push(format!("tx {tx} fails to replay at version {version}: {e}"));
            states.push(prev.clone());
        }
    }
}

/// Checks one event's recorded `(shape, bindings)` provenance against the
/// submitted program: the statement shape must be known and the submitted
/// program must canonicalize to exactly that `(shape, bindings)` pair.
/// Comparing canonical forms (rather than instantiations) makes the check
/// insensitive to the α-renaming `canonicalize` performs while still
/// refusing forged bindings or a swapped shape. Unknown transaction ids
/// are skipped here — commits of unknown txs draw their own complaint.
fn check_provenance(
    problems: &mut Vec<String>,
    programs: &BTreeMap<u64, Program>,
    templates: &BTreeMap<u64, Template>,
    what: &str,
    tx: u64,
    shape: u64,
    bindings: &[vpdt_logic::Elem],
) {
    let Some(program) = programs.get(&tx) else {
        return;
    };
    match templates.get(&shape) {
        None => problems.push(format!(
            "{what} of tx {tx} references unknown statement shape {shape}"
        )),
        Some(template) => match vpdt_tx::template::canonicalize(program) {
            Ok((canonical, ground_bindings)) => {
                if &canonical != template || ground_bindings != bindings {
                    problems.push(format!(
                        "tx {tx}'s {what} records statement (shape {shape}, bindings \
                         {bindings:?}), but the submitted program {program:?} \
                         canonicalizes to ({canonical}, {ground_bindings:?})"
                    ));
                }
            }
            Err(e) => problems.push(format!(
                "tx {tx}'s {what}: submitted program does not canonicalize: {e}"
            )),
        },
    }
}
