//! The store's metric handles: one [`MetricsRegistry`] per server, with
//! every commit-pipeline counter, gauge, and stage histogram pre-resolved
//! so the hot path never takes a registry lock, plus the shared
//! transaction-lifecycle [`TxTrace`] ring.
//!
//! Counters are **lifetime totals** for the owning server; windowed
//! readings come from [`MetricsSnapshot::delta`]. See the README's
//! "Observability" section for the full metric catalogue.

use std::sync::Arc;

use vpdt_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, TraceEvent, TraceStage, TxTrace,
};

/// The store's metric names, in one place so exposition, tests, and docs
/// cannot drift apart.
pub mod names {
    /// Programs accepted onto the submission queue.
    pub const TX_SUBMITTED: &str = "store_tx_submitted_total";
    /// Transactions committed (published; durable too when persistence is on).
    pub const TX_COMMITTED: &str = "store_tx_committed_total";
    /// Transactions deliberately aborted (guard failed).
    pub const TX_ABORTED: &str = "store_tx_aborted_total";
    /// Transactions failed with an error.
    pub const TX_FAILED: &str = "store_tx_failed_total";
    /// Footprint-validation conflicts that forced a re-run.
    pub const TX_CONFLICTS: &str = "store_tx_conflicts_total";
    /// Guard-cache lookups served by a live compiled shape.
    pub const GUARD_CACHE_HITS: &str = "store_guard_cache_hits_total";
    /// Guard-cache lookups that had to compile.
    pub const GUARD_CACHE_MISSES: &str = "store_guard_cache_misses_total";
    /// Compiled shapes evicted by the LRU bound.
    pub const GUARD_CACHE_EVICTIONS: &str = "store_guard_cache_evictions_total";
    /// fsync batches the group-commit flusher wrote.
    pub const WAL_FSYNCS: &str = "store_wal_fsyncs_total";
    /// Commits made durable (tickets resolved by a covering fsync).
    pub const WAL_FLUSHED_COMMITS: &str = "store_wal_flushed_commits_total";
    /// Flush errors (fail-stop: the flusher stops serving after the first).
    pub const WAL_FLUSH_FAILURES: &str = "store_wal_flush_failures_total";
    /// Flush batches by exact size; rendered as
    /// `store_wal_flush_batches_total{size="k"}`.
    pub const WAL_FLUSH_BATCHES: &str = "store_wal_flush_batches_total";
    /// Checkpoints written.
    pub const CHECKPOINTS: &str = "store_checkpoints_total";
    /// WAL segments deleted by garbage collection.
    pub const WAL_SEGMENTS_DELETED: &str = "store_wal_segments_deleted_total";
    /// Superseded checkpoint files deleted by garbage collection.
    pub const CHECKPOINT_FILES_DELETED: &str = "store_checkpoint_files_deleted_total";
    /// Current committed store version.
    pub const VERSION: &str = "store_version";
    /// Live compiled guard-cache entries.
    pub const GUARD_CACHE_ENTRIES: &str = "store_guard_cache_entries";
    /// Distinct statement shapes ever seen.
    pub const GUARD_CACHE_SHAPES: &str = "store_guard_cache_shapes";
    /// Submit → dequeue wait, µs.
    pub const STAGE_QUEUE_WAIT: &str = "store_stage_queue_wait_us";
    /// Guard instantiation + evaluation, µs (per attempt).
    pub const STAGE_GUARD_EVAL: &str = "store_stage_guard_eval_us";
    /// Publish phase as the worker sees it (lock wait + critical
    /// section), µs.
    pub const STAGE_PUBLISH: &str = "store_stage_publish_us";
    /// Commit critical section only — time the store's write lock is
    /// *held* (validate + merge + version bump + root hash + WAL append),
    /// µs. `STAGE_PUBLISH` minus this is lock wait.
    pub const STAGE_PUBLISH_LOCK: &str = "store_publish_critical_section_us";
    /// Publish → covering fsync resolved the ticket, µs.
    pub const STAGE_PUBLISH_TO_DURABLE: &str = "store_stage_publish_to_durable_us";
    /// Submit → final outcome, µs.
    pub const TX_TOTAL: &str = "store_tx_total_us";
    /// The group-commit flusher's auto-tuned batching delay, µs (gauge;
    /// zero when `GroupCommitPolicy::target_batch` is off).
    pub const WAL_FLUSH_EFFECTIVE_DELAY: &str = "store_wal_flush_effective_delay_us";
    /// Cross-shard transactions committed by the 2PC coordinator.
    pub const CROSS_COMMITTED: &str = "store_cross_committed_total";
    /// Cross-shard transactions aborted (global guard failed).
    pub const CROSS_ABORTED: &str = "store_cross_aborted_total";
    /// Prepare rounds retried because a shard's footprint was held.
    pub const CROSS_PREPARE_RETRIES: &str = "store_cross_prepare_retries_total";
    /// 2PC prepare phase (all shards held + union snapshot), µs.
    pub const CROSS_STAGE_PREPARE: &str = "store_cross_prepare_us";
    /// 2PC decide phase (guard + run + decision append/fsync), µs.
    pub const CROSS_STAGE_DECIDE: &str = "store_cross_decide_us";
    /// Cross-shard submit → every branch committed, µs.
    pub const CROSS_TOTAL: &str = "store_cross_total_us";
}

/// Pre-resolved handles for every store metric, plus the shared trace
/// ring. Cloning shares the registry and every handle.
#[derive(Clone, Debug)]
pub struct StoreMetrics {
    /// The owning registry (shared clock epoch, snapshot source).
    pub registry: Arc<MetricsRegistry>,
    /// The transaction-lifecycle trace ring (capacity 0 = disabled).
    pub trace: Arc<TxTrace>,
    /// [`names::TX_SUBMITTED`].
    pub submitted: Counter,
    /// [`names::TX_COMMITTED`].
    pub committed: Counter,
    /// [`names::TX_ABORTED`].
    pub aborted: Counter,
    /// [`names::TX_FAILED`].
    pub failed: Counter,
    /// [`names::TX_CONFLICTS`].
    pub conflicts: Counter,
    /// [`names::WAL_FSYNCS`].
    pub wal_fsyncs: Counter,
    /// [`names::WAL_FLUSHED_COMMITS`].
    pub wal_flushed_commits: Counter,
    /// [`names::WAL_FLUSH_FAILURES`].
    pub wal_flush_failures: Counter,
    /// [`names::CHECKPOINTS`].
    pub checkpoints: Counter,
    /// [`names::WAL_SEGMENTS_DELETED`].
    pub wal_segments_deleted: Counter,
    /// [`names::CHECKPOINT_FILES_DELETED`].
    pub checkpoint_files_deleted: Counter,
    /// [`names::VERSION`].
    pub version: Gauge,
    /// [`names::GUARD_CACHE_ENTRIES`].
    pub cache_entries: Gauge,
    /// [`names::GUARD_CACHE_SHAPES`].
    pub cache_shapes: Gauge,
    /// [`names::STAGE_QUEUE_WAIT`].
    pub queue_wait: Histogram,
    /// [`names::STAGE_GUARD_EVAL`].
    pub guard_eval: Histogram,
    /// [`names::STAGE_PUBLISH`].
    pub publish: Histogram,
    /// [`names::STAGE_PUBLISH_LOCK`].
    pub publish_lock: Histogram,
    /// [`names::STAGE_PUBLISH_TO_DURABLE`].
    pub publish_to_durable: Histogram,
    /// [`names::TX_TOTAL`].
    pub tx_total: Histogram,
}

impl StoreMetrics {
    /// A fresh registry + trace ring holding at most `trace_capacity`
    /// events (0 disables tracing).
    pub fn new(trace_capacity: usize) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(TxTrace::new(trace_capacity));
        StoreMetrics {
            submitted: registry.counter(names::TX_SUBMITTED),
            committed: registry.counter(names::TX_COMMITTED),
            aborted: registry.counter(names::TX_ABORTED),
            failed: registry.counter(names::TX_FAILED),
            conflicts: registry.counter(names::TX_CONFLICTS),
            wal_fsyncs: registry.counter(names::WAL_FSYNCS),
            wal_flushed_commits: registry.counter(names::WAL_FLUSHED_COMMITS),
            wal_flush_failures: registry.counter(names::WAL_FLUSH_FAILURES),
            checkpoints: registry.counter(names::CHECKPOINTS),
            wal_segments_deleted: registry.counter(names::WAL_SEGMENTS_DELETED),
            checkpoint_files_deleted: registry.counter(names::CHECKPOINT_FILES_DELETED),
            version: registry.gauge(names::VERSION),
            cache_entries: registry.gauge(names::GUARD_CACHE_ENTRIES),
            cache_shapes: registry.gauge(names::GUARD_CACHE_SHAPES),
            queue_wait: registry.histogram(names::STAGE_QUEUE_WAIT),
            guard_eval: registry.histogram(names::STAGE_GUARD_EVAL),
            publish: registry.histogram(names::STAGE_PUBLISH),
            publish_lock: registry.histogram(names::STAGE_PUBLISH_LOCK),
            publish_to_durable: registry.histogram(names::STAGE_PUBLISH_TO_DURABLE),
            tx_total: registry.histogram(names::TX_TOTAL),
            registry,
            trace,
        }
    }

    /// Nanoseconds since the registry epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.registry.now_ns()
    }

    /// Microseconds elapsed since `start_ns` (an earlier [`now_ns`](Self::now_ns)).
    #[inline]
    pub fn us_since(&self, start_ns: u64) -> u64 {
        self.registry.now_ns().saturating_sub(start_ns) / 1_000
    }

    /// Record a trace event for `tx`, stamped now. No-op when tracing is
    /// disabled.
    #[inline]
    pub fn trace(&self, tx: u64, stage: TraceStage) {
        if self.trace.enabled() {
            self.trace.record(TraceEvent {
                tx,
                at_ns: self.registry.now_ns(),
                stage,
            });
        }
    }

    /// The labeled counter for flush batches of exactly `size` commits
    /// (`store_wal_flush_batches_total{size="k"}`). Takes a registry lock
    /// on first sight of a size; the flusher caches handles per size.
    pub fn batch_size_counter(&self, size: usize) -> Counter {
        self.registry
            .counter(&format!("{}{{size=\"{size}\"}}", names::WAL_FLUSH_BATCHES))
    }

    /// A point-in-time reading of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}
