//! Invariant-aware simplification of weakest preconditions (Section 6).
//!
//! "Assuming that α is always true, it may be possible to find a Δ which is
//! much simpler than wpc(T, α), such that α → (Δ ↔ wpc(T, α))" [31, 21, 22,
//! 28, 29]. Two mechanisms are provided:
//!
//! * [`delta_for_insert`] — the classical Nicolas-style residue for
//!   inserting a ground tuple under a universally quantified constraint
//!   with quantifier-free matrix (FDs, denial constraints, exclusion
//!   constraints…): only the instantiations that can *touch* the new tuple
//!   need checking. The result is **provably** a Δ (the derivation is the
//!   unaffected-instance argument, see the module tests which verify
//!   `α → (Δ ↔ wpc)` exhaustively on small databases).
//! * [`simplify_under`] — a generic conjunct-pruning pass: conjuncts of the
//!   wpc that are implied by the invariant on a family of test databases
//!   are dropped. This one is *bounded-sound*: the implication is only
//!   verified on the given databases, so callers should treat the result
//!   as a candidate and re-verify (the function does re-verify equivalence
//!   under the invariant on those databases).
//!
//! Deletion under purely-negative constraints is free:
//! [`deletion_preserves`] recognizes constraints whose NNF uses the deleted
//! relation only negatively — shrinking the relation can never violate
//! them, so Δ = true.

use std::collections::BTreeMap;
use vpdt_eval::{holds, Omega};
use vpdt_logic::nnf::nnf;
use vpdt_logic::simplify::simplify as logic_simplify;
use vpdt_logic::subst::substitute_many;
use vpdt_logic::{Elem, Formula, Term, Var};
use vpdt_structure::Database;

/// Errors from the Δ construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The constraint is not of the supported shape `∀x̄. matrix` with a
    /// quantifier-free matrix.
    UnsupportedShape,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "constraint is not a universally quantified, quantifier-free-matrix sentence"
        )
    }
}

impl std::error::Error for DeltaError {}

/// Splits `∀x₁…∀x_k. matrix` into (prefix variables, matrix), requiring
/// the matrix to be quantifier-free. Constraints not syntactically in that
/// shape are prenexed first (e.g. `¬∃x. E(x,x)` becomes `∀x. ¬E(x,x)`);
/// only purely universal prefixes qualify.
fn peel_universal(c: &Formula) -> Result<(Vec<Var>, Formula), DeltaError> {
    let mut vars = Vec::new();
    let mut cur = c;
    while let Formula::Forall(v, body) = cur {
        vars.push(v.clone());
        cur = body;
    }
    if cur.quantifier_rank() == 0 {
        return Ok((vars, cur.clone()));
    }
    // fall back to prenexing the whole constraint
    let p = vpdt_logic::prenex::prenex(c).map_err(|_| DeltaError::UnsupportedShape)?;
    if !p.is_universal() {
        return Err(DeltaError::UnsupportedShape);
    }
    Ok((p.prefix.into_iter().map(|(_, v)| v).collect(), p.matrix))
}

/// Expands each `rel(t̄)` atom into `rel(t̄) ∨ t̄ = c̄` — the effect of the
/// insertion on the constraint's matrix.
fn expand_insert(matrix: &Formula, rel: &str, tuple: &[Term]) -> Formula {
    matrix.map(&|g| match &g {
        Formula::Rel(name, ts) if name == rel => {
            let eqs = Formula::and(
                ts.iter()
                    .zip(tuple.iter())
                    .map(|(t, c)| Formula::eq(t.clone(), c.clone())),
            );
            Formula::or([g.clone(), eqs])
        }
        _ => g,
    })
}

/// The simplified precondition Δ for inserting the ground `tuple` into
/// `rel` under the invariant `constraint` (which must currently hold):
///
/// `constraint → (Δ ↔ wpc(insert, constraint))`.
///
/// Only instantiations of the universal prefix that unify some `rel`-atom
/// with the inserted tuple are kept; everything else is already guaranteed
/// by the invariant.
pub fn delta_for_insert(
    constraint: &Formula,
    rel: &str,
    tuple: &[Elem],
) -> Result<Formula, DeltaError> {
    let terms: Vec<Term> = tuple.iter().map(|e| Term::Const(*e)).collect();
    delta_for_insert_terms(constraint, rel, &terms)
}

/// [`delta_for_insert`] over *symbolic* ground tuples: the inserted terms
/// may be prepared-statement placeholders (`Term::param`), so one residue
/// is derived per statement shape and instantiated per binding.
///
/// The unification step must then be decidable *statically*: two distinct
/// constants never unify (the occurrence is dropped, as before), but a
/// placeholder is only known to unify with a syntactically identical term.
/// When a decision would depend on the eventual binding — a placeholder
/// meeting a different constant, a different placeholder already bound to
/// the same prefix variable, or an Ω-application — the construction
/// conservatively refuses ([`DeltaError::UnsupportedShape`]) and the caller
/// falls back to the exact wpc, which is sound for every binding.
pub fn delta_for_insert_terms(
    constraint: &Formula,
    rel: &str,
    tuple: &[Term],
) -> Result<Formula, DeltaError> {
    // A non-ground tuple term would be substituted under the remaining
    // universal prefix (possible capture) and yield a semantically wrong
    // residue; refuse rather than trust the caller.
    if !tuple.iter().all(Term::is_ground) {
        return Err(DeltaError::UnsupportedShape);
    }
    let (prefix, matrix) = peel_universal(constraint)?;
    let expanded = expand_insert(&matrix, rel, tuple);

    // collect rel-atom argument lists
    let mut occurrences: Vec<Vec<Term>> = Vec::new();
    matrix.visit(&mut |g| {
        if let Formula::Rel(name, ts) = g {
            if name == rel {
                occurrences.push(ts.clone());
            }
        }
    });

    let mut parts = Vec::new();
    'occ: for args in &occurrences {
        if args.len() != tuple.len() {
            continue;
        }
        // unify args with the inserted tuple
        let mut sigma: BTreeMap<Var, Term> = BTreeMap::new();
        for (arg, c) in args.iter().zip(tuple.iter()) {
            match arg {
                Term::Var(v) => match sigma.get(v) {
                    Some(prev) if prev == c => {}
                    Some(Term::Const(prev)) if matches!(c, Term::Const(k) if k != prev) => {
                        continue 'occ
                    }
                    Some(_) => return Err(DeltaError::UnsupportedShape),
                    None => {
                        sigma.insert(v.clone(), c.clone());
                    }
                },
                Term::Const(k) => match c {
                    Term::Const(c) if k == c => {}
                    Term::Const(_) => continue 'occ,
                    // equality with a placeholder is binding-dependent
                    _ => return Err(DeltaError::UnsupportedShape),
                },
                Term::App(..) => continue 'occ, // Ω-terms: bail to full wpc
            }
        }
        let instantiated = substitute_many(&expanded, &sigma);
        let remaining: Vec<Var> = prefix
            .iter()
            .filter(|v| !sigma.contains_key(v))
            .cloned()
            .collect();
        parts.push(Formula::forall_many(remaining, instantiated));
    }
    Ok(logic_simplify(&Formula::and(parts)))
}

/// Whether deleting tuples from `rel` can never violate the constraint:
/// true when every `rel`-atom occurs *negatively* in the constraint's NNF
/// (the constraint is anti-monotone in `rel`), so Δ = `true`.
pub fn deletion_preserves(constraint: &Formula, rel: &str) -> bool {
    fn scan(f: &Formula, rel: &str, positive: bool) -> bool {
        match f {
            Formula::Rel(name, _) if name == rel => !positive,
            Formula::True
            | Formula::False
            | Formula::Rel(..)
            | Formula::Eq(..)
            | Formula::Pred(..)
            | Formula::NumLe(..)
            | Formula::NumEq(..)
            | Formula::Bit(..) => true,
            Formula::Not(g) => scan(g, rel, !positive),
            Formula::And(gs) | Formula::Or(gs) => gs.iter().all(|g| scan(g, rel, positive)),
            Formula::Implies(a, b) => scan(a, rel, !positive) && scan(b, rel, positive),
            Formula::Iff(a, b) => {
                // both polarities on both sides
                scan(a, rel, positive)
                    && scan(a, rel, !positive)
                    && scan(b, rel, positive)
                    && scan(b, rel, !positive)
            }
            Formula::Exists(_, g)
            | Formula::Forall(_, g)
            | Formula::CountGe(_, _, g)
            | Formula::NumExists(_, g)
            | Formula::NumForall(_, g) => scan(g, rel, positive),
        }
    }
    scan(&nnf(constraint), rel, true)
}

/// Conjunct pruning under an invariant, verified on test databases: a
/// top-level conjunct of `wpc` is dropped when `inv → conjunct` holds on
/// every test database. The returned formula satisfies
/// `inv → (result ↔ wpc)` **on the given databases**; callers needing more
/// should verify on a wider family.
pub fn simplify_under(inv: &Formula, wpc: &Formula, omega: &Omega, dbs: &[Database]) -> Formula {
    let flat = logic_simplify(wpc);
    let conjuncts: Vec<Formula> = match flat {
        Formula::And(gs) => gs,
        other => vec![other],
    };
    let mut kept = Vec::new();
    for c in conjuncts {
        let implied = dbs.iter().all(|db| {
            match (holds(db, omega, inv), holds(db, omega, &c)) {
                (Ok(i), Ok(cv)) => !i || cv,
                _ => false, // evaluation failure: keep the conjunct
            }
        });
        if !implied {
            kept.push(c);
        }
    }
    logic_simplify(&Formula::and(kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prerelations::compile_program;
    use crate::wpc::wpc_sentence;
    use vpdt_logic::parse_formula;
    use vpdt_structure::enumerate::GraphEnumerator;
    use vpdt_tx::program::Program;

    fn fd() -> Formula {
        parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").expect("parses")
    }

    /// The defining property: inv → (Δ ↔ wpc), checked exhaustively on all
    /// graphs with ≤ 3 nodes.
    #[test]
    fn delta_is_equivalent_under_invariant() {
        let inv = fd();
        let tuple = [Elem(0), Elem(2)];
        let p = Program::insert_consts("E", [0, 2]);
        let pre = compile_program("ins", &p, &vpdt_logic::Schema::graph(), &Omega::empty())
            .expect("compiles");
        let w = wpc_sentence(&pre, &inv).expect("translates");
        let delta = delta_for_insert(&inv, "E", &tuple).expect("supported shape");
        for db in GraphEnumerator::new().take(600) {
            let inv_holds = holds(&db, &Omega::empty(), &inv).expect("evaluates");
            if !inv_holds {
                continue;
            }
            let by_delta = holds(&db, &Omega::empty(), &delta).expect("evaluates");
            let by_wpc = holds(&db, &Omega::empty(), &w).expect("evaluates");
            assert_eq!(by_delta, by_wpc, "on {db:?}\nΔ: {delta}");
        }
    }

    #[test]
    fn delta_is_much_smaller_than_wpc() {
        let inv = fd();
        let p = Program::insert_consts("E", [0, 2]);
        let pre = compile_program("ins", &p, &vpdt_logic::Schema::graph(), &Omega::empty())
            .expect("compiles");
        let w = wpc_sentence(&pre, &inv).expect("translates");
        let delta = delta_for_insert(&inv, "E", &[Elem(0), Elem(2)]).expect("supported");
        assert!(
            delta.size() * 3 < w.size(),
            "Δ ({}) should be far smaller than wpc ({})",
            delta.size(),
            w.size()
        );
        assert!(delta.quantifier_rank() <= w.quantifier_rank());
    }

    #[test]
    fn no_loop_constraint_delta() {
        let inv = parse_formula("forall x y. E(x, y) -> x != y").expect("parses");
        // inserting a loop: Δ must be unsatisfiable
        let d_loop = delta_for_insert(&inv, "E", &[Elem(4), Elem(4)]).expect("supported");
        assert_eq!(logic_simplify(&d_loop), Formula::False);
        // inserting a non-loop: Δ must be valid
        let d_ok = delta_for_insert(&inv, "E", &[Elem(4), Elem(5)]).expect("supported");
        assert_eq!(logic_simplify(&d_ok), Formula::True);
    }

    #[test]
    fn non_prefix_universal_constraints_are_prenexed() {
        // ¬∃x. E(x,x) — a denial constraint written negatively
        let inv = parse_formula("!(exists x. E(x, x))").expect("parses");
        let d_loop = delta_for_insert(&inv, "E", &[Elem(3), Elem(3)]).expect("prenexed");
        assert_eq!(logic_simplify(&d_loop), Formula::False);
        let d_ok = delta_for_insert(&inv, "E", &[Elem(3), Elem(4)]).expect("prenexed");
        assert_eq!(logic_simplify(&d_ok), Formula::True);
        // the Δ property holds on every small database, empty included
        let p = crate::prerelations::compile_program(
            "ins",
            &Program::insert_consts("E", [3, 4]),
            &vpdt_logic::Schema::graph(),
            &Omega::empty(),
        )
        .expect("compiles");
        let w = wpc_sentence(&p, &inv).expect("translates");
        for db in GraphEnumerator::new().take(300) {
            if !holds(&db, &Omega::empty(), &inv).expect("evaluates") {
                continue;
            }
            assert_eq!(
                holds(&db, &Omega::empty(), &d_ok).expect("evaluates"),
                holds(&db, &Omega::empty(), &w).expect("evaluates"),
                "on {db:?}"
            );
        }
    }

    #[test]
    fn inclusion_style_constraints_prenex_to_universal() {
        // ∀x. (∃y. E(x,y)) → E(x,x) prenexes to ∀x∀y. ¬E(x,y) ∨ E(x,x):
        // inserting (0,1) obliges only the loop at 0.
        let c = parse_formula("forall x. (exists y. E(x, y)) -> E(x, x)").expect("parses");
        let d = delta_for_insert(&c, "E", &[Elem(0), Elem(1)]).expect("prenexable");
        assert_eq!(d, parse_formula("E(0, 0)").expect("parses"));
    }

    /// The residue for a *template* insert (placeholders instead of
    /// constants), instantiated with a binding, decides exactly like the
    /// residue derived from the ground tuple directly.
    #[test]
    fn template_delta_instantiates_to_ground_delta() {
        use vpdt_logic::subst::instantiate_params;
        let inv = fd();
        let shape_delta =
            delta_for_insert_terms(&inv, "E", &[Term::param(0), Term::param(1)]).expect("derives");
        for (a, b) in [(0u64, 2u64), (1, 1), (4, 0)] {
            let ground = delta_for_insert(&inv, "E", &[Elem(a), Elem(b)]).expect("derives");
            let inst = instantiate_params(&shape_delta, &[Elem(a), Elem(b)]);
            for db in GraphEnumerator::new().take(300) {
                assert_eq!(
                    holds(&db, &Omega::empty(), &inst).expect("evaluates"),
                    holds(&db, &Omega::empty(), &ground).expect("evaluates"),
                    "bindings ({a},{b}) on {db:?}\n  template Δ: {inst}\n  ground Δ: {ground}"
                );
            }
        }
    }

    /// A unification decision that would depend on the eventual binding —
    /// here a repeated variable meeting two distinct placeholders — must
    /// refuse, not guess.
    #[test]
    fn binding_dependent_unification_refuses() {
        let reflexive_only = parse_formula("forall x. E(x, x) -> !E(x, x)").expect("parses");
        // ground tuples decide the repeated variable statically...
        assert!(delta_for_insert(&reflexive_only, "E", &[Elem(1), Elem(2)]).is_ok());
        // ...distinct placeholders cannot
        assert_eq!(
            delta_for_insert_terms(&reflexive_only, "E", &[Term::param(0), Term::param(1)])
                .unwrap_err(),
            DeltaError::UnsupportedShape
        );
        // the *same* placeholder twice is decided syntactically
        assert!(
            delta_for_insert_terms(&reflexive_only, "E", &[Term::param(0), Term::param(0)]).is_ok()
        );
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        // a genuine ∀∃ prefix (seriality) has no universal prenex form
        let serial = parse_formula("forall x. exists y. E(x, y)").expect("parses");
        assert_eq!(
            delta_for_insert(&serial, "E", &[Elem(0), Elem(1)]).unwrap_err(),
            DeltaError::UnsupportedShape
        );
    }

    #[test]
    fn deletion_monotonicity_analysis() {
        // denial constraints use E only positively in the body of ¬(...):
        // in NNF "∀xy. ¬E(x,y) ∨ x≠y" the atom is negative → deletes safe.
        let no_loops = parse_formula("forall x y. E(x, y) -> x != y").expect("parses");
        assert!(deletion_preserves(&no_loops, "E"));
        // totality-style constraints break under deletion
        let serial = parse_formula("forall x. exists y. E(x, y)").expect("parses");
        assert!(!deletion_preserves(&serial, "E"));
        // FD: E occurs negatively only → deletion-safe
        assert!(deletion_preserves(&fd(), "E"));
    }

    #[test]
    fn conjunct_pruning_drops_invariant_consequences() {
        let inv = fd();
        // wpc-like conjunction: the invariant itself ∧ an extra condition
        let extra = parse_formula("!E(0, 0)").expect("parses");
        let w = Formula::and([fd(), extra.clone()]);
        let dbs: Vec<Database> = GraphEnumerator::new().take(300).collect();
        let s = simplify_under(&inv, &w, &Omega::empty(), &dbs);
        assert_eq!(s, extra, "the FD conjunct is implied by the invariant");
    }
}
