//! The `WPC[γ]` substitution algorithm of Theorem 8.
//!
//! Given a transaction `T` described by a prerelation `(Γ, {pre_R})` over
//! `FOc(Ω)`, and **any** sentence `γ` of `FOc(Ω′)` for **any** extension
//! `Ω′ ⊇ Ω`, the algorithm produces a sentence `WPC[γ]` with
//!
//! ```text
//! D ⊨ WPC[γ]    ⟺    T(D) ⊨ γ        for every database D,
//! ```
//!
//! which is the robust-verifiability direction of Theorem 8 (and, with
//! `γ` over the unextended signature, the `PR(L) ⊆ WPC(L)` inclusion of
//! Section 2).
//!
//! The translation is compositional:
//!
//! * `R(t̄)` ↦ `⋀ᵢ t_i ∈ Γ(D)  ∧  pre_R(t̄)` — membership in the new
//!   relation is membership in the candidate space plus the prerelation
//!   condition;
//! * `t₁ = t₂` and Ω′-atoms are untouched (their interpretation does not
//!   depend on the database — this is what makes the algorithm oblivious
//!   to extensions of Ω);
//! * `∃x. φ` ↦ `⋁_{τ∈Γ} ∃z̄ ( newadom(τ(z̄)) ∧ WPC[φ][x := τ(z̄)] )` —
//!   quantification over the *new* active domain is re-expressed as
//!   quantification over the old domain through the Γ-terms, filtered by
//!   the formula `newadom(t)` asserting that `t` occurs in some tuple of
//!   some new relation.
//!
//! Counting quantifiers are rejected: Γ-terms may alias (different `z̄`
//! can denote the same element), so counting does not relativize — and
//! indeed Theorem 3 shows counting-logic weakest preconditions cannot
//! exist in general.

use crate::prerelations::Prerelation;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use vpdt_logic::subst::{fresh_var, substitute_many};
use vpdt_logic::{Formula, Term, Var};
use vpdt_tx::traits::Transaction;

/// Errors from the WPC translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WpcError {
    /// The sentence uses counting constructs (`FOcount`), which the
    /// algorithm does not — and by Theorem 3 cannot, in general — support.
    CountingUnsupported,
    /// The sentence mentions a relation outside the transaction's schema.
    UnknownRelation(String),
}

impl fmt::Display for WpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WpcError::CountingUnsupported => {
                write!(f, "counting quantifiers have no prerelation-based wpc")
            }
            WpcError::UnknownRelation(r) => write!(f, "relation {r} not in schema"),
        }
    }
}

impl std::error::Error for WpcError {}

/// Computes `wpc(T, γ)` for a sentence `γ`: `D ⊨ wpc(T,γ) ⟺ T(D) ⊨ γ`.
pub fn wpc_sentence(pre: &Prerelation, gamma: &Formula) -> Result<Formula, WpcError> {
    assert!(gamma.is_sentence(), "wpc_sentence expects a closed formula");
    wpc_formula(pre, gamma)
}

/// The open-formula translation: free variables denote fixed elements of
/// `U` and satisfy `D ⊨ WPC[γ](v̄) ⟺ T(D) ⊨ γ(v̄)` for all values `v̄`.
/// (Used by sentence translation, symbolic composition, and Proposition 4.)
///
/// The raw translation is passed through the sound structural simplifier —
/// constant-equality folding alone collapses most of the Γ fan-out that
/// ground terms introduce.
pub fn wpc_formula(pre: &Prerelation, gamma: &Formula) -> Result<Formula, WpcError> {
    let ctx = Ctx::new(pre, gamma);
    Ok(vpdt_logic::simplify::normalize(&ctx.translate(gamma)?))
}

/// Builds `t ∈ Γ(D)`: `⋁_{τ∈Γ} ∃z̄. t = τ(z̄)` with `z̄` ranging over the
/// old domain.
pub fn gamma_membership(pre: &Prerelation, t: &Term, avoid: &BTreeSet<Var>) -> Formula {
    let mut avoid = avoid.clone();
    avoid.extend(t.vars());
    let mut cases = Vec::new();
    for tau in pre.gamma() {
        let (tau2, zs) = freshen_term(tau, &mut avoid);
        cases.push(Formula::exists_many(zs, Formula::eq(t.clone(), tau2)));
    }
    Formula::or(cases)
}

struct Ctx<'a> {
    pre: &'a Prerelation,
    /// Variables that must not be captured by generated quantifiers.
    avoid: BTreeSet<Var>,
    /// Whether quantifiers must be relativized to the *new* active domain
    /// through `newadom`. A domain-independent `γ` doesn't need it: the
    /// Γ-term image of the old domain is a superset of the new active
    /// domain (the candidate-space property of prerelations), and a
    /// domain-independent sentence evaluates identically over any
    /// superset — so the `newadom` filter, whose size is a disjunction
    /// over *every* relation and position of the schema per quantifier,
    /// can be dropped wholesale. This is the difference between guard
    /// compilation scaling with the transaction and scaling with the
    /// schema.
    relativize: bool,
}

impl<'a> Ctx<'a> {
    fn new(pre: &'a Prerelation, gamma: &Formula) -> Self {
        let mut avoid = gamma.all_vars();
        for (_, p) in pre.pres() {
            avoid.extend(p.formula.all_vars());
            avoid.extend(p.vars.iter().cloned());
        }
        for t in pre.gamma() {
            avoid.extend(t.vars());
        }
        let relativize = !vpdt_logic::domain::is_domain_independent(gamma);
        Ctx {
            pre,
            avoid,
            relativize,
        }
    }

    fn translate(&self, f: &Formula) -> Result<Formula, WpcError> {
        match f {
            Formula::True | Formula::False => Ok(f.clone()),
            Formula::Eq(..) | Formula::Pred(..) => Ok(f.clone()),
            Formula::Rel(name, args) => self.translate_atom(name, args),
            Formula::Not(g) => Ok(Formula::not(self.translate(g)?)),
            Formula::And(gs) => Ok(Formula::And(
                gs.iter()
                    .map(|g| self.translate(g))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Or(gs) => Ok(Formula::Or(
                gs.iter()
                    .map(|g| self.translate(g))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Implies(a, b) => Ok(Formula::implies(self.translate(a)?, self.translate(b)?)),
            Formula::Iff(a, b) => Ok(Formula::iff(self.translate(a)?, self.translate(b)?)),
            Formula::Exists(v, g) => self.translate_quantifier(v, g, true),
            Formula::Forall(v, g) => self.translate_quantifier(v, g, false),
            Formula::CountGe(..)
            | Formula::NumExists(..)
            | Formula::NumForall(..)
            | Formula::NumLe(..)
            | Formula::NumEq(..)
            | Formula::Bit(..) => Err(WpcError::CountingUnsupported),
        }
    }

    /// `R(t̄) ↦ ⋀ᵢ t_i ∈ Γ(D) ∧ pre_R(t̄)`.
    fn translate_atom(&self, name: &str, args: &[Term]) -> Result<Formula, WpcError> {
        if !self.pre.schema().contains(name) {
            return Err(WpcError::UnknownRelation(name.to_string()));
        }
        let p = self.pre.pre(name);
        let mut parts: Vec<Formula> = args
            .iter()
            .map(|t| gamma_membership(self.pre, t, &self.avoid))
            .collect();
        let map: BTreeMap<Var, Term> = p.vars.iter().cloned().zip(args.iter().cloned()).collect();
        parts.push(substitute_many(&p.formula, &map));
        Ok(Formula::and(parts))
    }

    /// `∃x.φ ↦ ⋁_τ ∃z̄ (newadom(τ(z̄)) ∧ W[φ][x:=τ(z̄)])` and the `∀` dual
    /// `⋀_τ ∀z̄ (newadom(τ(z̄)) → W[φ][x:=τ(z̄)])`.
    fn translate_quantifier(
        &self,
        v: &Var,
        body: &Formula,
        existential: bool,
    ) -> Result<Formula, WpcError> {
        // simplify bottom-up so intermediate formulas stay small
        let w_body = vpdt_logic::simplify::normalize(&self.translate(body)?);
        let mut avoid = self.avoid.clone();
        avoid.extend(w_body.all_vars());
        let mut cases = Vec::new();
        for tau in self.pre.gamma() {
            let (tau2, zs) = freshen_term(tau, &mut avoid);
            let mut map = BTreeMap::new();
            map.insert(v.clone(), tau2.clone());
            let instantiated = substitute_many(&w_body, &map);
            let case = if !self.relativize {
                // Domain-independent γ: quantify over the Γ-term image of
                // the old domain directly (a superset of the new active
                // domain) — see `Ctx::relativize`.
                if existential {
                    Formula::exists_many(zs, instantiated)
                } else {
                    Formula::forall_many(zs, instantiated)
                }
            } else {
                let membership = vpdt_logic::simplify::normalize(&self.new_adom(&tau2, &avoid)?);
                if existential {
                    Formula::exists_many(zs, Formula::and([membership, instantiated]))
                } else {
                    Formula::forall_many(zs, Formula::implies(membership, instantiated))
                }
            };
            cases.push(case);
        }
        Ok(if existential {
            Formula::or(cases)
        } else {
            Formula::and(cases)
        })
    }

    /// `newadom(t)`: `t` occurs in some tuple of some new relation —
    /// `⋁_{R,i} ⊔Γ u₁ … ⊔Γ u_{n−1}. pre_R(u₁,…,t at i,…,u_{n−1})`,
    /// where `⊔Γ u. ψ` abbreviates `⋁_τ ∃z̄. ψ[u := τ(z̄)]` (the other
    /// components also range over the candidate space Γ(D)).
    fn new_adom(&self, t: &Term, avoid: &BTreeSet<Var>) -> Result<Formula, WpcError> {
        let mut cases = Vec::new();
        for (_rel, p) in self.pre.pres() {
            let arity = p.vars.len();
            for i in 0..arity {
                let mut avoid = avoid.clone();
                avoid.extend(t.vars());
                // instantiate position i with t, others with fresh u-vars
                let mut args: Vec<Term> = Vec::with_capacity(arity);
                let mut others: Vec<Var> = Vec::new();
                for j in 0..arity {
                    if j == i {
                        args.push(t.clone());
                    } else {
                        let u = fresh_var(&Var::new(format!("u{j}")), &avoid);
                        avoid.insert(u.clone());
                        others.push(u.clone());
                        args.push(Term::Var(u));
                    }
                }
                let map: BTreeMap<Var, Term> =
                    p.vars.iter().cloned().zip(args.iter().cloned()).collect();
                let mut body = substitute_many(&p.formula, &map);
                // each other component must come from Γ(D)
                for u in others.into_iter().rev() {
                    body = self.gamma_quantify(&u, body, &avoid);
                }
                cases.push(body);
            }
        }
        Ok(Formula::or(cases))
    }

    /// `⊔Γ u. ψ  =  ⋁_τ ∃z̄. ψ[u := τ(z̄)]`.
    fn gamma_quantify(&self, u: &Var, body: Formula, avoid: &BTreeSet<Var>) -> Formula {
        let mut avoid = avoid.clone();
        avoid.extend(body.all_vars());
        let mut cases = Vec::new();
        for tau in self.pre.gamma() {
            let (tau2, zs) = freshen_term(tau, &mut avoid);
            let mut map = BTreeMap::new();
            map.insert(u.clone(), tau2);
            cases.push(Formula::exists_many(zs, substitute_many(&body, &map)));
        }
        Formula::or(cases)
    }
}

/// Renames a Γ-term's variables to fresh ones; returns the renamed term and
/// the fresh variables (in first-occurrence order), extending `avoid`.
fn freshen_term(tau: &Term, avoid: &mut BTreeSet<Var>) -> (Term, Vec<Var>) {
    let vars = tau.vars();
    let mut zs = Vec::with_capacity(vars.len());
    let mut map: BTreeMap<Var, Term> = BTreeMap::new();
    for v in vars {
        let z = fresh_var(&Var::new("z0"), avoid);
        avoid.insert(z.clone());
        map.insert(v, Term::Var(z.clone()));
        zs.push(z);
    }
    let renamed = tau.substitute(&|v| map.get(v).cloned());
    (renamed, zs)
}

/// Symbolic composition: a prerelation description of `second ∘ first`
/// (apply `first`, then `second`).
///
/// `Γ` composes by substituting `first`'s terms into `second`'s; each
/// `pre^{second}_R` is conjoined with its Γ₂-membership conditions (so the
/// composed formula is exact, not just sound) and then pulled back through
/// `first` with [`wpc_formula`].
pub fn compose(first: &Prerelation, second: &Prerelation) -> Result<Prerelation, WpcError> {
    assert_eq!(
        first.schema(),
        second.schema(),
        "composition needs a common schema"
    );
    let mut out =
        crate::prerelations::Prerelation::identity(first.schema().clone(), first.omega().clone())
            .with_label(format!("{};{}", first.name(), second.name()));

    // Composed Γ: substitute first's terms (with disjoint fresh variables)
    // into each variable of second's terms, in all combinations.
    let mut composed_gamma: Vec<Term> = Vec::new();
    for tau2 in second.gamma() {
        let vars = tau2.vars();
        if vars.is_empty() {
            composed_gamma.push(tau2.clone());
            continue;
        }
        // all assignments of first-terms to tau2's variables
        let choices = first.gamma();
        let mut assignments: Vec<BTreeMap<Var, Term>> = vec![BTreeMap::new()];
        for v in &vars {
            let mut next = Vec::with_capacity(assignments.len() * choices.len());
            for a in &assignments {
                for tau1 in choices {
                    let mut avoid: BTreeSet<Var> = a.values().flat_map(|t| t.vars()).collect();
                    avoid.extend(vars.iter().cloned());
                    let (tau1f, _) = freshen_term(tau1, &mut avoid);
                    let mut a2 = a.clone();
                    a2.insert(v.clone(), tau1f);
                    next.push(a2);
                }
            }
            assignments = next;
        }
        for a in assignments {
            composed_gamma.push(tau2.substitute(&|v| a.get(v).cloned()));
        }
    }
    for t in composed_gamma {
        out = out.with_gamma_term(t);
    }

    // Composed prerelation formulas.
    for (rel, _arity) in first.schema().iter() {
        let p2 = second.pre(rel);
        let avoid: BTreeSet<Var> = p2.vars.iter().cloned().collect();
        let exact = Formula::and(
            std::iter::once(p2.formula.clone()).chain(
                p2.vars
                    .iter()
                    .map(|v| gamma_membership(second, &Term::Var(v.clone()), &avoid)),
            ),
        );
        let pulled = wpc_formula(first, &exact)?;
        out = out.with_pre(rel, p2.vars.clone(), pulled);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prerelations::compile_program;
    use vpdt_eval::{holds, Omega};
    use vpdt_logic::{library, parse_formula, Schema};
    use vpdt_structure::{families, Database};
    use vpdt_tx::program::Program;
    use vpdt_tx::traits::Transaction;

    /// The fundamental property: D ⊨ wpc(T,γ) ⟺ T(D) ⊨ γ.
    fn check_wpc(pre: &Prerelation, gamma: &Formula, dbs: &[Database]) {
        let w = wpc_sentence(pre, gamma).expect("translates");
        assert!(w.is_sentence(), "wpc must be closed: {w}");
        for db in dbs {
            let lhs = holds(db, pre.omega(), &w).expect("wpc evaluates");
            let out = pre.apply(db).expect("applies");
            let rhs = holds(&out, pre.omega(), gamma).expect("gamma evaluates");
            assert_eq!(
                lhs,
                rhs,
                "wpc mismatch for {} on {db:?}\n  gamma: {gamma}\n  wpc:   {w}",
                pre.name()
            );
        }
    }

    fn graphs() -> Vec<Database> {
        vec![
            Database::graph([]),
            families::chain(1),
            families::chain(3),
            families::cycle(3),
            families::cc_graph(2, &[3]),
            Database::graph([(0, 0)]),
            Database::graph([(0, 1), (0, 2), (2, 2)]),
        ]
    }

    #[test]
    fn identity_wpc_is_equivalent_to_gamma() {
        let id = Prerelation::identity(Schema::graph(), Omega::empty());
        for gamma in [
            library::psi_cc(),
            library::total_relation(),
            parse_formula("exists x. E(x, x)").expect("parses"),
            parse_formula("forall x. exists y. E(x, y) | E(y, x)").expect("parses"),
        ] {
            check_wpc(&id, &gamma, &graphs());
        }
    }

    #[test]
    fn insert_wpc() {
        let p = Program::insert_consts("E", [7, 8]);
        let pre = compile_program("ins", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        for gamma in [
            parse_formula("exists x. E(x, x)").expect("parses"),
            parse_formula("forall x y. E(x, y) -> x != y").expect("parses"),
            parse_formula("E(7, 8)").expect("parses"),
            parse_formula("exists x. E(7, x)").expect("parses"),
            library::at_least_nodes(3),
        ] {
            check_wpc(&pre, &gamma, &graphs());
        }
    }

    #[test]
    fn delete_wpc() {
        let p = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: parse_formula("x = y").expect("parses"),
        };
        let pre =
            compile_program("del-loops", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        for gamma in [
            parse_formula("exists x. E(x, x)").expect("parses"),
            library::psi_cc(),
            parse_formula("forall x. exists y. E(x, y)").expect("parses"),
        ] {
            check_wpc(&pre, &gamma, &graphs());
        }
    }

    #[test]
    fn wpc_constants_outside_gamma_are_false_atoms() {
        // After deleting everything, E(1,2) can never hold; wpc must be
        // unsatisfiable on every database.
        let p = Program::Assign {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            body: Formula::False,
        };
        let pre = compile_program("wipe", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        let gamma = parse_formula("E(1, 2)").expect("parses");
        check_wpc(&pre, &gamma, &graphs());
        let w = wpc_sentence(&pre, &gamma).expect("translates");
        for db in graphs() {
            assert!(!holds(&db, pre.omega(), &w).expect("evaluates"));
        }
    }

    #[test]
    fn robustness_same_wpc_works_under_extended_omega() {
        // T is compiled over the EMPTY Omega; gamma speaks FOc(Ω′) with
        // Ω′ = arithmetic. The same translation remains a weakest
        // precondition — Theorem 8's robustness.
        let p = Program::insert_consts("E", [4, 5]);
        let pre = compile_program("ins", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        let gamma = parse_formula("forall x y. E(x, y) -> @lt(x, y)").expect("parses");
        let w = wpc_sentence(&pre, &gamma).expect("translates");
        let ext = Omega::arithmetic();
        for db in graphs() {
            let lhs = holds(&db, &ext, &w).expect("wpc evaluates");
            let out = pre.apply(&db).expect("applies");
            let rhs = holds(&out, &ext, &gamma).expect("gamma evaluates");
            assert_eq!(lhs, rhs, "robust wpc mismatch on {db:?}");
        }
    }

    #[test]
    fn composition_agrees_with_sequential_application() {
        let schema = Schema::graph();
        let omega = Omega::empty();
        let first = compile_program(
            "ins56",
            &Program::insert_consts("E", [5, 6]),
            &schema,
            &omega,
        )
        .expect("compiles");
        let second = compile_program(
            "del-loops",
            &Program::DeleteWhere {
                rel: "E".into(),
                vars: vec![Var::new("x"), Var::new("y")],
                cond: parse_formula("x = y").expect("parses"),
            },
            &schema,
            &omega,
        )
        .expect("compiles");
        let composed = compose(&first, &second).expect("composes");
        for db in graphs() {
            let sequential = second
                .apply(&first.apply(&db).expect("first"))
                .expect("second");
            let at_once = composed.apply(&db).expect("composed");
            assert_eq!(sequential, at_once, "on {db:?}");
        }
    }

    #[test]
    fn counting_is_rejected() {
        let id = Prerelation::identity(Schema::graph(), Omega::empty());
        let gamma = vpdt_eval::counting::even_domain();
        assert_eq!(
            wpc_sentence(&id, &gamma).unwrap_err(),
            WpcError::CountingUnsupported
        );
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let id = Prerelation::identity(Schema::graph(), Omega::empty());
        let gamma = parse_formula("exists x. R(x)").expect("parses");
        assert!(matches!(
            wpc_sentence(&id, &gamma),
            Err(WpcError::UnknownRelation(_))
        ));
    }
}
