//! Workload generation for benchmarks and property tests: random update
//! programs, random pure-FO sentences, named integrity constraints, and
//! consistent-state samplers.

use rand::Rng;
use vpdt_logic::{Formula, Term, Var};
use vpdt_structure::Database;
use vpdt_tx::program::Program;

/// The functional-dependency constraint on the graph schema:
/// `∀x∀y∀z. E(x,y) ∧ E(x,z) → y = z` (out-degree ≤ 1; "E is a partial
/// function").
pub fn fd_constraint() -> Formula {
    vpdt_logic::parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z")
        .expect("constant formula parses")
}

/// No loops: `∀x∀y. E(x,y) → x ≠ y`.
pub fn no_loops() -> Formula {
    vpdt_logic::parse_formula("forall x y. E(x, y) -> x != y").expect("constant formula parses")
}

/// Antisymmetry: `∀x∀y. E(x,y) → ¬E(y,x)` (also excludes loops).
pub fn antisymmetric() -> Formula {
    vpdt_logic::parse_formula("forall x y. E(x, y) -> !E(y, x)").expect("constant formula parses")
}

/// A random single update: insert or delete of one random tuple over the
/// id range `0..universe`.
pub fn random_update(rng: &mut impl Rng, universe: u64) -> Program {
    let a = rng.gen_range(0..universe);
    let b = rng.gen_range(0..universe);
    if rng.gen_bool(0.5) {
        Program::insert_consts("E", [a, b])
    } else {
        Program::delete_consts("E", [a, b])
    }
}

/// A random batch of `len` updates.
pub fn random_batch(rng: &mut impl Rng, universe: u64, len: usize) -> Program {
    Program::seq((0..len).map(|_| random_update(rng, universe)))
}

/// A random graph that satisfies [`fd_constraint`] by construction: each
/// node gets at most one out-edge (a random partial function).
pub fn random_functional_graph(rng: &mut impl Rng, n: u64, p: f64) -> Database {
    let mut db = Database::graph([]);
    for i in 0..n {
        db.add_domain_elem(vpdt_logic::Elem(i));
        if rng.gen_bool(p) {
            let j = rng.gen_range(0..n);
            db.insert("E", vec![vpdt_logic::Elem(i), vpdt_logic::Elem(j)]);
        }
    }
    db
}

/// A random pure-FO sentence over the graph schema. `depth` bounds the AST
/// depth; all generated formulas are closed (quantifiers introduce the
/// variables atoms use).
pub fn random_sentence(rng: &mut impl Rng, depth: usize) -> Formula {
    gen_formula(rng, depth, &mut Vec::new())
}

fn gen_formula(rng: &mut impl Rng, depth: usize, scope: &mut Vec<Var>) -> Formula {
    let leaf = depth == 0 || (scope.len() >= 2 && rng.gen_bool(0.3));
    if leaf && !scope.is_empty() {
        // atom over in-scope variables
        let a = Term::Var(scope[rng.gen_range(0..scope.len())].clone());
        let b = Term::Var(scope[rng.gen_range(0..scope.len())].clone());
        return if rng.gen_bool(0.7) {
            Formula::rel("E", [a, b])
        } else {
            Formula::eq(a, b)
        };
    }
    if leaf {
        return if rng.gen_bool(0.5) {
            Formula::True
        } else {
            Formula::False
        };
    }
    match rng.gen_range(0..6) {
        0 => {
            let v = Var::new(format!("r{}", scope.len()));
            scope.push(v.clone());
            let body = gen_formula(rng, depth - 1, scope);
            scope.pop();
            Formula::exists(v, body)
        }
        1 => {
            let v = Var::new(format!("r{}", scope.len()));
            scope.push(v.clone());
            let body = gen_formula(rng, depth - 1, scope);
            scope.pop();
            Formula::forall(v, body)
        }
        2 => Formula::not(gen_formula(rng, depth - 1, scope)),
        3 => Formula::and([
            gen_formula(rng, depth - 1, scope),
            gen_formula(rng, depth - 1, scope),
        ]),
        4 => Formula::or([
            gen_formula(rng, depth - 1, scope),
            gen_formula(rng, depth - 1, scope),
        ]),
        _ => Formula::implies(
            gen_formula(rng, depth - 1, scope),
            gen_formula(rng, depth - 1, scope),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vpdt_eval::{holds_pure, Omega};
    use vpdt_tx::traits::Transaction;

    #[test]
    fn random_sentences_are_closed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let f = random_sentence(&mut rng, 4);
            assert!(f.is_sentence(), "open: {f}");
            assert!(f.is_pure_fo());
        }
    }

    #[test]
    fn functional_graphs_satisfy_fd() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let fd = fd_constraint();
        for _ in 0..20 {
            let db = random_functional_graph(&mut rng, 8, 0.7);
            assert!(holds_pure(&db, &fd).expect("evaluates"));
        }
    }

    #[test]
    fn random_batches_execute() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = random_batch(&mut rng, 6, 10);
        let tx = vpdt_tx::program::ProgramTransaction::new("batch", p, Omega::empty());
        let db = random_functional_graph(&mut rng, 6, 0.5);
        tx.apply(&db).expect("runs");
    }
}
