//! # vpdt-core
//!
//! The paper's primary contribution, as a library:
//!
//! * [`prerelations`] — prerelation descriptions `(Γ, {pre_R})` of
//!   transactions (Section 2), their operational semantics, and compilers
//!   from update programs and relational algebra (Proposition 3:
//!   `PR(FOc(Ω))` *is* a transaction language);
//! * [`wpc`] — the `WPC[γ]` substitution algorithm from Theorem 8: every
//!   transaction admitting prerelations has computable weakest
//!   preconditions over `FOc(Ω′)` for **every** extension `Ω′ ⊇ Ω` — the
//!   robust-verifiability direction — plus symbolic composition of
//!   prerelation transactions;
//! * [`theorem7`] — the separating transaction `T ∈ WPC(FO) − PR(FO)`
//!   (tc on the chain part of a C&C graph, diagonal elsewhere) with its
//!   complete wpc algorithm for pure FO and the `2ⁿ` quantifier-rank
//!   blow-up of Corollary 3;
//! * [`safe`] — the integrity-maintenance transforms of the introduction:
//!   `if wpc(T,α) then T else abort` versus run-time check-and-rollback;
//! * [`simplify`] — invariant-aware precondition simplification (the Δ of
//!   Section 6, after Nicolas and Qian);
//! * [`diagonal`] — the Theorem 5 diagonalization, executable against any
//!   enumerable transaction language;
//! * [`generic`] — Proposition 4's constant-elimination: generic
//!   transactions in `WPC(FOc)` admit prerelations;
//! * [`verify`] — bounded checking of the undecidable `Preserve(TL, L)`
//!   and of weakest-precondition candidates;
//! * [`workload`] — random constraints, programs and databases for the
//!   benchmarks and property tests.

pub mod diagonal;
pub mod generic;
pub mod prerelations;
pub mod safe;
pub mod simplify;
pub mod theorem7;
pub mod verify;
pub mod workload;
pub mod wpc;

pub use prerelations::Prerelation;
pub use theorem7::SeparatorTransaction;
pub use wpc::{wpc_sentence, WpcError};
