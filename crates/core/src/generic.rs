//! Proposition 4: generic transactions in `WPC(FOc)` admit prerelations.
//!
//! The proof is constructive and implemented here: from an oracle producing
//! weakest preconditions over FOc (we use the `WPC[γ]` algorithm on a
//! prerelation description, but any `wpc` oracle fits), pick two fresh
//! constants `c ≠ d`, compute
//!
//! ```text
//! Ψ = wpc(T, E(c,d))        Φ = wpc(T, E(c,c))
//! ```
//!
//! replace the constants by variables to get `ψ(x,y)`, `φ(x)`, form
//!
//! ```text
//! γ(x,y) = (x = y ∧ φ(x)) ∨ (x ≠ y ∧ ψ(x,y))
//! ```
//!
//! and finally replace every atomic subformula mentioning a *leftover*
//! constant by `false`. Genericity makes the result `β(x,y)` a prerelation
//! for `T` on **all** graphs ([`prerelation_from_generic`] +
//! property tests).

use crate::prerelations::Prerelation;
use crate::wpc::{wpc_formula, WpcError};
use vpdt_logic::{Elem, Formula, Term, Var};

/// Replaces every occurrence of the constant `c` by the variable `v`
/// (entering binders is safe: `v` must be fresh for `f`).
pub fn constant_to_variable(f: &Formula, c: Elem, v: &Var) -> Formula {
    assert!(
        !f.all_vars().contains(v),
        "replacement variable must be fresh"
    );
    fn term(t: &Term, c: Elem, v: &Var) -> Term {
        match t {
            Term::Const(k) if *k == c => Term::Var(v.clone()),
            Term::Var(_) | Term::Const(_) => t.clone(),
            Term::App(g, args) => {
                Term::App(g.clone(), args.iter().map(|a| term(a, c, v)).collect())
            }
        }
    }
    f.map(&|g| match g {
        Formula::Rel(name, ts) => Formula::Rel(name, ts.iter().map(|t| term(t, c, v)).collect()),
        Formula::Pred(p, ts) => Formula::Pred(p, ts.iter().map(|t| term(t, c, v)).collect()),
        Formula::Eq(a, b) => Formula::Eq(term(&a, c, v), term(&b, c, v)),
        other => other,
    })
}

/// Replaces every atomic subformula mentioning any constant *not* in
/// `keep` by `false` — sound on databases whose domain avoids those
/// constants, which is all the proof needs.
pub fn drop_alien_constants(f: &Formula, keep: &[Elem]) -> Formula {
    f.map(&|g| match &g {
        Formula::Rel(_, ts) | Formula::Pred(_, ts) => {
            if ts.iter().any(|t| has_alien(t, keep)) {
                Formula::False
            } else {
                g
            }
        }
        Formula::Eq(a, b) => {
            if has_alien(a, keep) || has_alien(b, keep) {
                Formula::False
            } else {
                g
            }
        }
        _ => g,
    })
}

fn has_alien(t: &Term, keep: &[Elem]) -> bool {
    t.constants().iter().any(|c| !keep.contains(c))
}

/// The Proposition 4 construction: a pure-FO formula `β(x, y)` such that
/// for every graph `G` and nodes `a, b`: `G ⊨ β(a,b) ⟺ (a,b) ∈ T(G)` —
/// i.e. a prerelation (with `Γ = {x}`) for the generic transaction
/// described by `pre`.
///
/// The input must be a generic transaction over the graph schema; the two
/// probe constants are chosen away from everything in the description.
pub fn prerelation_from_generic(pre: &Prerelation) -> Result<Formula, WpcError> {
    // fresh constants c ≠ d beyond anything the description mentions
    let mut max_const = 0u64;
    for (_, p) in pre.pres() {
        for e in p.formula.constants_used() {
            max_const = max_const.max(e.0);
        }
    }
    for t in pre.gamma() {
        for e in t.constants() {
            max_const = max_const.max(e.0);
        }
    }
    let c = Elem(max_const + 1_000_001);
    let d = Elem(max_const + 1_000_002);

    let psi = wpc_formula(pre, &Formula::rel("E", [Term::Const(c), Term::Const(d)]))?;
    let phi = wpc_formula(pre, &Formula::rel("E", [Term::Const(c), Term::Const(c)]))?;

    let x = Var::new("gx");
    let y = Var::new("gy");
    let psi_xy = constant_to_variable(&constant_to_variable(&psi, c, &x), d, &y);
    let phi_x = constant_to_variable(&phi, c, &x);

    let gamma = Formula::or([
        Formula::and([
            Formula::eq(Term::Var(x.clone()), Term::Var(y.clone())),
            phi_x,
        ]),
        Formula::and([
            Formula::neq(Term::Var(x.clone()), Term::Var(y.clone())),
            psi_xy,
        ]),
    ]);
    Ok(drop_alien_constants(&gamma, &[]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_eval::{eval, Env, Omega};
    use vpdt_logic::{parse_formula, Schema};
    use vpdt_structure::{families, Database};
    use vpdt_tx::traits::Transaction;

    fn check_is_prerelation(pre: &Prerelation, beta: &Formula, dbs: &[Database]) {
        assert!(beta.is_pure_fo(), "β must be pure FO, got {beta}");
        for db in dbs {
            let out = pre.apply(db).expect("applies");
            for &a in db.domain() {
                for &b in db.domain() {
                    let mut env = Env::of([(Var::new("gx"), a), (Var::new("gy"), b)]);
                    let by_beta = eval(db, &Omega::empty(), beta, &mut env).expect("evaluates");
                    let by_tx = out.contains("E", &[a, b]);
                    assert_eq!(by_beta, by_tx, "({a},{b}) on {db:?}");
                }
            }
        }
    }

    #[test]
    fn reverse_edges_transaction() {
        // a generic PR transaction: E := E ∪ E⁻¹
        let pre = Prerelation::identity(Schema::graph(), Omega::empty()).with_pre(
            "E",
            [Var::new("x"), Var::new("y")],
            parse_formula("E(x, y) | E(y, x)").expect("parses"),
        );
        let beta = prerelation_from_generic(&pre).expect("constructs");
        check_is_prerelation(
            &pre,
            &beta,
            &[
                families::chain(3),
                families::cycle(3),
                Database::graph([(0, 0), (1, 2)]),
                Database::graph([]),
            ],
        );
    }

    #[test]
    fn delete_loops_transaction() {
        let pre = Prerelation::identity(Schema::graph(), Omega::empty()).with_pre(
            "E",
            [Var::new("x"), Var::new("y")],
            parse_formula("E(x, y) & x != y").expect("parses"),
        );
        let beta = prerelation_from_generic(&pre).expect("constructs");
        check_is_prerelation(
            &pre,
            &beta,
            &[
                Database::graph([(0, 0), (0, 1), (2, 2)]),
                families::diagonal([3, 4]),
            ],
        );
    }

    #[test]
    fn constant_replacement_helpers() {
        let f = parse_formula("E(5, x) & 5 = 6").expect("parses");
        let g = constant_to_variable(&f, Elem(5), &Var::new("w"));
        assert_eq!(g.to_string(), "E(w, x) & w = 6");
        let dropped = drop_alien_constants(&g, &[]);
        assert_eq!(
            vpdt_logic::simplify::simplify(&dropped),
            Formula::False // both atoms mention constant 6 / none kept... E(w,x) has no constant
        );
    }
}
