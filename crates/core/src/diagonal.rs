//! Theorem 5: no transaction language captures `WPC(FOc(Ω))` (nor
//! `WPC(FO)`), by diagonalization.
//!
//! The proof builds, for any enumerated transaction language `(T₁, T₂, …)`,
//! a computable transaction `T` that (a) differs from every `T_m` on some
//! graph, yet (b) has weakest preconditions, because for every `n` it
//! eventually stops changing the `≡ₙ` class (agreement on the first `n`
//! sentences of an enumeration `(φᵢ)`).
//!
//! [`Diagonalization`] executes this construction on finite prefixes of
//! the three enumerations involved — sentences ([`vpdt_logic::enumerate`]),
//! graphs ([`vpdt_structure::enumerate`], either all graphs or one per
//! isomorphism class for the pure-FO variant), and the target transaction
//! language — computing the `H`, `P`, `Q` functions of the proof and the
//! diagonal transaction itself, plus the Lemma 6 weakest-precondition
//! construction `χ ∨ (¬θ ∧ φ)` from `describe` sentences.
//!
//! All searches carry explicit budgets: the construction is computable but
//! the proof's bounds are astronomically loose, so the experiment (E7)
//! reports the small indices it can certify.

use vpdt_eval::{holds, Omega};
use vpdt_logic::enumerate::SentenceEnumerator;
use vpdt_logic::{Formula, Schema};
use vpdt_structure::describe::describe_exactly;
use vpdt_structure::enumerate::{GraphEnumerator, NonIsoGraphEnumerator};
use vpdt_structure::Database;
use vpdt_tx::traits::{Transaction, TxError};

/// The finite-prefix execution of the Theorem 5 construction.
pub struct Diagonalization {
    sentences: Vec<Formula>,
    /// 1-based in the proofs: `graphs[i-1]` is `G_i`.
    graphs: Vec<Database>,
    /// `sat[i][s]` = `G_{i+1} ⊨ φ_s`.
    sat: Vec<Vec<bool>>,
    language: Vec<Box<dyn Transaction>>,
    omega: Omega,
}

/// An error from a budget-bounded search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded(pub String);

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "diagonalization budget exceeded: {}", self.0)
    }
}

impl std::error::Error for BudgetExceeded {}

impl Diagonalization {
    /// Sets up the construction over *all* graphs (the `WPC(FOc(Ω))`
    /// variant; the sentence enumeration may include constants).
    pub fn new(
        num_sentences: usize,
        num_graphs: usize,
        language: Vec<Box<dyn Transaction>>,
        with_constants: bool,
    ) -> Self {
        let mut enumerator = SentenceEnumerator::new(Schema::graph(), 2);
        if with_constants {
            enumerator = enumerator.with_constants([vpdt_logic::Elem(0), vpdt_logic::Elem(1)]);
        }
        let sentences: Vec<Formula> = enumerator.take(num_sentences).collect();
        let graphs: Vec<Database> = GraphEnumerator::new().take(num_graphs).collect();
        Self::build(sentences, graphs, language)
    }

    /// The pure-FO variant: one representative per isomorphism class (the
    /// `(Cₙ)` enumeration), making the diagonal transaction generic.
    pub fn new_upto_iso(
        num_sentences: usize,
        num_graphs: usize,
        language: Vec<Box<dyn Transaction>>,
    ) -> Self {
        let sentences: Vec<Formula> = SentenceEnumerator::new(Schema::graph(), 2)
            .take(num_sentences)
            .collect();
        let graphs: Vec<Database> = NonIsoGraphEnumerator::new().take(num_graphs).collect();
        Self::build(sentences, graphs, language)
    }

    fn build(
        sentences: Vec<Formula>,
        graphs: Vec<Database>,
        language: Vec<Box<dyn Transaction>>,
    ) -> Self {
        let omega = Omega::empty();
        let sat = graphs
            .iter()
            .map(|g| {
                sentences
                    .iter()
                    .map(|s| holds(g, &omega, s).expect("enumerated sentences evaluate"))
                    .collect()
            })
            .collect();
        Diagonalization {
            sentences,
            graphs,
            sat,
            language,
            omega,
        }
    }

    /// The sentence prefix `(φ₀ … )`.
    pub fn sentences(&self) -> &[Formula] {
        &self.sentences
    }

    /// The graph prefix (`graphs()[i-1]` is `G_i`).
    pub fn graphs(&self) -> &[Database] {
        &self.graphs
    }

    /// `G_i ≡ₙ G_j`: agreement on the first `n` sentences (1-based graph
    /// indices, as in the proof).
    pub fn equivalent_upto(&self, i: usize, j: usize, n: usize) -> bool {
        assert!(n <= self.sentences.len(), "not enough sentences enumerated");
        self.sat[i - 1][..n] == self.sat[j - 1][..n]
    }

    /// `H(m, n)`: a pair `(i, j)` with `m < i < j`, `G_i ≡ₙ G_j`,
    /// `G_i ≠ G_j`, found by scanning pairs in increasing-`j` order (the
    /// proof's "check each pair in turn"; a pair exists for every `m, n`
    /// because `≡ₙ` has finitely many classes).
    pub fn h(&self, m: usize, n: usize) -> Result<(usize, usize), BudgetExceeded> {
        for j in (m + 2)..=self.graphs.len() {
            for i in (m + 1)..j {
                if self.graphs[i - 1] != self.graphs[j - 1] && self.equivalent_upto(i, j, n) {
                    return Ok((i, j));
                }
            }
        }
        Err(BudgetExceeded(format!(
            "no H({m},{n}) pair within {} graphs",
            self.graphs.len()
        )))
    }

    /// The `P` and `Q` tables: `P(0)=Q(0)=1`; `(P(n+1), Q(n+1)) =
    /// H(P(n), n)`. Returns `[(P(0),Q(0)), …]` as far as the prefix allows,
    /// up to `max_n` entries beyond index 0.
    pub fn pq_table(&self, max_n: usize) -> Result<Vec<(usize, usize)>, BudgetExceeded> {
        let mut out = vec![(1usize, 1usize)];
        for n in 0..max_n {
            if n >= self.sentences.len() {
                return Err(BudgetExceeded("not enough sentences for P table".into()));
            }
            let (i, j) = self.h(out[n].0, n)?;
            out.push((i, j));
        }
        Ok(out)
    }

    /// The diagonal transaction `T` of the proof, evaluated at graph index
    /// `i` (1-based), using a `P/Q` table that must extend past any `n`
    /// with `P(n) = i`.
    pub fn diagonal_apply(&self, i: usize, pq: &[(usize, usize)]) -> Result<Database, TxError> {
        let g_i = &self.graphs[i - 1];
        // is i in the range of P (beyond index 0)?
        let inv = pq.iter().skip(1).position(|&(p, _)| p == i).map(|k| k + 1);
        let Some(n) = inv else {
            // not in range(P) — only certain if the table covers indices ≥ i
            let max_p = pq.last().map(|&(p, _)| p).unwrap_or(0);
            if i > max_p {
                return Err(TxError::ResourceLimit(format!(
                    "P table too short to decide membership of {i}"
                )));
            }
            return Ok(g_i.clone());
        };
        // i = P(n): diagonalize against T_n (1-based language index)
        let t_n = self
            .language
            .get(n - 1)
            .ok_or_else(|| TxError::ResourceLimit(format!("language prefix shorter than {n}")))?;
        let g_prime = t_n.apply(g_i)?;
        let j = pq[n].1;
        let g_j = &self.graphs[j - 1];
        // pick whichever of G_i, G_j differs from T_n(G_i); if both do,
        // pick G_min(i,j)
        let pick_i = *g_i != g_prime;
        let pick_j = *g_j != g_prime;
        Ok(match (pick_i, pick_j) {
            (true, true) => self.graphs[i.min(j) - 1].clone(),
            (true, false) => g_i.clone(),
            (false, true) => g_j.clone(),
            (false, false) => unreachable!("G_i ≠ G_j, so one differs from G′"),
        })
    }

    /// Verifies the diagonalization at index `m`: `T(G_{P(m)}) ≠
    /// T_m(G_{P(m)})` (the language cannot express `T`).
    pub fn diagonalizes_against(&self, m: usize, pq: &[(usize, usize)]) -> Result<bool, TxError> {
        let i = pq[m].0;
        let ours = self.diagonal_apply(i, pq)?;
        let theirs = self.language[m - 1].apply(&self.graphs[i - 1])?;
        Ok(ours != theirs)
    }

    /// The Lemma 6 weakest-precondition for `φ = sentences()[n]` w.r.t. the
    /// diagonal transaction: `χ ∨ (¬θ ∧ φ)` where `χ` describes the
    /// `G_i`, `i ≤ P(n)`, with `T(G_i) ⊨ φ`, and `θ` describes all `G_i`
    /// with `i ≤ P(n)`.
    ///
    /// The construction uses FOc `describe` sentences, so it matches the
    /// `WPC(FOc(Ω))` variant; its correctness is checked by the caller on
    /// the graph prefix (see `tests/`).
    pub fn lemma6_wpc(&self, n: usize, pq: &[(usize, usize)]) -> Result<Formula, TxError> {
        let phi = &self.sentences[n];
        let m = pq
            .get(n)
            .ok_or_else(|| TxError::ResourceLimit("P table too short".into()))?
            .0;
        let mut chi = Vec::new();
        let mut theta = Vec::new();
        for i in 1..=m {
            let desc = describe_exactly(&self.graphs[i - 1]);
            theta.push(desc.clone());
            let out = self.diagonal_apply(i, pq)?;
            if holds(&out, &self.omega, phi).map_err(TxError::from)? {
                chi.push(desc);
            }
        }
        Ok(Formula::or([
            Formula::or(chi),
            Formula::and([Formula::not(Formula::or(theta)), phi.clone()]),
        ]))
    }
}

/// A small enumerated transaction language for demonstrations: identity,
/// the two Proposition 1 SPJ transactions, tc, dtc, the Theorem 7
/// separator, and a couple of update programs.
pub fn demo_language() -> Vec<Box<dyn Transaction>> {
    use vpdt_tx::program::{Program, ProgramTransaction};
    vec![
        Box::new(crate::prerelations::Prerelation::identity(
            Schema::graph(),
            Omega::empty(),
        )),
        Box::new(vpdt_tx::algebra::t1_diagonal()),
        Box::new(vpdt_tx::algebra::t2_complete()),
        Box::new(vpdt_tx::recursive::TcTransaction),
        Box::new(vpdt_tx::recursive::DtcTransaction),
        Box::new(crate::theorem7::SeparatorTransaction),
        Box::new(ProgramTransaction::new(
            "ins00",
            Program::insert_consts("E", [0, 0]),
            Omega::empty(),
        )),
        Box::new(ProgramTransaction::new(
            "del00",
            Program::delete_consts("E", [0, 0]),
            Omega::empty(),
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Diagonalization {
        Diagonalization::new(12, 600, demo_language(), false)
    }

    #[test]
    fn h_finds_equivalent_distinct_pairs() {
        let d = small();
        let (i, j) = d.h(1, 3).expect("within budget");
        assert!(1 < i && i < j);
        assert!(d.equivalent_upto(i, j, 3));
        assert_ne!(d.graphs()[i - 1], d.graphs()[j - 1]);
    }

    #[test]
    fn pq_table_is_strictly_monotone() {
        let d = small();
        let pq = d.pq_table(4).expect("within budget");
        for w in pq.windows(2) {
            assert!(w[1].0 > w[0].0, "P strictly increasing: {pq:?}");
        }
        for &(p, q) in &pq[1..] {
            assert!(p < q, "P(n) < Q(n)");
        }
    }

    #[test]
    fn diagonal_differs_from_every_enumerated_transaction() {
        let d = small();
        let lang_len = 4; // check the first few languages members
        let pq = d.pq_table(lang_len).expect("within budget");
        for m in 1..=lang_len {
            assert!(
                d.diagonalizes_against(m, &pq).expect("applies"),
                "T coincides with T_{m} at its diagonal point"
            );
        }
    }

    #[test]
    fn diagonal_is_identity_off_the_range_of_p() {
        let d = small();
        let pq = d.pq_table(3).expect("within budget");
        let in_range: Vec<usize> = pq[1..].iter().map(|&(p, _)| p).collect();
        for i in 1..=*in_range.last().expect("nonempty") {
            if !in_range.contains(&i) {
                let out = d.diagonal_apply(i, &pq).expect("applies");
                assert_eq!(out, d.graphs()[i - 1]);
            }
        }
    }

    #[test]
    fn lemma6_wpc_is_correct_on_the_prefix() {
        let d = small();
        let n = 2;
        let pq = d.pq_table(n + 1).expect("within budget");
        let w = d.lemma6_wpc(n, &pq).expect("constructs");
        let phi = &d.sentences()[n];
        let max_p = pq.last().expect("nonempty").0;
        for i in 1..=max_p {
            let lhs = holds(&d.graphs()[i - 1], &Omega::empty(), &w).expect("evaluates");
            let out = d.diagonal_apply(i, &pq).expect("applies");
            let rhs = holds(&out, &Omega::empty(), phi).expect("evaluates");
            assert_eq!(lhs, rhs, "wpc mismatch at G_{i}");
        }
    }

    #[test]
    fn iso_variant_runs() {
        let d = Diagonalization::new_upto_iso(10, 400, demo_language());
        let pq = d.pq_table(2).expect("within budget");
        assert!(d.diagonalizes_against(1, &pq).expect("applies"));
    }
}
