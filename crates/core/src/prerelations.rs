//! Prerelations: tuple-level preconditions (Section 2).
//!
//! A transaction `T` *admits prerelations over L* if there is a finite set
//! of terms `Γ` and, for every relation `Rᵢ`, a formula `pre_Rᵢ(x₁..x_nᵢ)`
//! such that for every database `D` and every tuple `d̄ ∈ U^nᵢ`:
//!
//! ```text
//! D ⊨ pre_Rᵢ(d̄)  and  d̄ ∈ Γ(D)    ⟺    T(D) ⊨ Rᵢ(d̄)
//! ```
//!
//! where `Γ(D) = { τ(ā) | τ ∈ Γ, ā ∈ dom(D)^arity(τ) }` is the term
//! extension of the active domain (it accommodates transactions that invent
//! values, e.g. inserting constants).
//!
//! [`Prerelation`] is both a *description* (usable by the `WPC[γ]`
//! algorithm of [`crate::wpc`]) and a *transaction* (Proposition 3: the
//! descriptions form a transaction language capturing `PR(FOc(Ω))`).
//! [`compile_program`] compiles every update program of `vpdt-tx` into an
//! equivalent description — equivalence is property-tested in
//! `tests/` against the operational semantics.

use std::collections::{BTreeMap, BTreeSet};
use vpdt_eval::{eval, eval_term, Env, Omega};
use vpdt_logic::{Elem, Formula, Schema, Term, Var};
use vpdt_structure::Database;
use vpdt_tx::algebra::RaTransaction;
use vpdt_tx::program::Program;
use vpdt_tx::traits::{normalize_domain, Transaction, TxError};

/// The prerelation formula of one relation: `vars` lists the tuple
/// variables (one per column), `formula`'s free variables are ⊆ `vars`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreRel {
    /// The tuple variables.
    pub vars: Vec<Var>,
    /// The membership condition over the *old* database state.
    pub formula: Formula,
}

/// A prerelation description `(Γ, {pre_R})` of a transaction over a schema,
/// together with the interpretation of its Ω symbols.
#[derive(Clone, Debug)]
pub struct Prerelation {
    label: String,
    schema: Schema,
    gamma: Vec<Term>,
    pres: BTreeMap<String, PreRel>,
    omega: Omega,
}

impl Prerelation {
    /// The identity transaction on a schema: `Γ = {u}` and
    /// `pre_R(x̄) = R(x̄)` for every relation.
    pub fn identity(schema: Schema, omega: Omega) -> Self {
        let mut pres = BTreeMap::new();
        for (name, arity) in schema.iter() {
            let vars: Vec<Var> = (0..arity).map(|i| Var::new(format!("x{i}"))).collect();
            let formula = Formula::rel(name, vars.iter().map(|v| Term::Var(v.clone())));
            pres.insert(name.to_string(), PreRel { vars, formula });
        }
        Prerelation {
            label: "identity".into(),
            schema,
            gamma: vec![Term::var("u")],
            pres,
            omega,
        }
    }

    /// Renames the transaction.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Adds a term to `Γ`. Terms are α-normalized (variables renamed to
    /// `g0, g1, …` in first-occurrence order) so that composition does not
    /// accumulate α-equivalent duplicates — `Γ(D)` only depends on terms up
    /// to variable renaming.
    pub fn with_gamma_term(mut self, t: Term) -> Self {
        let t = alpha_normalize(&t);
        if !self.gamma.contains(&t) {
            self.gamma.push(t);
        }
        self
    }

    /// Replaces the prerelation formula of one relation.
    ///
    /// # Panics
    /// Panics if the relation is unknown, the variable count mismatches the
    /// arity, or the formula has stray free variables.
    pub fn with_pre(
        mut self,
        rel: &str,
        vars: impl IntoIterator<Item = Var>,
        formula: Formula,
    ) -> Self {
        let arity = self
            .schema
            .arity_of(rel)
            .unwrap_or_else(|| panic!("relation {rel} not in schema"));
        let vars: Vec<Var> = vars.into_iter().collect();
        assert_eq!(vars.len(), arity, "one variable per column of {rel}");
        for fv in formula.free_vars() {
            assert!(
                vars.contains(&fv),
                "prerelation for {rel} has stray free variable {fv}"
            );
        }
        self.pres.insert(rel.to_string(), PreRel { vars, formula });
        self
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The term set `Γ`.
    pub fn gamma(&self) -> &[Term] {
        &self.gamma
    }

    /// The prerelation formula of a relation.
    pub fn pre(&self, rel: &str) -> &PreRel {
        &self.pres[rel]
    }

    /// The Ω interpretation.
    pub fn omega(&self) -> &Omega {
        &self.omega
    }

    /// All prerelation formulas (relation name → formula).
    pub fn pres(&self) -> impl Iterator<Item = (&str, &PreRel)> {
        self.pres.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether every formula (and Γ) is pure FO — the `PR(FO)` fragment.
    pub fn is_pure_fo(&self) -> bool {
        self.gamma.iter().all(|t| matches!(t, Term::Var(_)))
            && self.pres.values().all(|p| p.formula.is_pure_fo())
    }

    /// Computes the term extension `Γ(D)`.
    pub fn gamma_extension(&self, db: &Database) -> Result<BTreeSet<Elem>, TxError> {
        let dom: Vec<Elem> = db.domain().iter().copied().collect();
        let mut out = BTreeSet::new();
        for term in &self.gamma {
            let vars = term.vars();
            if vars.is_empty() {
                // ground terms contribute even over the empty database
                out.insert(eval_term(&self.omega, term, &Env::new()).map_err(TxError::from)?);
                continue;
            }
            if dom.is_empty() {
                continue;
            }
            let mut assignment = vec![0usize; vars.len()];
            loop {
                let mut env = Env::new();
                for (v, &i) in vars.iter().zip(assignment.iter()) {
                    env.push_elem(v.clone(), dom[i]);
                }
                out.insert(eval_term(&self.omega, term, &env).map_err(TxError::from)?);
                // odometer over dom^|vars|
                let mut k = vars.len();
                loop {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                    assignment[k] += 1;
                    if assignment[k] < dom.len() {
                        break;
                    }
                    assignment[k] = 0;
                    if k == 0 {
                        break;
                    }
                }
                if assignment.iter().all(|&i| i == 0) {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// The total number of candidate tuples `|Γ(D)|^arity` summed over
    /// relations — a cost estimate for [`Transaction::apply`].
    pub fn candidate_count(&self, db: &Database) -> Result<usize, TxError> {
        let g = self.gamma_extension(db)?.len();
        Ok(self
            .schema
            .iter()
            .map(|(_, arity)| g.saturating_pow(arity as u32))
            .sum())
    }
}

impl Transaction for Prerelation {
    fn name(&self) -> String {
        self.label.clone()
    }

    /// Applies the description: `R_new = { d̄ ∈ Γ(D)^n | D ⊨ pre_R(d̄) }`.
    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        if db.schema() != &self.schema {
            return Err(TxError::SchemaMismatch(format!(
                "transaction {} expects a different schema",
                self.label
            )));
        }
        let universe: Vec<Elem> = self.gamma_extension(db)?.into_iter().collect();
        let mut out = Database::empty(self.schema.clone());
        for (rel, pre) in &self.pres {
            let arity = pre.vars.len();
            let mut idx = vec![0usize; arity];
            if universe.is_empty() {
                continue;
            }
            loop {
                let mut env = Env::new();
                for (v, &i) in pre.vars.iter().zip(idx.iter()) {
                    env.push_elem(v.clone(), universe[i]);
                }
                if eval(db, &self.omega, &pre.formula, &mut env)? {
                    out.insert(rel, idx.iter().map(|&i| universe[i]).collect());
                }
                let mut k = arity;
                loop {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                    idx[k] += 1;
                    if idx[k] < universe.len() {
                        break;
                    }
                    idx[k] = 0;
                    if k == 0 {
                        break;
                    }
                }
                if idx.iter().all(|&i| i == 0) {
                    break;
                }
            }
        }
        Ok(normalize_domain(out))
    }
}

/// Renames a term's variables to `g0, g1, …` in first-occurrence order.
fn alpha_normalize(t: &Term) -> Term {
    let vars = t.vars();
    let map: std::collections::BTreeMap<Var, Term> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), Term::var(format!("g{i}"))))
        .collect();
    t.substitute(&|v| map.get(v).cloned())
}

/// Errors when compiling a program to a prerelation description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// `∃z. z = t` — "the value of `t` is in the (old) domain". Used to guard
/// assignments whose tuples must range over `dom(D)` even when Γ is larger.
fn in_dom(t: Term) -> Formula {
    Formula::exists("zdom", Formula::eq(Term::var("zdom"), t))
}

/// Compiles an update program into an equivalent prerelation description
/// (the constructive content of Proposition 3 for this language).
///
/// `Seq` is compiled by symbolic composition ([`crate::wpc::compose`]), so
/// the result is a *single* `(Γ, {pre_R})` pair whatever the program length.
pub fn compile_program(
    label: impl Into<String>,
    program: &Program,
    schema: &Schema,
    omega: &Omega,
) -> Result<Prerelation, CompileError> {
    let pr = compile(program, schema, omega)?;
    Ok(pr.with_label(label))
}

fn compile(p: &Program, schema: &Schema, omega: &Omega) -> Result<Prerelation, CompileError> {
    let base = Prerelation::identity(schema.clone(), omega.clone());
    match p {
        Program::Skip => Ok(base),
        Program::Insert { rel, tuple } => {
            if !schema.contains(rel) {
                return Err(CompileError(format!("unknown relation {rel}")));
            }
            for t in tuple {
                if !t.is_ground() {
                    return Err(CompileError(format!("insert term {t} is not ground")));
                }
            }
            let old = base.pre(rel).clone();
            let is_new = Formula::and(
                old.vars
                    .iter()
                    .zip(tuple.iter())
                    .map(|(v, t)| Formula::eq(Term::Var(v.clone()), t.clone())),
            );
            let formula = Formula::or([old.formula.clone(), is_new]);
            let mut out = base.with_pre(rel, old.vars, formula);
            for t in tuple {
                out = out.with_gamma_term(t.clone());
            }
            Ok(out)
        }
        Program::DeleteWhere { rel, vars, cond } => {
            if !schema.contains(rel) {
                return Err(CompileError(format!("unknown relation {rel}")));
            }
            let atom = Formula::rel(rel.clone(), vars.iter().map(|v| Term::Var(v.clone())));
            let formula = Formula::and([atom, Formula::not(cond.clone())]);
            Ok(base.with_pre(rel, vars.clone(), formula))
        }
        Program::InsertWhere { rel, vars, cond } => {
            if !schema.contains(rel) {
                return Err(CompileError(format!("unknown relation {rel}")));
            }
            let atom = Formula::rel(rel.clone(), vars.iter().map(|v| Term::Var(v.clone())));
            let guarded = Formula::and(
                std::iter::once(cond.clone())
                    .chain(vars.iter().map(|v| in_dom(Term::Var(v.clone())))),
            );
            let formula = Formula::or([atom, guarded]);
            Ok(base.with_pre(rel, vars.clone(), formula))
        }
        Program::Assign { rel, vars, body } => {
            if !schema.contains(rel) {
                return Err(CompileError(format!("unknown relation {rel}")));
            }
            let guarded = Formula::and(
                std::iter::once(body.clone())
                    .chain(vars.iter().map(|v| in_dom(Term::Var(v.clone())))),
            );
            Ok(base.with_pre(rel, vars.clone(), guarded))
        }
        Program::Seq(ps) => {
            let mut acc = base;
            for p in ps {
                let step = compile(p, schema, omega)?;
                acc = crate::wpc::compose(&acc, &step).map_err(|e| CompileError(e.to_string()))?;
            }
            Ok(acc)
        }
        Program::If {
            cond,
            then_p,
            else_p,
        } => {
            if !cond.is_sentence() {
                return Err(CompileError("if-guard must be a sentence".into()));
            }
            let a = compile(then_p, schema, omega)?;
            let b = compile(else_p, schema, omega)?;
            let mut out = Prerelation::identity(schema.clone(), omega.clone());
            for t in a.gamma().iter().chain(b.gamma().iter()) {
                out = out.with_gamma_term(t.clone());
            }
            for (rel, _arity) in schema.iter() {
                let pa = a.pre(rel);
                let pb = b.pre(rel);
                // align pb's variables with pa's
                let map: BTreeMap<Var, Term> = pb
                    .vars
                    .iter()
                    .cloned()
                    .zip(pa.vars.iter().map(|v| Term::Var(v.clone())))
                    .collect();
                let pb_formula = vpdt_logic::subst::substitute_many(&pb.formula, &map);
                let formula = Formula::or([
                    Formula::and([cond.clone(), pa.formula.clone()]),
                    Formula::and([Formula::not(cond.clone()), pb_formula]),
                ]);
                out = out.with_pre(rel, pa.vars.clone(), formula);
            }
            Ok(out)
        }
    }
}

/// Compiles a relational-algebra transaction into a prerelation description
/// via the RA→FO compiler. RA results are always tuples of active-domain
/// elements, so `Γ = {u}` suffices.
pub fn compile_ra(tx: &RaTransaction, schema: &Schema) -> Result<Prerelation, CompileError> {
    let mut out = Prerelation::identity(schema.clone(), Omega::empty())
        .with_label(format!("{}-as-prerelation", tx.name()));
    for (rel, expr) in tx.assignments() {
        let arity = schema
            .arity_of(rel)
            .ok_or_else(|| CompileError(format!("unknown relation {rel}")))?;
        let vars: Vec<Var> = (0..arity).map(|i| Var::new(format!("x{i}"))).collect();
        let formula = expr
            .to_formula(schema, &vars)
            .map_err(|e| CompileError(e.to_string()))?;
        out = out.with_pre(rel, vars, formula);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::parse_formula;
    use vpdt_structure::families;
    use vpdt_tx::program::ProgramTransaction;

    #[test]
    fn identity_is_identity() {
        let id = Prerelation::identity(Schema::graph(), Omega::empty());
        for db in [families::chain(4), families::cycle(3), Database::graph([])] {
            assert_eq!(id.apply(&db).expect("applies"), db);
        }
    }

    #[test]
    fn insert_compiles_correctly() {
        let p = Program::insert_consts("E", [7, 8]);
        let pr = compile_program("ins", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        let direct = ProgramTransaction::new("ins", p, Omega::empty());
        for db in [families::chain(3), Database::graph([])] {
            assert_eq!(
                pr.apply(&db).expect("pr"),
                direct.apply(&db).expect("direct"),
                "on {db:?}"
            );
        }
    }

    #[test]
    fn delete_compiles_correctly() {
        let p = Program::DeleteWhere {
            rel: "E".into(),
            vars: vec![Var::new("x"), Var::new("y")],
            cond: parse_formula("x = y").expect("parses"),
        };
        let pr = compile_program("del", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        let direct = ProgramTransaction::new("del", p, Omega::empty());
        let mut db = families::chain(3);
        db.insert("E", vec![Elem(1), Elem(1)]);
        assert_eq!(
            pr.apply(&db).expect("pr"),
            direct.apply(&db).expect("direct")
        );
    }

    #[test]
    fn seq_composition_matches_direct_semantics() {
        let p = Program::seq([
            Program::insert_consts("E", [5, 6]),
            Program::DeleteWhere {
                rel: "E".into(),
                vars: vec![Var::new("x"), Var::new("y")],
                cond: parse_formula("x = 0").expect("parses"),
            },
            Program::insert_consts("E", [6, 7]),
        ]);
        let pr = compile_program("seq", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        let direct = ProgramTransaction::new("seq", p, Omega::empty());
        for db in [families::chain(4), families::cycle(3), Database::graph([])] {
            assert_eq!(
                pr.apply(&db).expect("pr"),
                direct.apply(&db).expect("direct"),
                "on {db:?}"
            );
        }
    }

    #[test]
    fn conditional_compiles_correctly() {
        let p = Program::If {
            cond: parse_formula("exists x. E(x, x)").expect("parses"),
            then_p: Box::new(Program::insert_consts("E", [9, 9])),
            else_p: Box::new(Program::delete_consts("E", [0, 1])),
        };
        let pr = compile_program("if", &p, &Schema::graph(), &Omega::empty()).expect("compiles");
        let direct = ProgramTransaction::new("if", p, Omega::empty());
        for db in [
            Database::graph([(0, 0), (0, 1)]),
            Database::graph([(0, 1), (1, 2)]),
        ] {
            assert_eq!(
                pr.apply(&db).expect("pr"),
                direct.apply(&db).expect("direct"),
                "on {db:?}"
            );
        }
    }

    #[test]
    fn ra_compilation_matches() {
        let schema = Schema::graph();
        for tx in [
            vpdt_tx::algebra::t1_diagonal(),
            vpdt_tx::algebra::t2_complete(),
        ] {
            let pr = compile_ra(&tx, &schema).expect("compiles");
            for db in [families::chain(4), families::two_cycles(2, 3)] {
                assert_eq!(
                    pr.apply(&db).expect("pr"),
                    tx.apply(&db).expect("ra"),
                    "{} on {db:?}",
                    tx.name()
                );
            }
        }
    }

    #[test]
    fn gamma_extension_includes_ground_terms() {
        let pr = Prerelation::identity(Schema::graph(), Omega::empty())
            .with_gamma_term(Term::cst(42u64));
        let g = pr.gamma_extension(&families::chain(2)).expect("computes");
        assert!(g.contains(&Elem(42)));
        assert!(g.contains(&Elem(0)));
        // ground terms appear even over the empty database
        let g0 = pr.gamma_extension(&Database::graph([])).expect("computes");
        assert_eq!(g0, BTreeSet::from([Elem(42)]));
    }

    #[test]
    fn omega_terms_in_gamma() {
        let pr = Prerelation::identity(Schema::graph(), Omega::arithmetic())
            .with_gamma_term(Term::app("succ", [Term::var("w")]));
        let g = pr.gamma_extension(&families::chain(2)).expect("computes");
        // dom = {0,1}; succ adds {1,2}
        assert_eq!(g, BTreeSet::from([Elem(0), Elem(1), Elem(2)]));
    }

    #[test]
    fn pure_fo_detection() {
        let id = Prerelation::identity(Schema::graph(), Omega::empty());
        assert!(id.is_pure_fo());
        let with_const = id.clone().with_gamma_term(Term::cst(3u64));
        assert!(!with_const.is_pure_fo());
    }
}
