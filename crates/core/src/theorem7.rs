//! Theorem 7: the transaction separating `WPC(FO)` from `PR(FO)`.
//!
//! ```text
//! T(G) = tc(chain(G))            if G ⊨ ψ_C&C
//!        {(x,x) | x ∈ X}         otherwise          (X = the node set)
//! ```
//!
//! `T` is generic, PTIME, Datalog¬-definable ([`theorem7_datalog`]), has
//! first-order weakest preconditions ([`wpc_theorem7`]) — and admits **no**
//! prerelations over pure FO, because a prerelation would make "tc of a
//! chain" a first-order query, contradicting the bounded degree property
//! (demonstrated empirically by `vpdt-games::locality` and experiment E8).
//!
//! ## The wpc algorithm
//!
//! Our implementation generalizes the paper's Gaifman-based Case 1–3
//! analysis into a uniform threshold algorithm, exact for *every* pure-FO
//! sentence `α` (the paper's algorithm handles Gaifman sentences; every FO
//! sentence is a boolean combination of those):
//!
//! * On `ψ_C&C` inputs with chain part of length `j`, `T(G) ≅ L_j`, so
//!   `T(G) ⊨ α` depends only on `j`; and `L_j ≡_k L_{j′}` once
//!   `j, j′ ≥ 2^k − 1` (Rosenstein; the paper quotes the safe bound `2^k`).
//!   Model-check `α` on the finitely many `L_j` below the threshold and
//!   express the result with the chain-length sentences `p_j` / `p⁰_j`.
//! * On other inputs with `m` nodes, `T(G) ≅ Δ_m` (the diagonal), and
//!   `Δ_m ≡_k Δ_{m′}` once `m, m′ ≥ k`; model-check on small diagonals and
//!   express with `μ_m`.
//!
//! The `p_N` sentence with `N = max(2, 2^k−1)` has quantifier rank `N + 1`,
//! which exhibits Corollary 3's `2ⁿ` blow-up ([`wpc_rank_blowup`]).

use vpdt_eval::{holds_pure, Omega};
use vpdt_logic::{library, Formula};
use vpdt_structure::graph::graph_from_pairs;
use vpdt_structure::{families, Database, Graph};
use vpdt_tx::datalog::{
    Atom, DatalogProgram, DatalogTransaction, DlTerm, Literal, Rule, Strategy, DOM,
};
use vpdt_tx::traits::{normalize_domain, Transaction, TxError};

/// The separating transaction `T` of Theorem 7.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeparatorTransaction;

impl Transaction for SeparatorTransaction {
    fn name(&self) -> String {
        "theorem7-separator".into()
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        let sat = holds_pure(db, &library::psi_cc()).map_err(TxError::from)?;
        if sat {
            let g = Graph::of_edges(db);
            let dec = g
                .cc_decompose()
                .ok_or_else(|| TxError::Eval("psi_cc holds but decomposition failed".into()))?;
            // tc of the chain component: the strict linear order on its nodes
            let mut pairs = Vec::new();
            for i in 0..dec.chain.len() {
                for j in (i + 1)..dec.chain.len() {
                    pairs.push((dec.chain[i], dec.chain[j]));
                }
            }
            Ok(normalize_domain(graph_from_pairs(
                dec.chain.iter().copied(),
                pairs,
            )))
        } else {
            let loops = db.domain().iter().map(|e| (*e, *e)).collect::<Vec<_>>();
            Ok(normalize_domain(graph_from_pairs(
                db.domain().iter().copied(),
                loops,
            )))
        }
    }
}

/// The weakest precondition of `α` with respect to [`SeparatorTransaction`]
/// over pure FO: `D ⊨ wpc(T, α) ⟺ T(D) ⊨ α` for every graph database.
///
/// # Panics
/// Panics if `α` is not a pure-FO sentence — with constants the wpc does
/// not exist (Proposition 5), and with counting it does not exist either
/// (Theorem 3).
pub fn wpc_theorem7(alpha: &Formula) -> Formula {
    assert!(alpha.is_sentence(), "wpc needs a sentence");
    assert!(
        alpha.is_pure_fo(),
        "Theorem 7's transaction is only verifiable over pure FO (Prop. 5)"
    );
    let k = alpha.quantifier_rank() as u32;
    let t = SeparatorTransaction;

    // Chain branch: α on T(chain of length j) for j = 1..=n_lin; j ≥ n_lin
    // all agree. (j = 0 is impossible under ψ_C&C: it needs a root.)
    let n_lin = (2usize.saturating_pow(k).saturating_sub(1)).max(2);
    let mut lin_cases = Vec::new();
    for j in 1..=n_lin {
        let out = t.apply(&families::chain(j)).expect("chains are C&C graphs");
        if holds_pure(&out, alpha).expect("pure FO evaluates") {
            if j < n_lin {
                lin_cases.push(library::chain_exactly(j));
            } else {
                lin_cases.push(library::chain_at_least(n_lin));
            }
        }
    }
    let lin_pre = Formula::or(lin_cases);

    // Diagonal branch: α on Δ_m for m = 0..=n_diag; m ≥ n_diag all agree.
    let n_diag = (k as usize).max(1);
    let mut diag_cases = Vec::new();
    for m in 0..=n_diag {
        let delta = families::diagonal(0..m as u64);
        if holds_pure(&delta, alpha).expect("pure FO evaluates") {
            if m < n_diag {
                diag_cases.push(library::exactly_nodes(m));
            } else {
                diag_cases.push(library::at_least_nodes(n_diag));
            }
        }
    }
    let diag_pre = Formula::or(diag_cases);

    let cc = library::psi_cc();
    Formula::or([
        Formula::and([cc.clone(), lin_pre]),
        Formula::and([Formula::not(cc), diag_pre]),
    ])
}

/// The quantifier-rank blow-up of Corollary 3: returns
/// `(qr(α), qr(wpc(T,α)))`. For `α = p-style` sentences of rank `n`, the
/// second component is ≥ `2ⁿ`.
pub fn wpc_rank_blowup(alpha: &Formula) -> (usize, usize) {
    let w = wpc_theorem7(alpha);
    (alpha.quantifier_rank(), w.quantifier_rank())
}

/// The Datalog¬ definition of the separator (the "Moreover, T can be
/// chosen to be Datalogc-definable" part of Theorem D):
///
/// ```text
/// out2(w)    ← E(w,y), E(w,z), y≠z            (and the in-degree twin)
/// root(x)    ← Dom(x), ¬hasin(x)               hasin(x) ← E(y,x)
/// leaf(x)    ← Dom(x), ¬hasout(x)              hasout(x) ← E(x,y)
/// bad(w)     ← Dom(w), out2(x)                 (… in2, two roots, no root,
///                                               two leaves, no leaf)
/// good(w)    ← Dom(w), ¬bad(w)
/// inchain(x) ← root(x), good(x)
/// inchain(y) ← inchain(x), E(x,y)
/// lin(x,y)   ← inchain(x), E(x,y)
/// lin(x,y)   ← lin(x,z), lin(z,y)  — via E-step
/// newE(x,y)  ← lin(x,y)
/// newE(x,x)  ← Dom(x), bad(x)
/// ```
pub fn theorem7_datalog(strategy: Strategy) -> DatalogTransaction {
    let v = DlTerm::v;
    let pos = |r: &str, args: Vec<DlTerm>| Literal::Pos(Atom::new(r, args));
    let neg = |r: &str, args: Vec<DlTerm>| Literal::Neg(Atom::new(r, args));
    let rules = vec![
        // degree flags
        Rule::new(
            Atom::new("out2", [v("x")]),
            vec![
                pos("E", vec![v("x"), v("y")]),
                pos("E", vec![v("x"), v("z")]),
                Literal::Neq(v("y"), v("z")),
            ],
        ),
        Rule::new(
            Atom::new("in2", [v("x")]),
            vec![
                pos("E", vec![v("y"), v("x")]),
                pos("E", vec![v("z"), v("x")]),
                Literal::Neq(v("y"), v("z")),
            ],
        ),
        Rule::new(
            Atom::new("hasin", [v("x")]),
            vec![pos("E", vec![v("y"), v("x")])],
        ),
        Rule::new(
            Atom::new("hasout", [v("x")]),
            vec![pos("E", vec![v("x"), v("y")])],
        ),
        Rule::new(
            Atom::new("root", [v("x")]),
            vec![pos(DOM, vec![v("x")]), neg("hasin", vec![v("x")])],
        ),
        Rule::new(
            Atom::new("leaf", [v("x")]),
            vec![pos(DOM, vec![v("x")]), neg("hasout", vec![v("x")])],
        ),
        // violations of psi_cc, broadcast to every node
        Rule::new(
            Atom::new("bad", [v("w")]),
            vec![pos(DOM, vec![v("w")]), pos("out2", vec![v("x")])],
        ),
        Rule::new(
            Atom::new("bad", [v("w")]),
            vec![pos(DOM, vec![v("w")]), pos("in2", vec![v("x")])],
        ),
        Rule::new(
            Atom::new("bad", [v("w")]),
            vec![
                pos(DOM, vec![v("w")]),
                pos("root", vec![v("x")]),
                pos("root", vec![v("y")]),
                Literal::Neq(v("x"), v("y")),
            ],
        ),
        Rule::new(
            Atom::new("someroot", [v("w")]),
            vec![pos(DOM, vec![v("w")]), pos("root", vec![v("x")])],
        ),
        Rule::new(
            Atom::new("bad", [v("w")]),
            vec![pos(DOM, vec![v("w")]), neg("someroot", vec![v("w")])],
        ),
        Rule::new(
            Atom::new("bad", [v("w")]),
            vec![
                pos(DOM, vec![v("w")]),
                pos("leaf", vec![v("x")]),
                pos("leaf", vec![v("y")]),
                Literal::Neq(v("x"), v("y")),
            ],
        ),
        Rule::new(
            Atom::new("someleaf", [v("w")]),
            vec![pos(DOM, vec![v("w")]), pos("leaf", vec![v("x")])],
        ),
        Rule::new(
            Atom::new("bad", [v("w")]),
            vec![pos(DOM, vec![v("w")]), neg("someleaf", vec![v("w")])],
        ),
        Rule::new(
            Atom::new("good", [v("w")]),
            vec![pos(DOM, vec![v("w")]), neg("bad", vec![v("w")])],
        ),
        // the chain component = nodes reachable from the root
        Rule::new(
            Atom::new("inchain", [v("x")]),
            vec![pos("root", vec![v("x")]), pos("good", vec![v("x")])],
        ),
        Rule::new(
            Atom::new("inchain", [v("y")]),
            vec![pos("inchain", vec![v("x")]), pos("E", vec![v("x"), v("y")])],
        ),
        // tc restricted to the chain
        Rule::new(
            Atom::new("lin", [v("x"), v("y")]),
            vec![pos("inchain", vec![v("x")]), pos("E", vec![v("x"), v("y")])],
        ),
        Rule::new(
            Atom::new("lin", [v("x"), v("y")]),
            vec![
                pos("lin", vec![v("x"), v("z")]),
                pos("E", vec![v("z"), v("y")]),
            ],
        ),
        // outputs
        Rule::new(
            Atom::new("newE", [v("x"), v("y")]),
            vec![pos("lin", vec![v("x"), v("y")])],
        ),
        Rule::new(
            Atom::new("newE", [v("x"), v("x")]),
            vec![pos(DOM, vec![v("x")]), pos("bad", vec![v("x")])],
        ),
    ];
    DatalogTransaction::new(
        "theorem7-datalog",
        DatalogProgram::new(rules).expect("theorem7 program is stratified and safe"),
        [("newE", "E")],
        strategy,
    )
}

/// Convenience: whether `T` is generic on the given database under a
/// permutation (re-exported check used by experiment E8).
pub fn separator_is_generic_on(
    db: &Database,
    pi: &dyn Fn(vpdt_logic::Elem) -> vpdt_logic::Elem,
) -> bool {
    vpdt_tx::traits::commutes_with_permutation(&SeparatorTransaction, db, pi)
        .expect("separator is total")
}

/// The identity `Omega` alias so examples don't need `vpdt-eval` directly.
pub fn pure_omega() -> Omega {
    Omega::empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::parse_formula;

    #[test]
    fn separator_on_cc_graphs_builds_linear_orders() {
        let db = families::cc_graph(4, &[3]);
        let out = SeparatorTransaction.apply(&db).expect("applies");
        assert_eq!(out, families::linear_order(4));
    }

    #[test]
    fn separator_on_non_cc_builds_diagonal() {
        let db = families::gnm(2, 2);
        let out = SeparatorTransaction.apply(&db).expect("applies");
        assert_eq!(out, families::diagonal(db.domain().iter().map(|e| e.0)));
    }

    #[test]
    fn separator_is_generic() {
        for db in [families::cc_graph(3, &[4]), families::cycle(5)] {
            assert!(separator_is_generic_on(&db, &|e| vpdt_logic::Elem(
                e.0 * 3 + 11
            )));
        }
    }

    /// The fundamental check: D ⊨ wpc(T,α) ⟺ T(D) ⊨ α, over a broad family
    /// of inputs and sentences.
    #[test]
    fn wpc_is_a_weakest_precondition() {
        let alphas = [
            parse_formula("exists x. E(x, x)").expect("parses"),
            parse_formula("forall x y. E(x, y)").expect("parses"),
            parse_formula("forall x y. E(x, y) -> x != y").expect("parses"),
            parse_formula("exists x y. x != y & E(x, y)").expect("parses"),
            library::semi_complete(),
            library::exactly_isolated(2),
            library::at_least_nodes(3),
        ];
        let inputs = [
            Database::graph([]),
            families::chain(1),
            families::chain(2),
            families::chain(3),
            families::chain(6),
            families::cc_graph(2, &[3]),
            families::cc_graph(5, &[3, 4]),
            families::cycle(4),
            families::gnm(2, 3),
            Database::graph([(0, 0)]),
            families::empty_graph(3),
            families::complete_loopless(3),
        ];
        for alpha in &alphas {
            let w = wpc_theorem7(alpha);
            assert!(w.is_pure_fo(), "wpc stays pure FO");
            for db in &inputs {
                let lhs = holds_pure(db, &w).expect("wpc evaluates");
                let out = SeparatorTransaction.apply(db).expect("applies");
                let rhs = holds_pure(&out, alpha).expect("alpha evaluates");
                assert_eq!(lhs, rhs, "α = {alpha} on {db:?}");
            }
        }
    }

    #[test]
    fn rank_blowup_is_exponential() {
        // α with rank 2: wpc contains p_{2^2−1} = p_3 of rank 4 ≥ 2^2.
        let alpha = parse_formula("exists x y. x != y & E(x, y)").expect("parses");
        let (r, w) = wpc_rank_blowup(&alpha);
        assert_eq!(r, 2);
        assert!(w >= 4, "wpc rank {w} < 2^{r}");
    }

    #[test]
    #[should_panic(expected = "pure FO")]
    fn constants_are_rejected_per_proposition_5() {
        let alpha = parse_formula("E(1, 2)").expect("parses");
        let _ = wpc_theorem7(&alpha);
    }

    #[test]
    fn datalog_version_agrees_with_native() {
        let native = SeparatorTransaction;
        let datalog = theorem7_datalog(Strategy::SemiNaive);
        for db in [
            families::chain(4),
            families::cc_graph(3, &[3]),
            families::cc_graph(1, &[2, 2]),
            families::cycle(3),
            families::gnm(2, 2),
            families::two_cycles(2, 3),
            Database::graph([(0, 0)]),
            Database::graph([]),
        ] {
            assert_eq!(
                native.apply(&db).expect("native"),
                datalog.apply(&db).expect("datalog"),
                "on {db:?}"
            );
        }
    }
}
