//! Safe transactions: the integrity-maintenance transforms of Section 1.
//!
//! Given a transaction `T` and a constraint `α`, the paper's programme
//! replaces `T` by
//!
//! ```text
//! if wpc(T, α) then T else abort
//! ```
//!
//! which *preserves `α` by construction* and never needs a rollback
//! ([`Guarded`]). The baseline it displaces is deferred checking: run `T`,
//! test `α` on the result, and roll the transaction back on violation
//! ([`RuntimeChecked`]). Both are [`Transaction`]s that accept exactly the
//! same inputs and produce identical outputs — a fact the tests exploit as
//! an end-to-end check of the wpc algorithms — but their *costs* differ,
//! which is what the `guard_vs_rollback` bench measures.

use crate::prerelations::{compile_program, CompileError, Prerelation};
use crate::simplify::{deletion_preserves, delta_for_insert_terms};
use crate::wpc::{wpc_sentence, WpcError};
use std::collections::BTreeSet;
use vpdt_eval::{holds, Omega};
use vpdt_logic::domain::{is_domain_independent, is_domain_independent_parametric};
use vpdt_logic::subst::instantiate_params;
use vpdt_logic::{Elem, Formula, Schema, Term};
use vpdt_structure::Database;
use vpdt_tx::program::Program;
use vpdt_tx::template::Template;
use vpdt_tx::traits::{Transaction, TxError};

/// `if pre then T else abort` — the statically verified transaction.
#[derive(Clone, Debug)]
pub struct Guarded<T> {
    inner: T,
    precondition: Formula,
    omega: Omega,
}

impl<T: Transaction> Guarded<T> {
    /// Wraps `inner` behind a precondition (typically `wpc(inner, α)`).
    pub fn new(inner: T, precondition: Formula, omega: Omega) -> Self {
        assert!(
            precondition.is_sentence(),
            "a precondition must be a sentence"
        );
        Guarded {
            inner,
            precondition,
            omega,
        }
    }

    /// The guard sentence.
    pub fn precondition(&self) -> &Formula {
        &self.precondition
    }
}

impl<T: Transaction> Transaction for Guarded<T> {
    fn name(&self) -> String {
        format!("guarded({})", self.inner.name())
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        if holds(db, &self.omega, &self.precondition)? {
            self.inner.apply(db)
        } else {
            Err(TxError::Aborted(format!(
                "precondition of {} failed",
                self.inner.name()
            )))
        }
    }
}

/// Run `T`, verify `α` on the result, roll back on violation — the
/// deferred-checking baseline (with its "potentially expensive roll-back").
#[derive(Clone, Debug)]
pub struct RuntimeChecked<T> {
    inner: T,
    constraint: Formula,
    omega: Omega,
}

impl<T: Transaction> RuntimeChecked<T> {
    /// Wraps `inner` with a post-hoc constraint check.
    pub fn new(inner: T, constraint: Formula, omega: Omega) -> Self {
        assert!(constraint.is_sentence(), "a constraint must be a sentence");
        RuntimeChecked {
            inner,
            constraint,
            omega,
        }
    }

    /// The constraint sentence.
    pub fn constraint(&self) -> &Formula {
        &self.constraint
    }
}

impl<T: Transaction> Transaction for RuntimeChecked<T> {
    fn name(&self) -> String {
        format!("runtime-checked({})", self.inner.name())
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        // The snapshot is the rollback cost the wpc approach avoids: a
        // deferred checker must be able to restore the pre-state.
        let snapshot = db.clone();
        let out = self.inner.apply(db)?;
        if holds(&out, &self.omega, &self.constraint)? {
            Ok(out)
        } else {
            drop(snapshot); // rollback: discard the new state
            Err(TxError::Aborted(format!(
                "constraint violated after {}; rolled back",
                self.inner.name()
            )))
        }
    }
}

/// Errors from [`compile_guard`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardError {
    /// The program does not compile to a prerelation description.
    Compile(CompileError),
    /// The wpc translation failed (counting constructs, unknown relation).
    Wpc(WpcError),
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::Compile(e) => write!(f, "{e}"),
            GuardError::Wpc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GuardError {}

impl From<CompileError> for GuardError {
    fn from(e: CompileError) -> Self {
        GuardError::Compile(e)
    }
}

impl From<WpcError> for GuardError {
    fn from(e: WpcError) -> Self {
        GuardError::Wpc(e)
    }
}

/// A transaction compiled once into everything a server needs to run it
/// statically guarded: the prerelation description, the full `wpc(T, α)`
/// sentence, the invariant-reduced guard of Section 6, and the read/write
/// relation footprints used for conflict detection.
///
/// Produced by [`compile_guard`]; consumed by `vpdt-store`'s guard cache.
#[derive(Clone, Debug)]
pub struct GuardCompilation {
    /// The prerelation description of the transaction.
    pub pre: Prerelation,
    /// The full weakest precondition `wpc(T, α)` (Theorem 8): exact on
    /// every state.
    pub wpc: Formula,
    /// The invariant-reduced guard: the conjunction of `wpc(T, αᵢ)` over
    /// exactly those conjuncts `αᵢ` of `α` the transaction can disturb.
    /// Sound only on states already satisfying `α` (see [`compile_guard`]).
    pub reduced: Formula,
    /// The cheapest guard — the Δ of Section 6 where one is derivable
    /// (Nicolas-style insertion residues, anti-monotone deletions), the
    /// `wpc` conjunct otherwise. Equivalent to [`reduced`](Self::reduced)
    /// (and hence to [`wpc`](Self::wpc)) on states satisfying `α`; this is
    /// what a server should evaluate per transaction.
    pub fast: Formula,
    /// Relations whose old contents the guard or the program consult.
    pub reads: BTreeSet<String>,
    /// Relations the program may modify.
    pub writes: BTreeSet<String>,
    /// Whether guard and conditions are domain-independent, so evaluating
    /// them against a snapshot that differs only in *other* relations (and
    /// hence in isolated domain elements) is exact. For a template
    /// compilation the analysis runs parametrically
    /// ([`is_domain_independent_parametric`]), so the verdict covers every
    /// instantiation of the placeholders.
    pub domain_independent: bool,
}

impl GuardCompilation {
    /// Instantiates the cheapest guard ([`fast`](Self::fast)) with a
    /// prepared statement's bindings — the per-transaction step of a
    /// template compilation. One structural walk; no recompilation.
    pub fn instantiate_fast(&self, bindings: &[Elem]) -> Formula {
        instantiate_params(&self.fast, bindings)
    }

    /// Instantiates the full wpc sentence with bindings (audits and tests).
    pub fn instantiate_wpc(&self, bindings: &[Elem]) -> Formula {
        instantiate_params(&self.wpc, bindings)
    }

    /// Instantiates the invariant-reduced guard with bindings.
    pub fn instantiate_reduced(&self, bindings: &[Elem]) -> Formula {
        instantiate_params(&self.reduced, bindings)
    }
}

/// Compiles `program` once into a [`GuardCompilation`] for the constraint
/// `α` — the static-verification analogue of preparing a statement.
///
/// The reduced guard implements the invariant-aware simplification of
/// Section 6 (after Nicolas and Qian): on a state already satisfying `α`,
/// a conjunct `αᵢ` whose relations the transaction does not write — and
/// which is domain-independent, so the transaction's incidental domain
/// changes cannot flip it — is preserved automatically, and its `wpc`
/// conjunct can be dropped from the guard. Conjuncts that fail either test
/// are kept. Consequently:
///
/// * `D ⊨ wpc  ⟺  T(D) ⊨ α` (exact, any `D`), and
/// * if `D ⊨ α` then `D ⊨ reduced ⟺ T(D) ⊨ α`.
pub fn compile_guard(
    label: impl Into<String>,
    program: &Program,
    alpha: &Formula,
    schema: &Schema,
    omega: &Omega,
) -> Result<GuardCompilation, GuardError> {
    assert!(alpha.is_sentence(), "a constraint must be a sentence");
    let pre = compile_program(label, program, schema, omega)?;

    let writes = program.touched_relations();
    let single = as_single_update(program);
    let mut full = Vec::new();
    let mut kept = Vec::new();
    let mut fast_parts = Vec::new();
    let mut reads: BTreeSet<String> = program.read_relations();
    let mut all_conjuncts_independent = true;
    for conjunct in alpha.conjuncts() {
        let independent = is_domain_independent(conjunct);
        all_conjuncts_independent &= independent;
        if independent && conjunct.relations_used().is_disjoint(&writes) {
            // Untouched and domain-independent: `T(D)` agrees with `D` on
            // the conjunct's relations, and the conjunct's truth ignores
            // the ambient domain, so `wpc(T, αᵢ) ≡ αᵢ` on *every* state —
            // the conjunct itself is the exact translation. Skipping the
            // `WPC[γ]` pass here is load-bearing: for multi-statement
            // programs its output grows steeply, and a wide constraint
            // would pay that cost once per conjunct it cannot even
            // disturb.
            full.push(conjunct.clone());
            continue;
        }
        let w = wpc_sentence(&pre, conjunct)?;
        fast_parts.push(fast_guard_for(conjunct, &w, single.as_ref(), independent));
        kept.push(w.clone());
        // The conjunct's own relations — not its wpc's. The wpc
        // mentions every relation through Γ-relativization of its
        // quantifiers, but by exactness its verdict only depends on
        // the conjunct's relations in the transaction's output.
        reads.extend(conjunct.relations_used());
        full.push(w);
    }
    // wpc distributes over conjunction (both sides say "α's conjuncts all
    // hold in T(D)"), so the exact full guard is the conjunction of the
    // per-conjunct translations.
    let wpc = Formula::and(full);
    let reduced = Formula::and(kept);
    let fast = Formula::and(fast_parts);
    reads.extend(writes.iter().cloned());

    // The guard `wpc(T, αᵢ)` is *exact* — `D ⊨ wpc(T, αᵢ) ⟺ T(D) ⊨ αᵢ` —
    // so evaluating it against a snapshot that agrees on `reads` is decided
    // by `αᵢ` on the transaction's output, which agrees across such
    // snapshots exactly when every αᵢ is domain-independent and the
    // program itself never consults the domain. The check therefore runs on
    // the constraint's conjuncts, never on the (Γ-relativized) wpc output.
    // Program conditions may contain prepared-statement placeholders (the
    // constraint α never does), so their analysis runs parametrically: a
    // `true` verdict covers every binding of the template.
    let domain_independent = all_conjuncts_independent
        && !program.enumerates_domain()
        && program
            .condition_formulas()
            .iter()
            .all(|c| is_domain_independent_parametric(c));

    Ok(GuardCompilation {
        pre,
        wpc,
        reduced,
        fast,
        reads,
        writes,
        domain_independent,
    })
}

/// Compiles a statement *template* once for all its instantiations: the
/// prerelations, the wpc, the reduced guard, and the Δ are derived over the
/// shape's placeholder terms, and a concrete transaction's guard is obtained
/// by [`GuardCompilation::instantiate_fast`] — a substitution whose cost is
/// the size of the (small) guard, independent of the domain.
///
/// **Why the one compilation covers every binding.** The pipeline treats
/// placeholders as opaque ground terms end to end: prerelation construction
/// and the `WPC[γ]` substitution never inspect a ground term's identity, the
/// structural simplifier folds `?i = ?i` to true (same binding index, always
/// equal) but never equates or distinguishes *different* placeholders, the
/// Δ derivation refuses when a unification decision would depend on the
/// binding ([`delta_for_insert_terms`]), and the domain-independence check
/// runs parametrically. So for every binding `b`:
/// `instantiate(compile(shape), b) ≡ compile(instantiate(shape, b))` — the
/// two sides may differ syntactically (ground compilation folds constant
/// equalities the template must keep symbolic) but decide identically on
/// every database, which is what the prepared-statement property tests
/// check end to end.
pub fn compile_guard_template(
    label: impl Into<String>,
    template: &Template,
    alpha: &Formula,
    schema: &Schema,
    omega: &Omega,
) -> Result<GuardCompilation, GuardError> {
    compile_guard(label, template.shape(), alpha, schema, omega)
}

/// A program that is a single tuple-level update, for which the Δ
/// machinery of [`crate::simplify`] applies directly.
enum SingleUpdate<'a> {
    /// One insert of constants and/or placeholders (the two symbolic ground
    /// forms [`delta_for_insert_terms`] can unify statically).
    Insert { rel: &'a str, tuple: Vec<Term> },
    /// One conditional delete (pure shrinkage of `rel`).
    Delete { rel: &'a str },
}

fn as_single_update(p: &Program) -> Option<SingleUpdate<'_>> {
    match p {
        Program::Insert { rel, tuple } => tuple
            .iter()
            .all(|t| matches!(t, Term::Const(_)) || t.as_param().is_some())
            .then(|| SingleUpdate::Insert {
                rel,
                tuple: tuple.clone(),
            }),
        Program::DeleteWhere { rel, .. } => Some(SingleUpdate::Delete { rel }),
        Program::Seq(ps) if ps.len() == 1 => as_single_update(&ps[0]),
        _ => None,
    }
}

/// The cheapest sound guard for one kept conjunct: a Section 6 Δ when the
/// program is a single update of a supported shape, the conjunct's wpc
/// otherwise. Both options satisfy `α → (guard ↔ wpc(T, conjunct))`.
///
/// The Δ shortcuts are gated on the conjunct's domain independence: the
/// residue argument accounts for the inserted/deleted *tuples*, not for
/// the domain growth/shrinkage that comes with them, so for a
/// domain-dependent conjunct (e.g. `∀x. F(x, x)`, broken by any insert
/// that enlarges the domain) only the exact wpc is sound.
fn fast_guard_for(
    conjunct: &Formula,
    wpc: &Formula,
    single: Option<&SingleUpdate<'_>>,
    domain_independent: bool,
) -> Formula {
    if !domain_independent {
        return wpc.clone();
    }
    match single {
        Some(SingleUpdate::Insert { rel, tuple }) => {
            delta_for_insert_terms(conjunct, rel, tuple).unwrap_or_else(|_| wpc.clone())
        }
        Some(SingleUpdate::Delete { rel }) => {
            if deletion_preserves(conjunct, rel) {
                Formula::True
            } else {
                wpc.clone()
            }
        }
        None => wpc.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prerelations::compile_program;
    use crate::wpc::wpc_sentence;
    use vpdt_logic::parse_formula;
    use vpdt_structure::families;
    use vpdt_tx::program::Program;

    /// Constraint: no loops. Transaction: insert (3,3) — always violates —
    /// or insert (3,4) — violates only if already violated, i.e. never on
    /// consistent states.
    #[test]
    fn guarded_and_runtime_checked_agree() {
        let alpha = parse_formula("forall x y. E(x, y) -> x != y").expect("parses");
        let schema = vpdt_logic::Schema::graph();
        let omega = Omega::empty();
        for (tuple, expect_ok_on_consistent) in [([3u64, 3], false), ([3, 4], true)] {
            let p = Program::insert_consts("E", tuple);
            let pre = compile_program("ins", &p, &schema, &omega).expect("compiles");
            let w = wpc_sentence(&pre, &alpha).expect("translates");
            let guarded = Guarded::new(pre.clone(), w, omega.clone());
            let checked = RuntimeChecked::new(pre.clone(), alpha.clone(), omega.clone());
            for db in [
                families::chain(3),
                families::complete_loopless(3),
                vpdt_structure::Database::graph([]),
            ] {
                let a = guarded.apply(&db);
                let b = checked.apply(&db);
                match (&a, &b) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y),
                    (Err(TxError::Aborted(_)), Err(TxError::Aborted(_))) => {}
                    other => panic!("outcomes diverge on {db:?}: {other:?}"),
                }
                assert_eq!(a.is_ok(), expect_ok_on_consistent, "on {db:?}");
            }
        }
    }

    /// The guarded transaction preserves the constraint by construction.
    #[test]
    fn guarded_preserves_constraint() {
        let alpha = parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").expect("parses");
        let schema = vpdt_logic::Schema::graph();
        let omega = Omega::empty();
        let p = Program::insert_consts("E", [0, 5]);
        let pre = compile_program("ins", &p, &schema, &omega).expect("compiles");
        let w = wpc_sentence(&pre, &alpha).expect("translates");
        let guarded = Guarded::new(pre, w, omega.clone());
        for db in [
            families::chain(4), // satisfies the FD; insert breaks it at 0
            vpdt_structure::Database::graph([(9, 8)]), // insert keeps it
        ] {
            assert!(vpdt_eval::holds(&db, &omega, &alpha).expect("evaluates"));
            if let Ok(out) = guarded.apply(&db) {
                assert!(
                    vpdt_eval::holds(&out, &omega, &alpha).expect("evaluates"),
                    "guarded output violates the constraint on {db:?}"
                );
            }
        }
    }

    #[test]
    fn abort_reports_the_inner_name() {
        let alpha = Formula::False;
        let id =
            crate::prerelations::Prerelation::identity(vpdt_logic::Schema::graph(), Omega::empty());
        let guarded = Guarded::new(id, alpha, Omega::empty());
        match guarded.apply(&families::chain(2)) {
            Err(TxError::Aborted(msg)) => assert!(msg.contains("identity")),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    /// The reduced guard drops exactly the conjuncts over relations the
    /// transaction does not write, and agrees with the full wpc on
    /// consistent states.
    #[test]
    fn reduced_guard_prunes_untouched_conjuncts() {
        let schema = vpdt_logic::Schema::new([("E", 2), ("F", 2)]);
        let omega = Omega::empty();
        // fd on E ∧ fd on F; the transaction writes only E
        let alpha = parse_formula(
            "(forall x y z. E(x, y) & E(x, z) -> y = z) \
             & (forall x y z. F(x, y) & F(x, z) -> y = z)",
        )
        .expect("parses");
        let g = compile_guard(
            "ins",
            &Program::insert_consts("E", [0, 3]),
            &alpha,
            &schema,
            &omega,
        )
        .expect("compiles");
        assert!(g.domain_independent);
        // the F conjunct was pruned: the reduced guard is strictly smaller
        assert!(g.reduced.size() < g.wpc.size());
        assert_eq!(g.writes.iter().collect::<Vec<_>>(), [&"E".to_string()]);
        assert!(g.reads.contains("E") && !g.reads.contains("F"));

        // on consistent states the reduced guard decides exactly like wpc
        for edges in [vec![], vec![(0, 1)], vec![(9, 8), (0, 3)]] {
            let mut db = Database::empty(schema.clone());
            for (a, b) in edges {
                db.insert("E", vec![vpdt_logic::Elem(a), vpdt_logic::Elem(b)]);
            }
            db.insert("F", vec![vpdt_logic::Elem(4), vpdt_logic::Elem(5)]);
            assert!(
                holds(&db, &omega, &alpha).expect("evaluates"),
                "state consistent"
            );
            assert_eq!(
                holds(&db, &omega, &g.reduced).expect("evaluates"),
                holds(&db, &omega, &g.wpc).expect("evaluates"),
                "on {db:?}"
            );
        }
    }

    /// A constraint whose conjunct is not domain-independent is never
    /// pruned, even when its relations are untouched.
    #[test]
    fn non_domain_independent_conjuncts_are_kept() {
        let schema = vpdt_logic::Schema::new([("E", 2), ("F", 2)]);
        let alpha = parse_formula(
            "(forall x y z. E(x, y) & E(x, z) -> y = z) & (forall x. exists y. F(x, y))",
        )
        .expect("parses");
        let g = compile_guard(
            "ins",
            &Program::insert_consts("E", [0, 3]),
            &alpha,
            &schema,
            &Omega::empty(),
        )
        .expect("compiles");
        assert!(g.reduced.relations_used().contains("F"));
        assert!(g.reads.contains("F"));
        assert!(!g.domain_independent);
    }

    /// The fast guard (Δ where derivable) decides exactly like the reduced
    /// and full wpc guards on consistent states, and is far smaller.
    #[test]
    fn fast_guard_agrees_and_is_small() {
        let schema = vpdt_logic::Schema::new([("E", 2), ("F", 2)]);
        let omega = Omega::empty();
        let alpha = parse_formula(
            "(forall x y z. E(x, y) & E(x, z) -> y = z) \
             & (forall x y z. F(x, y) & F(x, z) -> y = z)",
        )
        .expect("parses");
        for program in [
            Program::insert_consts("E", [0, 3]),
            Program::insert_consts("E", [2, 2]),
            Program::delete_consts("E", [0, 1]),
        ] {
            let g = compile_guard("u", &program, &alpha, &schema, &omega).expect("compiles");
            assert!(
                g.fast.size() <= g.reduced.size(),
                "fast ({}) should not exceed reduced ({}) for {program:?}",
                g.fast.size(),
                g.reduced.size()
            );
            for edges in [
                vec![],
                vec![(0u64, 1u64)],
                vec![(0, 3), (4, 4)],
                vec![(2, 9)],
            ] {
                let mut db = Database::empty(schema.clone());
                for (a, b) in edges {
                    db.insert("E", vec![vpdt_logic::Elem(a), vpdt_logic::Elem(b)]);
                }
                db.insert("F", vec![vpdt_logic::Elem(1), vpdt_logic::Elem(5)]);
                if !holds(&db, &omega, &alpha).expect("evaluates") {
                    continue;
                }
                let by_fast = holds(&db, &omega, &g.fast).expect("evaluates");
                let by_reduced = holds(&db, &omega, &g.reduced).expect("evaluates");
                let by_wpc = holds(&db, &omega, &g.wpc).expect("evaluates");
                assert_eq!(by_fast, by_reduced, "{program:?} on {db:?}");
                assert_eq!(by_reduced, by_wpc, "{program:?} on {db:?}");
            }
        }
    }

    /// The Δ shortcut must not fire for domain-dependent conjuncts: an
    /// E-insert enlarges the domain and can thereby break `∀x. F(x, x)`
    /// even though it never writes F, and can break `∀x. E(x, x)` without
    /// any unifiable occurrence. Both need the exact wpc.
    #[test]
    fn fast_guard_keeps_wpc_for_domain_dependent_conjuncts() {
        let omega = Omega::empty();
        // cross-relation: state {F(0,0)} satisfies α; inserting E(5,6)
        // adds 5 and 6 to the domain, so ∀x. F(x,x) must now fail
        let schema = vpdt_logic::Schema::new([("E", 2), ("F", 2)]);
        let alpha =
            parse_formula("(forall x y z. E(x, y) & E(x, z) -> y = z) & (forall x. F(x, x))")
                .expect("parses");
        let g = compile_guard(
            "ins",
            &Program::insert_consts("E", [5, 6]),
            &alpha,
            &schema,
            &omega,
        )
        .expect("compiles");
        assert!(!g.domain_independent);
        let mut db = Database::empty(schema);
        db.insert("F", vec![vpdt_logic::Elem(0), vpdt_logic::Elem(0)]);
        assert!(holds(&db, &omega, &alpha).expect("evaluates"));
        assert_eq!(
            holds(&db, &omega, &g.fast).expect("evaluates"),
            holds(&db, &omega, &g.wpc).expect("evaluates"),
            "fast guard must agree with wpc"
        );
        assert!(!holds(&db, &omega, &g.fast).expect("evaluates"));

        // same-relation: ∀x. E(x,x) on the empty database; inserting
        // E(5,6) violates it at 5 and 6 with no unifiable occurrence
        let schema = vpdt_logic::Schema::graph();
        let alpha = parse_formula("forall x. E(x, x)").expect("parses");
        let g = compile_guard(
            "ins",
            &Program::insert_consts("E", [5, 6]),
            &alpha,
            &schema,
            &omega,
        )
        .expect("compiles");
        let empty = Database::graph([]);
        assert!(holds(&empty, &omega, &alpha).expect("evaluates"));
        assert!(!holds(&empty, &omega, &g.fast).expect("evaluates"));
    }

    /// Compile-once-per-shape: the template compilation, instantiated with
    /// a binding, decides exactly like compiling the ground program — on
    /// fast, reduced, and full-wpc guards alike — and preserves the
    /// footprints and the domain-independence verdict.
    #[test]
    fn template_compilation_agrees_with_ground_compilation() {
        let schema = vpdt_logic::Schema::new([("E", 2), ("F", 2)]);
        let omega = Omega::empty();
        let alpha = parse_formula(
            "(forall x y z. E(x, y) & E(x, z) -> y = z) \
             & (forall x y z. F(x, y) & F(x, z) -> y = z)",
        )
        .expect("parses");
        for ground in [
            Program::insert_consts("E", [0, 3]),
            Program::insert_consts("E", [2, 2]),
            Program::delete_consts("F", [1, 4]),
        ] {
            let (template, bindings) =
                vpdt_tx::template::canonicalize(&ground).expect("canonicalizes");
            let shape = compile_guard_template("tpl", &template, &alpha, &schema, &omega)
                .expect("template compiles");
            let direct = compile_guard("gnd", &ground, &alpha, &schema, &omega).expect("compiles");
            assert_eq!(shape.reads, direct.reads, "{ground:?}");
            assert_eq!(shape.writes, direct.writes, "{ground:?}");
            assert_eq!(
                shape.domain_independent, direct.domain_independent,
                "{ground:?}"
            );
            for edges in [
                vec![],
                vec![(0u64, 1u64)],
                vec![(0, 3), (4, 4)],
                vec![(2, 9)],
            ] {
                let mut db = Database::empty(schema.clone());
                for (a, b) in edges {
                    db.insert("E", vec![Elem(a), Elem(b)]);
                }
                db.insert("F", vec![Elem(1), Elem(4)]);
                for (inst, ground_guard) in [
                    (shape.instantiate_fast(&bindings), &direct.fast),
                    (shape.instantiate_reduced(&bindings), &direct.reduced),
                    (shape.instantiate_wpc(&bindings), &direct.wpc),
                ] {
                    assert_eq!(
                        holds(&db, &omega, &inst).expect("evaluates"),
                        holds(&db, &omega, ground_guard).expect("evaluates"),
                        "{ground:?} on {db:?}\n  instantiated: {inst}\n  ground: {ground_guard}"
                    );
                }
            }
        }
    }

    #[test]
    fn guard_compilations_cross_threads() {
        fn assert_bounds<T: Send + Sync + Clone + 'static>() {}
        assert_bounds::<GuardCompilation>();
        assert_bounds::<Guarded<Prerelation>>();
        assert_bounds::<RuntimeChecked<Prerelation>>();
    }
}
