//! Safe transactions: the integrity-maintenance transforms of Section 1.
//!
//! Given a transaction `T` and a constraint `α`, the paper's programme
//! replaces `T` by
//!
//! ```text
//! if wpc(T, α) then T else abort
//! ```
//!
//! which *preserves `α` by construction* and never needs a rollback
//! ([`Guarded`]). The baseline it displaces is deferred checking: run `T`,
//! test `α` on the result, and roll the transaction back on violation
//! ([`RuntimeChecked`]). Both are [`Transaction`]s that accept exactly the
//! same inputs and produce identical outputs — a fact the tests exploit as
//! an end-to-end check of the wpc algorithms — but their *costs* differ,
//! which is what the `guard_vs_rollback` bench measures.

use vpdt_eval::{holds, Omega};
use vpdt_logic::Formula;
use vpdt_structure::Database;
use vpdt_tx::traits::{Transaction, TxError};

/// `if pre then T else abort` — the statically verified transaction.
#[derive(Clone, Debug)]
pub struct Guarded<T> {
    inner: T,
    precondition: Formula,
    omega: Omega,
}

impl<T: Transaction> Guarded<T> {
    /// Wraps `inner` behind a precondition (typically `wpc(inner, α)`).
    pub fn new(inner: T, precondition: Formula, omega: Omega) -> Self {
        assert!(
            precondition.is_sentence(),
            "a precondition must be a sentence"
        );
        Guarded { inner, precondition, omega }
    }

    /// The guard sentence.
    pub fn precondition(&self) -> &Formula {
        &self.precondition
    }
}

impl<T: Transaction> Transaction for Guarded<T> {
    fn name(&self) -> String {
        format!("guarded({})", self.inner.name())
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        if holds(db, &self.omega, &self.precondition)? {
            self.inner.apply(db)
        } else {
            Err(TxError::Aborted(format!(
                "precondition of {} failed",
                self.inner.name()
            )))
        }
    }
}

/// Run `T`, verify `α` on the result, roll back on violation — the
/// deferred-checking baseline (with its "potentially expensive roll-back").
#[derive(Clone, Debug)]
pub struct RuntimeChecked<T> {
    inner: T,
    constraint: Formula,
    omega: Omega,
}

impl<T: Transaction> RuntimeChecked<T> {
    /// Wraps `inner` with a post-hoc constraint check.
    pub fn new(inner: T, constraint: Formula, omega: Omega) -> Self {
        assert!(constraint.is_sentence(), "a constraint must be a sentence");
        RuntimeChecked { inner, constraint, omega }
    }

    /// The constraint sentence.
    pub fn constraint(&self) -> &Formula {
        &self.constraint
    }
}

impl<T: Transaction> Transaction for RuntimeChecked<T> {
    fn name(&self) -> String {
        format!("runtime-checked({})", self.inner.name())
    }

    fn apply(&self, db: &Database) -> Result<Database, TxError> {
        // The snapshot is the rollback cost the wpc approach avoids: a
        // deferred checker must be able to restore the pre-state.
        let snapshot = db.clone();
        let out = self.inner.apply(db)?;
        if holds(&out, &self.omega, &self.constraint)? {
            Ok(out)
        } else {
            drop(snapshot); // rollback: discard the new state
            Err(TxError::Aborted(format!(
                "constraint violated after {}; rolled back",
                self.inner.name()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prerelations::compile_program;
    use crate::wpc::wpc_sentence;
    use vpdt_logic::parse_formula;
    use vpdt_structure::families;
    use vpdt_tx::program::Program;

    /// Constraint: no loops. Transaction: insert (3,3) — always violates —
    /// or insert (3,4) — violates only if already violated, i.e. never on
    /// consistent states.
    #[test]
    fn guarded_and_runtime_checked_agree() {
        let alpha = parse_formula("forall x y. E(x, y) -> x != y").expect("parses");
        let schema = vpdt_logic::Schema::graph();
        let omega = Omega::empty();
        for (tuple, expect_ok_on_consistent) in [([3u64, 3], false), ([3, 4], true)] {
            let p = Program::insert_consts("E", tuple);
            let pre = compile_program("ins", &p, &schema, &omega).expect("compiles");
            let w = wpc_sentence(&pre, &alpha).expect("translates");
            let guarded = Guarded::new(pre.clone(), w, omega.clone());
            let checked = RuntimeChecked::new(pre.clone(), alpha.clone(), omega.clone());
            for db in [
                families::chain(3),
                families::complete_loopless(3),
                vpdt_structure::Database::graph([]),
            ] {
                let a = guarded.apply(&db);
                let b = checked.apply(&db);
                match (&a, &b) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y),
                    (Err(TxError::Aborted(_)), Err(TxError::Aborted(_))) => {}
                    other => panic!("outcomes diverge on {db:?}: {other:?}"),
                }
                assert_eq!(a.is_ok(), expect_ok_on_consistent, "on {db:?}");
            }
        }
    }

    /// The guarded transaction preserves the constraint by construction.
    #[test]
    fn guarded_preserves_constraint() {
        let alpha = parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").expect("parses");
        let schema = vpdt_logic::Schema::graph();
        let omega = Omega::empty();
        let p = Program::insert_consts("E", [0, 5]);
        let pre = compile_program("ins", &p, &schema, &omega).expect("compiles");
        let w = wpc_sentence(&pre, &alpha).expect("translates");
        let guarded = Guarded::new(pre, w, omega.clone());
        for db in [
            families::chain(4),               // satisfies the FD; insert breaks it at 0
            vpdt_structure::Database::graph([(9, 8)]), // insert keeps it
        ] {
            assert!(vpdt_eval::holds(&db, &omega, &alpha).expect("evaluates"));
            if let Ok(out) = guarded.apply(&db) {
                assert!(
                    vpdt_eval::holds(&out, &omega, &alpha).expect("evaluates"),
                    "guarded output violates the constraint on {db:?}"
                );
            }
        }
    }

    #[test]
    fn abort_reports_the_inner_name() {
        let alpha = Formula::False;
        let id = crate::prerelations::Prerelation::identity(
            vpdt_logic::Schema::graph(),
            Omega::empty(),
        );
        let guarded = Guarded::new(id, alpha, Omega::empty());
        match guarded.apply(&families::chain(2)) {
            Err(TxError::Aborted(msg)) => assert!(msg.contains("identity")),
            other => panic!("expected abort, got {other:?}"),
        }
    }
}
