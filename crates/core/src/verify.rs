//! Bounded verification of the undecidable problems.
//!
//! `Preserve(TL, L)` — "does `T` preserve `α` on every database?" — is
//! undecidable even for SPJ transactions and FO constraints (Fact A /
//! Proposition 1). What *is* possible:
//!
//! * **bounded refutation** ([`find_preservation_counterexample`]):
//!   exhaustively search small databases for a consistent state that `T`
//!   drives inconsistent;
//! * **wpc-candidate checking** ([`check_wpc_candidate`],
//!   [`refute_wpc_candidates`]): test whether a proposed sentence β is a
//!   weakest precondition on a family of databases — used by experiment
//!   E14 to refute all small FOc candidates for the Theorem 7 transaction,
//!   grounding Proposition 5.

use vpdt_eval::{holds, Omega};
use vpdt_logic::Formula;
use vpdt_structure::enumerate::GraphEnumerator;
use vpdt_structure::Database;
use vpdt_tx::traits::{Transaction, TxError};

/// The verdict of a bounded preservation search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PreserveVerdict {
    /// A consistent database that `T` maps to an inconsistent one.
    CounterexampleFound(Box<Database>),
    /// No counterexample within the budget — *not* a proof of preservation
    /// (the problem is undecidable), only bounded evidence.
    NoCounterexampleWithin { checked: usize },
}

/// Searches the graph enumeration (all graphs by size) for a preservation
/// counterexample: `D ⊨ α` but `T(D) ⊭ α`. Aborting transactions trivially
/// preserve (no output state), so `Err(Aborted)` counts as preserving.
pub fn find_preservation_counterexample(
    tx: &dyn Transaction,
    alpha: &Formula,
    omega: &Omega,
    budget: usize,
) -> Result<PreserveVerdict, TxError> {
    let mut checked = 0;
    for db in GraphEnumerator::new().take(budget) {
        checked += 1;
        if !holds(&db, omega, alpha)? {
            continue;
        }
        match tx.apply(&db) {
            Ok(out) => {
                if !holds(&out, omega, alpha)? {
                    return Ok(PreserveVerdict::CounterexampleFound(Box::new(db)));
                }
            }
            Err(TxError::Aborted(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(PreserveVerdict::NoCounterexampleWithin { checked })
}

/// Tests whether β behaves as `wpc(T, α)` on the given databases; returns
/// the first database where `D ⊨ β` and `T(D) ⊨ α` disagree.
pub fn check_wpc_candidate<'a>(
    tx: &dyn Transaction,
    alpha: &Formula,
    beta: &Formula,
    omega: &Omega,
    dbs: impl IntoIterator<Item = &'a Database>,
) -> Result<Option<Database>, TxError> {
    for db in dbs {
        let lhs = holds(db, omega, beta)?;
        let rhs = match tx.apply(db) {
            Ok(out) => holds(&out, omega, alpha)?,
            Err(TxError::Aborted(_)) => {
                // an aborted transaction has no output state; a candidate
                // precondition must be false there to be meaningful
                false
            }
            Err(e) => return Err(e),
        };
        if lhs != rhs {
            return Ok(Some(db.clone()));
        }
    }
    Ok(None)
}

/// Filters a stream of candidate sentences, keeping those that survive all
/// the test databases (i.e. that *could* be weakest preconditions as far
/// as the tests can tell). Used to refute expressibility: if **no**
/// candidate survives, none of them is a wpc.
pub fn refute_wpc_candidates(
    tx: &dyn Transaction,
    alpha: &Formula,
    candidates: impl IntoIterator<Item = Formula>,
    omega: &Omega,
    dbs: &[Database],
) -> Result<Vec<Formula>, TxError> {
    let mut survivors = Vec::new();
    for beta in candidates {
        if !beta.is_sentence() {
            continue;
        }
        if check_wpc_candidate(tx, alpha, &beta, omega, dbs)?.is_none() {
            survivors.push(beta);
        }
    }
    Ok(survivors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prerelations::compile_program;
    use crate::wpc::wpc_sentence;
    use vpdt_logic::parse_formula;
    use vpdt_structure::families;
    use vpdt_tx::program::Program;

    #[test]
    fn insert_violating_fd_is_refuted_quickly() {
        let alpha = parse_formula("forall x y z. E(x, y) & E(x, z) -> y = z").expect("parses");
        let p = Program::insert_consts("E", [0, 9]);
        let pre = compile_program("ins", &p, &vpdt_logic::Schema::graph(), &Omega::empty())
            .expect("compiles");
        let verdict = find_preservation_counterexample(&pre, &alpha, &Omega::empty(), 2000)
            .expect("search runs");
        match verdict {
            PreserveVerdict::CounterexampleFound(db) => {
                // the found database satisfies the FD but gains a second
                // 0-successor after the insert
                assert!(holds(&db, &Omega::empty(), &alpha).expect("evaluates"));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn harmless_insert_has_no_small_counterexample() {
        // inserting a loop cannot violate "no edge between distinct nodes
        // in both directions simultaneously"… use a constraint the insert
        // respects: "every edge out of 7 ends at 7".
        let alpha = parse_formula("forall y. E(7, y) -> y = 7").expect("parses");
        let p = Program::insert_consts("E", [7, 7]);
        let pre = compile_program("ins", &p, &vpdt_logic::Schema::graph(), &Omega::empty())
            .expect("compiles");
        let verdict = find_preservation_counterexample(&pre, &alpha, &Omega::empty(), 800)
            .expect("search runs");
        assert!(matches!(
            verdict,
            PreserveVerdict::NoCounterexampleWithin { .. }
        ));
    }

    #[test]
    fn true_wpc_survives_candidate_checking() {
        let alpha = parse_formula("exists x. E(x, x)").expect("parses");
        let p = Program::insert_consts("E", [2, 3]);
        let pre = compile_program("ins", &p, &vpdt_logic::Schema::graph(), &Omega::empty())
            .expect("compiles");
        let w = wpc_sentence(&pre, &alpha).expect("translates");
        let dbs: Vec<Database> = GraphEnumerator::new().take(300).collect();
        assert_eq!(
            check_wpc_candidate(&pre, &alpha, &w, &Omega::empty(), &dbs).expect("check runs"),
            None
        );
        // and an obviously wrong candidate is refuted
        let wrong = Formula::True;
        assert!(
            check_wpc_candidate(&pre, &alpha, &wrong, &Omega::empty(), &dbs)
                .expect("check runs")
                .is_some()
        );
    }

    #[test]
    fn refutation_filters_candidates() {
        let alpha = parse_formula("exists x. E(x, x)").expect("parses");
        let pre =
            crate::prerelations::Prerelation::identity(vpdt_logic::Schema::graph(), Omega::empty());
        let dbs = vec![families::chain(2), families::diagonal([0])];
        let candidates = vec![
            Formula::True,
            Formula::False,
            alpha.clone(), // the correct one (identity transaction)
        ];
        let survivors =
            refute_wpc_candidates(&pre, &alpha, candidates, &Omega::empty(), &dbs).expect("runs");
        assert_eq!(survivors, vec![alpha]);
    }
}
