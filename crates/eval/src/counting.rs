//! `FOcount` helpers: building and checking counting-logic sentences.
//!
//! Section 2 gives two flagship examples of non-first-order properties
//! definable in FO+counting; both are constructed here and exercised by the
//! tests:
//!
//! * **odd cardinality** — "there is an odd number of elements satisfying
//!   φ": `∃i. ∃≥i x φ(x) ∧ bit(i,1) ∧ ∀j (∃≥j x φ(x) → j ≤ i)`;
//! * **equal cardinality** of two definable sets.

use vpdt_logic::{Formula, NumTerm, Var};

/// `exactCount(i, x, φ)`: exactly `i` elements satisfy φ — encoded as
/// "`∃≥i` and every `j` with `∃≥j` satisfies `j ≤ i`" on the numeric sort
/// (avoiding a successor symbol, which FOcount does not have natively).
pub fn exactly_count(i: NumTerm, x: impl Into<Var>, phi: Formula) -> Formula {
    let x = x.into();
    let j = Var::new("jc");
    Formula::and([
        Formula::count_ge(i.clone(), x.clone(), phi.clone()),
        Formula::NumForall(
            j.clone(),
            Box::new(Formula::implies(
                Formula::count_ge(NumTerm::Var(j.clone()), x, phi),
                Formula::NumLe(NumTerm::Var(j), i),
            )),
        ),
    ])
}

/// The paper's example: "there is an odd number of elements satisfying φ".
pub fn odd_count(x: impl Into<Var>, phi: Formula) -> Formula {
    let i = Var::new("ic");
    Formula::NumExists(
        i.clone(),
        Box::new(Formula::and([
            exactly_count(NumTerm::Var(i.clone()), x, phi),
            Formula::Bit(NumTerm::Var(i), NumTerm::One),
        ])),
    )
}

/// "The number of elements satisfying φ equals the number satisfying ψ" —
/// the *equal cardinality* example of Section 2.
pub fn equal_cardinality(
    x: impl Into<Var>,
    phi: Formula,
    y: impl Into<Var>,
    psi: Formula,
) -> Formula {
    let i = Var::new("ie");
    Formula::NumExists(
        i.clone(),
        Box::new(Formula::and([
            exactly_count(NumTerm::Var(i.clone()), x, phi),
            exactly_count(NumTerm::Var(i), y, psi),
        ])),
    )
}

/// "The domain has an even number of elements" — the property Theorem 3
/// shows FO(≺) *cannot* test on large linear orders, but FOcount can.
pub fn even_domain() -> Formula {
    Formula::not(odd_count("xe", Formula::True))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::holds_pure;
    use vpdt_structure::families;

    fn loops(x: &str) -> Formula {
        Formula::rel("E", [vpdt_logic::Term::var(x), vpdt_logic::Term::var(x)])
    }

    #[test]
    fn exact_count_of_loops() {
        // diagonal on 3 nodes within a larger domain
        let mut db = families::diagonal([0, 1, 2]);
        db.add_domain_elem(vpdt_logic::Elem(7));
        db.add_domain_elem(vpdt_logic::Elem(8));
        let three = exactly_count(NumTerm::Lit(3), "x", loops("x"));
        assert!(holds_pure(&db, &three).expect("evaluates"));
        let four = exactly_count(NumTerm::Lit(4), "x", loops("x"));
        assert!(!holds_pure(&db, &four).expect("evaluates"));
    }

    #[test]
    fn odd_and_even_cardinality() {
        for n in 1..7usize {
            let db = families::empty_graph(n);
            let odd = odd_count("x", Formula::True);
            assert_eq!(
                holds_pure(&db, &odd).expect("evaluates"),
                n % 2 == 1,
                "odd_count on {n} nodes"
            );
            assert_eq!(
                holds_pure(&db, &even_domain()).expect("evaluates"),
                n % 2 == 0,
                "even_domain on {n} nodes"
            );
        }
    }

    #[test]
    fn equal_cardinality_of_roots_and_leaves() {
        // in a chain, #roots = #endpoints = 1
        let db = families::chain(5);
        let root = Formula::forall(
            "z",
            Formula::not(Formula::rel(
                "E",
                [vpdt_logic::Term::var("z"), vpdt_logic::Term::var("x")],
            )),
        );
        let leaf = Formula::forall(
            "z",
            Formula::not(Formula::rel(
                "E",
                [vpdt_logic::Term::var("y"), vpdt_logic::Term::var("z")],
            )),
        );
        let eqc = equal_cardinality("x", root, "y", leaf);
        assert!(holds_pure(&db, &eqc).expect("evaluates"));
    }

    #[test]
    fn counting_zero_bound_is_trivially_true() {
        let db = families::empty_graph(0);
        let f = Formula::count_ge(NumTerm::Lit(0), "x", Formula::False);
        assert!(holds_pure(&db, &f).expect("evaluates"));
    }
}
