//! The core evaluator: `D ⊨ α` for FO / FOc / FOc(Ω) / FOcount.
//!
//! First-sort quantifiers range over the database's explicit finite domain.
//! Free variables may be bound (via [`Env`]) to arbitrary elements of `U` —
//! this is exactly what prerelations need: the tuple variables of
//! `pre_R(d₁..d_n)` range over the term extension `Γ(D)` while the
//! quantifiers inside the formula still range over `dom(D)`.
//!
//! The numeric sort of `FOcount` is `{1..n}` where `n = |dom(D)|`
//! (Section 2), with constants `1` and `max`, the order, and `bit(i,j)`.

use std::fmt;
use vpdt_logic::{Elem, Formula, NumTerm, Term, Var};
use vpdt_structure::Database;

use crate::omega::Omega;

/// Evaluation errors: unknown symbols, arity mismatches, unbound variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// A variable assignment: bindings for first-sort and numeric variables.
///
/// Implemented as stacks so that quantifier evaluation is push/pop.
#[derive(Clone, Debug, Default)]
pub struct Env {
    elems: Vec<(Var, Elem)>,
    nums: Vec<(Var, u64)>,
}

impl Env {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// An assignment binding the given first-sort variables.
    pub fn of(bindings: impl IntoIterator<Item = (Var, Elem)>) -> Self {
        Env {
            elems: bindings.into_iter().collect(),
            nums: Vec::new(),
        }
    }

    /// Binds a first-sort variable (shadows earlier bindings).
    pub fn push_elem(&mut self, v: Var, e: Elem) {
        self.elems.push((v, e));
    }

    /// Removes the most recent first-sort binding.
    pub fn pop_elem(&mut self) {
        self.elems.pop();
    }

    /// Looks up a first-sort variable (most recent binding wins).
    pub fn elem(&self, v: &Var) -> Option<Elem> {
        self.elems
            .iter()
            .rev()
            .find(|(w, _)| w == v)
            .map(|(_, e)| *e)
    }

    fn push_num(&mut self, v: Var, n: u64) {
        self.nums.push((v, n));
    }

    fn pop_num(&mut self) {
        self.nums.pop();
    }

    fn num(&self, v: &Var) -> Option<u64> {
        self.nums
            .iter()
            .rev()
            .find(|(w, _)| w == v)
            .map(|(_, n)| *n)
    }
}

/// Evaluates a sentence: `D ⊨ α` with Ω-symbols interpreted by `omega`.
pub fn holds(db: &Database, omega: &Omega, sentence: &Formula) -> Result<bool, EvalError> {
    let mut env = Env::new();
    eval(db, omega, sentence, &mut env)
}

/// Evaluates a sentence with the empty Ω (FO / FOc / FOcount).
pub fn holds_pure(db: &Database, sentence: &Formula) -> Result<bool, EvalError> {
    holds(db, &Omega::empty(), sentence)
}

/// Evaluates a formula under an assignment of its free variables.
pub fn eval(db: &Database, omega: &Omega, f: &Formula, env: &mut Env) -> Result<bool, EvalError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Rel(name, ts) => {
            let arity = db
                .schema()
                .arity_of(name)
                .ok_or_else(|| EvalError(format!("relation {name} not in schema")))?;
            if arity != ts.len() {
                return Err(EvalError(format!(
                    "relation {name} has arity {arity}, atom has {} arguments",
                    ts.len()
                )));
            }
            let mut tuple = Vec::with_capacity(ts.len());
            for t in ts {
                tuple.push(eval_term(omega, t, env)?);
            }
            Ok(db.contains(name, &tuple))
        }
        Formula::Eq(a, b) => Ok(eval_term(omega, a, env)? == eval_term(omega, b, env)?),
        Formula::Pred(p, ts) => {
            let mut args = Vec::with_capacity(ts.len());
            for t in ts {
                args.push(eval_term(omega, t, env)?);
            }
            omega.eval_pred(p.name(), &args).map_err(EvalError)
        }
        Formula::Not(g) => Ok(!eval(db, omega, g, env)?),
        Formula::And(gs) => {
            for g in gs {
                if !eval(db, omega, g, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(gs) => {
            for g in gs {
                if eval(db, omega, g, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => Ok(!eval(db, omega, a, env)? || eval(db, omega, b, env)?),
        Formula::Iff(a, b) => Ok(eval(db, omega, a, env)? == eval(db, omega, b, env)?),
        Formula::Exists(v, g) => {
            for e in db.domain().iter().copied().collect::<Vec<_>>() {
                env.push_elem(v.clone(), e);
                let r = eval(db, omega, g, env)?;
                env.pop_elem();
                if r {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Forall(v, g) => {
            for e in db.domain().iter().copied().collect::<Vec<_>>() {
                env.push_elem(v.clone(), e);
                let r = eval(db, omega, g, env)?;
                env.pop_elem();
                if !r {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::CountGe(i, v, g) => {
            let bound = eval_numterm(db, i, env)?;
            if bound == 0 {
                return Ok(true);
            }
            let mut count: u64 = 0;
            for e in db.domain().iter().copied().collect::<Vec<_>>() {
                env.push_elem(v.clone(), e);
                let r = eval(db, omega, g, env)?;
                env.pop_elem();
                if r {
                    count += 1;
                    if count >= bound {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
        Formula::NumExists(v, g) => {
            let n = db.domain_size() as u64;
            for k in 1..=n {
                env.push_num(v.clone(), k);
                let r = eval(db, omega, g, env)?;
                env.pop_num();
                if r {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::NumForall(v, g) => {
            let n = db.domain_size() as u64;
            for k in 1..=n {
                env.push_num(v.clone(), k);
                let r = eval(db, omega, g, env)?;
                env.pop_num();
                if !r {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::NumLe(a, b) => Ok(eval_numterm(db, a, env)? <= eval_numterm(db, b, env)?),
        Formula::NumEq(a, b) => Ok(eval_numterm(db, a, env)? == eval_numterm(db, b, env)?),
        Formula::Bit(a, b) => {
            let i = eval_numterm(db, a, env)?;
            let j = eval_numterm(db, b, env)?;
            // bit positions are 1-indexed from the least significant bit
            Ok((1..=64).contains(&j) && (i >> (j - 1)) & 1 == 1)
        }
    }
}

/// Evaluates a first-sort term.
pub fn eval_term(omega: &Omega, t: &Term, env: &Env) -> Result<Elem, EvalError> {
    match t {
        Term::Var(v) => env
            .elem(v)
            .ok_or_else(|| EvalError(format!("unbound variable {v}"))),
        Term::Const(c) => Ok(*c),
        Term::App(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_term(omega, a, env)?);
            }
            omega.eval_func(f.name(), &vals).map_err(EvalError)
        }
    }
}

fn eval_numterm(db: &Database, t: &NumTerm, env: &Env) -> Result<u64, EvalError> {
    match t {
        NumTerm::Var(v) => env
            .num(v)
            .ok_or_else(|| EvalError(format!("unbound numeric variable {v}"))),
        NumTerm::One => Ok(1),
        NumTerm::Max => Ok(db.domain_size() as u64),
        NumTerm::Lit(n) => Ok(*n),
        NumTerm::Param(i) => Err(EvalError(format!(
            "un-instantiated numeric placeholder ?{i}#"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::library;
    use vpdt_logic::parse_formula;
    use vpdt_structure::families;

    fn check(db: &Database, s: &str) -> bool {
        holds_pure(db, &parse_formula(s).expect("parses")).expect("evaluates")
    }

    #[test]
    fn atoms_and_quantifiers_on_a_chain() {
        let db = families::chain(3); // 0→1→2
        assert!(check(&db, "E(0, 1)"));
        assert!(!check(&db, "E(1, 0)"));
        assert!(check(&db, "exists x. E(0, x)"));
        assert!(check(&db, "exists x y. E(x, y) & E(y, 2)"));
        assert!(!check(&db, "forall x. exists y. E(x, y)")); // 2 is terminal
        assert!(check(&db, "forall x y z. E(x, y) & E(x, z) -> y = z"));
    }

    #[test]
    fn quantifiers_range_over_explicit_domain() {
        // isolated node 9 is in the domain, so exists picks it up
        let db = Database::graph_with_domain([9], [(0, 1)]);
        assert!(check(&db, "exists x. x = 9"));
        assert!(!check(&db, "exists x. x = 12"));
        // empty database: forall is vacuously true, exists false
        let empty = Database::graph([]);
        assert!(check(&empty, "forall x. false"));
        assert!(!check(&empty, "exists x. true"));
    }

    #[test]
    fn psi_cc_recognizes_cc_graphs() {
        let yes = [
            families::chain(2),
            families::chain(5),
            families::cc_graph(3, &[4]),
            families::cc_graph(2, &[3, 5]),
        ];
        for db in &yes {
            assert!(
                holds_pure(db, &library::psi_cc()).expect("evaluates"),
                "psi_cc should hold on {db:?}"
            );
        }
        let no = [
            families::cycle(4),                // no chain
            families::two_cycles(3, 3),        // no chain
            families::gnm(2, 2),               // branching
            Database::graph([(0, 1), (5, 6)]), // two chains
            families::complete_loopless(3),
        ];
        for db in &no {
            assert!(
                !holds_pure(db, &library::psi_cc()).expect("evaluates"),
                "psi_cc should fail on {db:?}"
            );
        }
    }

    #[test]
    fn p_s_measures_chain_length() {
        // chain of 4 with a 3-cycle attached
        let db = families::cc_graph(4, &[3]);
        for s in 0..=4 {
            assert!(
                holds_pure(&db, &library::chain_at_least(s)).expect("evaluates"),
                "p_{s}"
            );
        }
        assert!(!holds_pure(&db, &library::chain_at_least(5)).expect("evaluates"));
        assert!(holds_pure(&db, &library::chain_exactly(4)).expect("evaluates"));
        assert!(!holds_pure(&db, &library::chain_exactly(3)).expect("evaluates"));
    }

    #[test]
    fn mu_s_counts_nodes() {
        let db = families::empty_graph(3);
        assert!(holds_pure(&db, &library::at_least_nodes(3)).expect("evaluates"));
        assert!(!holds_pure(&db, &library::at_least_nodes(4)).expect("evaluates"));
        assert!(holds_pure(&db, &library::exactly_nodes(3)).expect("evaluates"));
    }

    #[test]
    fn isolated_points_in_diagonal_graphs() {
        let db = families::diagonal([1, 2, 3]);
        assert!(holds_pure(&db, &library::exactly_isolated(3)).expect("evaluates"));
        assert!(!holds_pure(&db, &library::exactly_isolated(2)).expect("evaluates"));
        // in a chain, nothing is isolated (no loops)
        let c = families::chain(3);
        assert!(holds_pure(&c, &library::exactly_isolated(0)).expect("evaluates"));
    }

    #[test]
    fn alpha0_on_gnm_and_friends() {
        let a0 = library::alpha0_gnm_with_cycles();
        assert!(holds_pure(&families::gnm(3, 4), &a0).expect("evaluates"));
        let with_cycle = families::union(&families::gnm(2, 2), &families::cycle_from(50, 4));
        assert!(holds_pure(&with_cycle, &a0).expect("evaluates"));
        assert!(!holds_pure(&families::chain(4), &a0).expect("evaluates"));
        assert!(!holds_pure(&families::cycle(4), &a0).expect("evaluates"));
    }

    #[test]
    fn omega_predicates_and_functions() {
        let db = families::chain(3);
        let omega = Omega::arithmetic();
        let f = parse_formula("forall x y. E(x, y) -> @lt(x, y)").expect("parses");
        assert!(holds(&db, &omega, &f).expect("evaluates"));
        let g = parse_formula("exists x. E(x, succ(x))").expect("parses");
        assert!(holds(&db, &omega, &g).expect("evaluates"));
        // unknown symbol errors out
        let bad = parse_formula("@nope(0)").expect("parses");
        assert!(holds(&db, &omega, &bad).is_err());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let db = families::chain(2);
        let f = parse_formula("E(x, y)").expect("parses");
        assert!(holds_pure(&db, &f).is_err());
        let mut env = Env::of([(Var::new("x"), Elem(0)), (Var::new("y"), Elem(1))]);
        assert_eq!(eval(&db, &Omega::empty(), &f, &mut env), Ok(true));
    }

    #[test]
    fn free_variables_may_lie_outside_the_domain() {
        // pre-relation style: the free variable denotes a new element
        let db = families::chain(2);
        let f = parse_formula("!(exists y. y = x)").expect("parses");
        let mut env = Env::of([(Var::new("x"), Elem(77))]);
        assert_eq!(eval(&db, &Omega::empty(), &f, &mut env), Ok(true));
    }
}

#[cfg(test)]
mod distance_semantics_tests {
    use super::*;
    use vpdt_logic::library;
    use vpdt_structure::{families, Graph};

    /// The FO distance formulas agree with BFS distances on assorted graphs.
    #[test]
    fn distance_formula_matches_bfs() {
        for db in [
            families::chain(5),
            families::cycle(6),
            families::gnm(2, 3),
            families::two_cycles(3, 3),
        ] {
            let g = Graph::of_edges(&db);
            for (ai, &a) in g.nodes().iter().enumerate() {
                let dist = g.undirected_distances(ai);
                for (bi, &b) in g.nodes().iter().enumerate() {
                    for k in 0..4usize {
                        let f = library::distance_at_most("x", "y", k);
                        let mut env = Env::of([(Var::new("x"), a), (Var::new("y"), b)]);
                        let by_formula =
                            eval(&db, &Omega::empty(), &f, &mut env).expect("evaluates");
                        let by_bfs = dist.get(&bi).is_some_and(|&d| d <= k);
                        assert_eq!(by_formula, by_bfs, "d({a},{b}) ≤ {k} on {db:?}");
                    }
                }
            }
        }
    }
}
