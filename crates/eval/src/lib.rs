//! # vpdt-eval
//!
//! Model checking — the validity relation `D ⊨ α` of Section 2 — for every
//! specification language in the paper:
//!
//! * FO / FOc / FOc(Ω) with first-sort quantifiers ranging over the
//!   database's (finite, explicit) domain;
//! * `FOcount`, the two-sorted counting logic, whose numeric sort is
//!   `{1..n}` for `n` the domain size, with `1`, `max`, `≤` and `bit`;
//! * monadic Σ¹₁, by exhaustive search over interpretations of the unary
//!   set variables (exponential, with an explicit budget).
//!
//! Interpretations of Ω-symbols ("a recursive collection of recursive
//! functions and predicates over U") are Rust closures registered in
//! [`Omega`]; [`Omega::nat_order`] provides the order of type ω used in
//! Theorem 3's `FOc(Ω ∪ {≺})` argument.

pub mod counting;
pub mod fo;
pub mod mso;
pub mod omega;

pub use fo::{eval, eval_term, holds, holds_pure, Env, EvalError};
pub use omega::Omega;
