//! Interpretations of the signatures Ω.
//!
//! `FOc(Ω)` extends FOc with "a recursive collection Ω of recursive
//! functions and predicates over U" (Section 2). [`Omega`] maps symbol
//! names to Rust closures over universe elements. The syntax side
//! ([`vpdt_logic::OmegaSig`]) can be derived with [`Omega::sig`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use vpdt_logic::{Elem, OmegaSig};

type FuncImpl = Arc<dyn Fn(&[Elem]) -> Elem + Send + Sync>;
type PredImpl = Arc<dyn Fn(&[Elem]) -> bool + Send + Sync>;

/// A recursive interpretation of an Ω signature: total computable functions
/// and predicates over `U`.
#[derive(Clone, Default)]
pub struct Omega {
    funcs: BTreeMap<String, (usize, FuncImpl)>,
    preds: BTreeMap<String, (usize, PredImpl)>,
}

impl Omega {
    /// The empty signature — plain FOc.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Registers a function symbol.
    pub fn with_func(
        mut self,
        name: impl Into<String>,
        arity: usize,
        f: impl Fn(&[Elem]) -> Elem + Send + Sync + 'static,
    ) -> Self {
        self.funcs.insert(name.into(), (arity, Arc::new(f)));
        self
    }

    /// Registers a predicate symbol.
    pub fn with_pred(
        mut self,
        name: impl Into<String>,
        arity: usize,
        p: impl Fn(&[Elem]) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.preds.insert(name.into(), (arity, Arc::new(p)));
        self
    }

    /// The order `≺` on `U` of order type ω used in Theorem 3 (the identity
    /// order on element ids), as the binary predicate `lt`, plus `le`.
    pub fn nat_order() -> Self {
        Omega::empty()
            .with_pred("lt", 2, |a| a[0] < a[1])
            .with_pred("le", 2, |a| a[0] <= a[1])
    }

    /// A richer arithmetic signature for robustness experiments: `lt`, `le`,
    /// `even`, `succ`, `plus`.
    pub fn arithmetic() -> Self {
        Omega::nat_order()
            .with_pred("even", 1, |a| a[0].0 % 2 == 0)
            .with_func("succ", 1, |a| Elem(a[0].0 + 1))
            .with_func("plus", 2, |a| Elem(a[0].0.saturating_add(a[1].0)))
    }

    /// The syntactic signature (names and arities).
    pub fn sig(&self) -> OmegaSig {
        let mut s = OmegaSig::empty();
        for (n, (a, _)) in &self.funcs {
            s = s.with_func(n.clone(), *a);
        }
        for (n, (a, _)) in &self.preds {
            s = s.with_pred(n.clone(), *a);
        }
        s
    }

    /// Evaluates a function symbol.
    pub fn eval_func(&self, name: &str, args: &[Elem]) -> Result<Elem, String> {
        match self.funcs.get(name) {
            Some((arity, f)) if *arity == args.len() => Ok(f(args)),
            Some((arity, _)) => Err(format!(
                "function {name} has arity {arity}, called with {}",
                args.len()
            )),
            None => Err(format!("unknown Omega function {name}")),
        }
    }

    /// Evaluates a predicate symbol.
    pub fn eval_pred(&self, name: &str, args: &[Elem]) -> Result<bool, String> {
        match self.preds.get(name) {
            Some((arity, p)) if *arity == args.len() => Ok(p(args)),
            Some((arity, _)) => Err(format!(
                "predicate {name} has arity {arity}, called with {}",
                args.len()
            )),
            None => Err(format!("unknown Omega predicate {name}")),
        }
    }

    /// Whether this interpretation extends `other` syntactically (every
    /// symbol of `other` is present with the same arity). The semantic
    /// agreement is the caller's responsibility — in the robustness
    /// experiments extensions are built with [`Omega::with_pred`] /
    /// [`Omega::with_func`] on top of the base, which guarantees it.
    pub fn extends(&self, other: &Omega) -> bool {
        self.sig().extends(&other.sig())
    }
}

impl fmt::Debug for Omega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Omega(funcs=[{}], preds=[{}])",
            self.funcs.keys().cloned().collect::<Vec<_>>().join(","),
            self.preds.keys().cloned().collect::<Vec<_>>().join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_order_is_an_omega_order() {
        let o = Omega::nat_order();
        assert_eq!(o.eval_pred("lt", &[Elem(1), Elem(2)]), Ok(true));
        assert_eq!(o.eval_pred("lt", &[Elem(2), Elem(2)]), Ok(false));
        assert_eq!(o.eval_pred("le", &[Elem(2), Elem(2)]), Ok(true));
    }

    #[test]
    fn arity_checked() {
        let o = Omega::nat_order();
        assert!(o.eval_pred("lt", &[Elem(1)]).is_err());
        assert!(o.eval_pred("nope", &[Elem(1)]).is_err());
    }

    #[test]
    fn arithmetic_functions() {
        let o = Omega::arithmetic();
        assert_eq!(o.eval_func("succ", &[Elem(4)]), Ok(Elem(5)));
        assert_eq!(o.eval_func("plus", &[Elem(4), Elem(8)]), Ok(Elem(12)));
        assert_eq!(o.eval_pred("even", &[Elem(4)]), Ok(true));
    }

    #[test]
    fn extension_check() {
        let base = Omega::nat_order();
        let ext = Omega::arithmetic();
        assert!(ext.extends(&base));
        assert!(!base.extends(&ext));
    }
}
