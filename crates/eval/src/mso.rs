//! Evaluation of monadic Σ¹₁ sentences.
//!
//! `D ⊨ ∃A₁…∃A_k. Ψ` is decided by exhaustive search over the `2^(k·|dom|)`
//! interpretations of the set variables — exact but exponential, so a budget
//! caps the number of candidate interpretations. The asymptotic
//! inexpressibility arguments (connectivity ∉ monadic Σ¹₁, Theorem 3's
//! Ajtai–Fagin game) live in `vpdt-games`; this evaluator grounds them on
//! small instances.

use crate::fo::{holds, EvalError};
use crate::omega::Omega;
use vpdt_logic::{Elem, MonadicSigma11};
use vpdt_structure::Database;

/// Default budget: maximum number of set-variable interpretations tried.
pub const DEFAULT_BUDGET: u64 = 1 << 22;

/// Evaluates a monadic Σ¹₁ sentence on a database, trying at most `budget`
/// interpretations of the set variables (in increasing bitmask order).
///
/// Returns an error if the search space exceeds the budget or the matrix
/// fails to evaluate.
pub fn holds_sigma11(
    db: &Database,
    omega: &Omega,
    sentence: &MonadicSigma11,
    budget: Option<u64>,
) -> Result<bool, EvalError> {
    let budget = budget.unwrap_or(DEFAULT_BUDGET);
    let k = sentence.set_vars.len();
    let dom: Vec<Elem> = db.domain().iter().copied().collect();
    let n = dom.len();
    let bits = (k * n) as u32;
    if bits >= 63 || (1u64 << bits) > budget {
        return Err(EvalError(format!(
            "monadic Sigma-1-1 search space 2^{bits} exceeds budget {budget}"
        )));
    }
    let ext_schema = sentence.extended_schema(db.schema());
    let base = db.with_schema(ext_schema);
    for mask in 0u64..(1u64 << bits) {
        let mut candidate = base.clone();
        for (si, name) in sentence.set_vars.iter().enumerate() {
            for (ei, e) in dom.iter().enumerate() {
                if (mask >> (si * n + ei)) & 1 == 1 {
                    candidate.insert(name, vec![*e]);
                }
            }
        }
        if holds(&candidate, omega, &sentence.matrix)? {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdt_logic::{Formula, Schema, Term};
    use vpdt_structure::families;

    /// `∃A. (∃x A(x)) ∧ (∃x ¬A(x)) ∧ ∀x∀y (E(x,y) → (A(x) ↔ ¬A(y)))` —
    /// proper 2-colorability of the underlying (loop-free) digraph.
    fn two_colorable() -> MonadicSigma11 {
        let a = |t: Term| Formula::rel("A", [t]);
        let matrix = Formula::and([Formula::forall_many(
            ["x", "y"],
            Formula::implies(
                Formula::rel("E", [Term::var("x"), Term::var("y")]),
                Formula::iff(a(Term::var("x")), Formula::not(a(Term::var("y")))),
            ),
        )]);
        MonadicSigma11::new(&Schema::graph(), ["A"], matrix)
    }

    #[test]
    fn even_cycles_are_two_colorable_odd_are_not() {
        let s = two_colorable();
        for n in [2usize, 4, 6] {
            assert!(
                holds_sigma11(&families::cycle(n), &Omega::empty(), &s, None)
                    .expect("within budget"),
                "C_{n} is 2-colorable"
            );
        }
        for n in [3usize, 5, 7] {
            assert!(
                !holds_sigma11(&families::cycle(n), &Omega::empty(), &s, None)
                    .expect("within budget"),
                "C_{n} is not 2-colorable"
            );
        }
    }

    #[test]
    fn budget_is_enforced() {
        let s = two_colorable();
        let db = families::cycle(10);
        let r = holds_sigma11(&db, &Omega::empty(), &s, Some(4));
        assert!(r.is_err());
    }

    #[test]
    fn zero_set_variables_degenerates_to_fo() {
        let s = MonadicSigma11::new(
            &Schema::graph(),
            Vec::<String>::new(),
            Formula::exists("x", Formula::rel("E", [Term::var("x"), Term::var("x")])),
        );
        assert!(
            holds_sigma11(&families::diagonal([1]), &Omega::empty(), &s, None)
                .expect("within budget")
        );
        assert!(
            !holds_sigma11(&families::chain(3), &Omega::empty(), &s, None).expect("within budget")
        );
    }
}
