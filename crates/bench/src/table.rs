//! Minimal fixed-width table rendering for experiment reports.

/// Renders a table with a header row, column-aligned.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Convenience: stringify a row of displayable values.
#[macro_export]
macro_rules! row {
    ($($x:expr),* $(,)?) => {
        vec![$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(&["k", "value"], &[row!(1, "abc"), row!(22, "d")]);
        assert!(t.contains("| k  | value |"));
        assert!(t.contains("| 22 | d     |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render(&["a"], &[row!(1, 2)]);
    }
}
