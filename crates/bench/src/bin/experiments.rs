//! CLI driver for the experiment suite (see EXPERIMENTS.md).
//!
//! ```text
//! experiments all          # run everything
//! experiments e8 e10       # run selected experiments
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        if let Err(e) = vpdt_bench::experiments::run(id) {
            eprintln!("error in {id}: {e}");
            std::process::exit(1);
        }
    }
}
