//! `store_bench` — the acceptance benchmark for `vpdt-store`.
//!
//! Runs one deterministic multi-relation workload twice:
//!
//! * **guarded-concurrent** — the store pipeline: cached `wpc` guards,
//!   N worker threads, relation-granular optimistic commits;
//! * **rollback-serial** — the baseline the paper's programme displaces:
//!   one thread, run each transaction, test `α` on the result, roll back
//!   on violation.
//!
//! It then audits the concurrent history (replaying every commit through
//! the check-and-rollback path) and writes `BENCH_store.json` with the
//! throughput comparison. Exit code is non-zero if the audit fails, a
//! constraint violation is observed, or the run falls short of the
//! acceptance thresholds (≥ 10_000 commits across ≥ 4 threads).
//!
//! ```text
//! cargo run --release -p vpdt-bench --bin store_bench
//! cargo run --release -p vpdt-bench --bin store_bench -- \
//!     --threads 8 --clients 16 --per-client 2000 --rels 8 --universe 6
//! ```

use std::collections::BTreeMap;
use std::time::Instant;
use vpdt_eval::Omega;
use vpdt_store::{audit, run_jobs, run_serial_rollback, workload, GuardCache, VersionedStore};

struct Config {
    threads: usize,
    clients: u64,
    per_client: usize,
    rels: usize,
    universe: u64,
    seed: u64,
    cache_cap: usize,
    smoke: bool,
    out: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 4,
            clients: 8,
            per_client: 2500,
            rels: 8,
            universe: 6,
            seed: 2024,
            cache_cap: vpdt_store::guard::DEFAULT_CAPACITY,
            smoke: false,
            out: "BENCH_store.json".to_string(),
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut set: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if flag == "--smoke" {
            cfg.smoke = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--threads" => cfg.threads = value.parse().map_err(|_| "bad --threads")?,
            "--clients" => cfg.clients = value.parse().map_err(|_| "bad --clients")?,
            "--per-client" => cfg.per_client = value.parse().map_err(|_| "bad --per-client")?,
            "--rels" => cfg.rels = value.parse().map_err(|_| "bad --rels")?,
            "--universe" => cfg.universe = value.parse().map_err(|_| "bad --universe")?,
            "--seed" => cfg.seed = value.parse().map_err(|_| "bad --seed")?,
            "--cache-cap" => cfg.cache_cap = value.parse().map_err(|_| "bad --cache-cap")?,
            "--out" => cfg.out = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        set.push(match flag.as_str() {
            "--threads" => "threads",
            "--clients" => "clients",
            "--per-client" => "per-client",
            "--out" => "out",
            _ => "",
        });
        i += 2;
    }
    if cfg.smoke {
        // a fast sanity configuration for CI: tiny workload, relaxed
        // acceptance thresholds, separate output file. Applied after the
        // loop so explicit flags win regardless of their position.
        if !set.contains(&"clients") {
            cfg.clients = 4;
        }
        if !set.contains(&"per-client") {
            cfg.per_client = 100;
        }
        if !set.contains(&"threads") {
            cfg.threads = 2;
        }
        if !set.contains(&"out") {
            cfg.out = "BENCH_store_smoke.json".to_string();
        }
    }
    Ok(cfg)
}

fn main() -> std::process::ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("store_bench: {e}");
            return std::process::ExitCode::from(2);
        }
    };
    match run(cfg) {
        Ok(true) => std::process::ExitCode::SUCCESS,
        Ok(false) => std::process::ExitCode::FAILURE,
        Err(e) => {
            eprintln!("store_bench: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(cfg: Config) -> Result<bool, String> {
    let alpha = workload::sharded_fd_constraint(cfg.rels);
    let omega = Omega::empty();
    let initial = workload::sharded_initial(cfg.seed, cfg.rels, cfg.universe, 0.5);
    let jobs = workload::sharded_jobs(
        cfg.seed,
        cfg.clients,
        cfg.per_client,
        cfg.rels,
        cfg.universe,
    );
    println!(
        "workload: {} transactions over {} relations (universe {}), {} threads",
        jobs.len(),
        cfg.rels,
        cfg.universe,
        cfg.threads
    );

    // --- guarded-concurrent -------------------------------------------------
    let store = VersionedStore::new(initial.clone());
    let cache = GuardCache::with_capacity(
        store.schema().clone(),
        alpha.clone(),
        omega.clone(),
        cfg.cache_cap,
    );
    // Warm the prepared-statement cache up front so the measured section is
    // the steady state. Only distinct statement *shapes* compile — the
    // whole ground menu collapses to O(shapes) compilations, so this cost
    // is independent of the universe size.
    let compile_start = Instant::now();
    for job in &jobs {
        cache
            .get_or_compile(&job.program)
            .map_err(|e| e.to_string())?;
    }
    let compile_secs = compile_start.elapsed().as_secs_f64();
    let warm = cache.cache_stats();
    let compile_secs_per_shape = if warm.shapes > 0 {
        compile_secs / warm.shapes as f64
    } else {
        0.0
    };

    let t0 = Instant::now();
    let concurrent = run_jobs(&store, &cache, &jobs, cfg.threads);
    let concurrent_secs = t0.elapsed().as_secs_f64();
    let concurrent_tps = concurrent.committed as f64 / concurrent_secs;
    let cache_end = cache.cache_stats();
    println!(
        "guarded-concurrent: {} committed / {} aborted / {} failed in {:.3}s \
         ({:.0} commits/s, {} conflicts, cache {}h/{}m, {} shapes compiled \
         in {:.3}s = {:.1}ms/shape, {} live entries, {} evictions)",
        concurrent.committed,
        concurrent.aborted,
        concurrent.failed,
        concurrent_secs,
        concurrent_tps,
        concurrent.conflicts,
        concurrent.guard_hits,
        concurrent.guard_misses,
        cache_end.shapes,
        compile_secs,
        compile_secs_per_shape * 1e3,
        cache_end.entries,
        cache_end.evictions,
    );

    // --- rollback-serial ----------------------------------------------------
    let t1 = Instant::now();
    let (_serial_state, serial) = run_serial_rollback(initial.clone(), &jobs, &alpha, &omega);
    let serial_secs = t1.elapsed().as_secs_f64();
    let serial_tps = serial.committed as f64 / serial_secs;
    println!(
        "rollback-serial:    {} committed / {} aborted in {:.3}s ({:.0} commits/s)",
        serial.committed, serial.aborted, serial_secs, serial_tps,
    );

    // --- audit --------------------------------------------------------------
    let t2 = Instant::now();
    let programs: BTreeMap<_, _> = jobs.iter().map(|j| (j.id, j.program.clone())).collect();
    let report = audit(
        &alpha,
        &omega,
        &initial,
        &store.snapshot().db,
        &store.history().events(),
        &programs,
        &cache.templates(),
    );
    let audit_secs = t2.elapsed().as_secs_f64();
    println!("{report} ({audit_secs:.3}s)");

    // --- verdicts -----------------------------------------------------------
    let violations = report
        .problems
        .iter()
        .filter(|p| p.contains("constraint"))
        .count();
    let speedup = concurrent_tps / serial_tps;
    let enough_commits = cfg.smoke || concurrent.committed >= 10_000;
    let enough_threads = cfg.smoke || cfg.threads >= 4;
    let beats_baseline = cfg.smoke || concurrent_tps > serial_tps;
    // The O(shapes) claim: the cache may never hold more compilations than
    // there are statement shapes (2 per relation for this workload's menu),
    // however large the universe.
    let shape_bound = cache_end.shapes <= 2 * cfg.rels && cache_end.entries <= cache_end.shapes;
    let ok = report.ok()
        && concurrent.failed == 0
        && enough_commits
        && enough_threads
        && beats_baseline
        && shape_bound;

    let json = format!(
        "{{\n  \"workload\": {{\n    \"transactions\": {},\n    \"relations\": {},\n    \
         \"universe\": {},\n    \"threads\": {},\n    \"clients\": {},\n    \"seed\": {},\n    \
         \"cache_capacity\": {},\n    \"smoke\": {}\n  }},\n  \
         \"guarded_concurrent\": {{\n    \"committed\": {},\n    \"aborted\": {},\n    \
         \"failed\": {},\n    \"conflicts\": {},\n    \"guard_cache_hits\": {},\n    \
         \"guard_cache_misses\": {},\n    \"statement_shapes\": {},\n    \
         \"cache_entries\": {},\n    \"evictions\": {},\n    \"compile_secs\": {:.6},\n    \
         \"compile_secs_per_shape\": {:.6},\n    \"secs\": {:.6},\n    \
         \"commits_per_sec\": {:.1}\n  }},\n  \"rollback_serial\": {{\n    \"committed\": {},\n    \
         \"aborted\": {},\n    \"secs\": {:.6},\n    \"commits_per_sec\": {:.1}\n  }},\n  \
         \"speedup\": {:.3},\n  \"constraint_violations\": {},\n  \"audit_ok\": {},\n  \
         \"audit_commits_checked\": {},\n  \"audit_aborts_checked\": {},\n  \"accepted\": {}\n}}\n",
        jobs.len(),
        cfg.rels,
        cfg.universe,
        cfg.threads,
        cfg.clients,
        cfg.seed,
        cfg.cache_cap,
        cfg.smoke,
        concurrent.committed,
        concurrent.aborted,
        concurrent.failed,
        concurrent.conflicts,
        concurrent.guard_hits,
        concurrent.guard_misses,
        cache_end.shapes,
        cache_end.entries,
        cache_end.evictions,
        compile_secs,
        compile_secs_per_shape,
        concurrent_secs,
        concurrent_tps,
        serial.committed,
        serial.aborted,
        serial_secs,
        serial_tps,
        speedup,
        violations,
        report.ok(),
        report.commits_checked,
        report.aborts_checked,
        ok,
    );
    std::fs::write(&cfg.out, &json).map_err(|e| format!("writing {}: {e}", cfg.out))?;
    println!(
        "speedup (concurrent vs serial): {speedup:.2}x -> {}",
        cfg.out
    );

    if !enough_commits {
        eprintln!(
            "ACCEPTANCE: need >= 10000 commits, got {}",
            concurrent.committed
        );
    }
    if !beats_baseline {
        eprintln!(
            "ACCEPTANCE: concurrent ({concurrent_tps:.0}/s) did not beat serial ({serial_tps:.0}/s)"
        );
    }
    if !shape_bound {
        eprintln!(
            "ACCEPTANCE: cache must hold O(statement shapes) entries, got {} entries over {} \
             shapes (menu has {})",
            cache_end.entries,
            cache_end.shapes,
            2 * cfg.rels
        );
    }
    Ok(ok)
}
